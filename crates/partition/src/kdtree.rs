//! Kd-tree partitioning (paper §4.1, Figure 2).
//!
//! The network is recursively bisected at the *median* coordinate of the
//! nodes in each cell, alternating axes per level. The paper's example
//! starts with a line parallel to the x-axis, i.e. the root splits on the
//! **y** coordinate; children split on x, and so on. With `2^L` leaves the
//! tree is perfect, so the `2^L − 1` splitting values in breadth-first
//! order define the partition completely — this is exactly the first index
//! component EB and NR broadcast.
//!
//! Region numbering follows the paper's convention (leftmost region of the
//! leftmost leaf is R1, then its sibling, ...): leaves are numbered left to
//! right, which equals the path interpreted as a binary number with
//! "below/left of the split" = 0.

use crate::{Partitioning, RegionId};
use serde::{Deserialize, Serialize};
use spair_roadnet::{NodeId, Point, RoadNetwork};

/// Axis a level splits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

#[inline]
fn axis_for_level(level: u32) -> Axis {
    // Level 0 splits with a line parallel to the x-axis => compares y.
    if level.is_multiple_of(2) {
        Axis::Y
    } else {
        Axis::X
    }
}

#[inline]
fn coord(p: Point, axis: Axis) -> f64 {
    match axis {
        Axis::X => p.x,
        Axis::Y => p.y,
    }
}

/// The client-side reconstruction of a kd partition: only the splitting
/// values in BFS order. This is what travels on the air.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KdLocator {
    /// Splitting values in breadth-first order (`2^levels − 1` entries).
    splits: Vec<f64>,
    /// Number of levels (`num_regions = 2^levels`).
    levels: u32,
}

impl KdLocator {
    /// Rebuilds a locator from raw splitting values.
    ///
    /// Panics if `splits.len() + 1` is not a power of two.
    pub fn from_splits(splits: Vec<f64>) -> Self {
        let n = splits.len() + 1;
        assert!(n.is_power_of_two(), "split count must be 2^L - 1");
        Self {
            levels: n.trailing_zeros(),
            splits,
        }
    }

    /// The splitting values in BFS order.
    pub fn splits(&self) -> &[f64] {
        &self.splits
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        1usize << self.levels
    }

    /// Region containing point `p`.
    pub fn locate(&self, p: Point) -> RegionId {
        let mut node = 0usize; // BFS index into `splits`
        let mut region = 0usize;
        for level in 0..self.levels {
            let axis = axis_for_level(level);
            let right = coord(p, axis) >= self.splits[node];
            region = (region << 1) | usize::from(right);
            node = 2 * node + 1 + usize::from(right);
        }
        region as RegionId
    }
}

/// A kd-tree partition bound to a concrete road network.
#[derive(Debug, Clone)]
pub struct KdTreePartition {
    locator: KdLocator,
    assignment: Vec<RegionId>,
    by_region: Vec<Vec<NodeId>>,
}

impl KdTreePartition {
    /// Builds a kd partition of `g` into `num_regions` regions.
    ///
    /// `num_regions` must be a power of two and at least 2. Empty regions
    /// are possible in degenerate inputs (e.g. many co-located nodes) and
    /// are handled by all consumers.
    pub fn build(g: &RoadNetwork, num_regions: usize) -> Self {
        assert!(
            num_regions.is_power_of_two() && num_regions >= 2,
            "num_regions must be a power of two >= 2"
        );
        let levels = num_regions.trailing_zeros();
        let mut splits = vec![0.0f64; num_regions - 1];
        let mut ids: Vec<NodeId> = g.node_ids().collect();

        // Recursive median splitting. `stack` carries (bfs index, level,
        // slice range) over `ids`, which is permuted in place.
        let mut stack = vec![(0usize, 0u32, 0usize, ids.len())];
        while let Some((node, level, lo, hi)) = stack.pop() {
            let axis = axis_for_level(level);
            let slice = &mut ids[lo..hi];
            let mid = slice.len() / 2;
            if slice.is_empty() {
                // Empty cell: keep a degenerate split; both children empty.
                splits[node] = 0.0;
            } else {
                slice.select_nth_unstable_by(mid.min(slice.len() - 1), |&a, &b| {
                    coord(g.point(a), axis)
                        .partial_cmp(&coord(g.point(b), axis))
                        .unwrap()
                        .then(a.cmp(&b))
                });
                splits[node] = coord(g.point(slice[mid.min(slice.len() - 1)]), axis);
            }
            if level + 1 < levels {
                // Children partition by the *split value*, not the slice
                // midpoint, so locate() and assignment agree exactly.
                let split = splits[node];
                let cut = partition_by(&mut ids[lo..hi], |&v| coord(g.point(v), axis) < split);
                stack.push((2 * node + 1, level + 1, lo, lo + cut));
                stack.push((2 * node + 2, level + 1, lo + cut, hi));
            }
        }

        Self::from_splits_for(g, KdLocator { splits, levels })
    }

    /// Builds a *uniform* kd partition of `g` into `num_regions` regions:
    /// every cell splits at the midpoint of its bounding-box extent
    /// instead of the node median, which makes the leaves a regular
    /// spatial grid (`2^ceil(L/2)` rows × `2^floor(L/2)` columns of equal
    /// size). This is the "regular grid" alternative the paper discusses
    /// in §4.1, expressed through the same splitting-value encoding, so
    /// EB/NR clients can locate regions over a grid partitioner with zero
    /// protocol changes — unlike median splits it does not balance node
    /// counts, which is exactly the trade-off the scenario matrix probes.
    ///
    /// `num_regions` must be a power of two and at least 2.
    pub fn build_uniform(g: &RoadNetwork, num_regions: usize) -> Self {
        assert!(
            num_regions.is_power_of_two() && num_regions >= 2,
            "num_regions must be a power of two >= 2"
        );
        let levels = num_regions.trailing_zeros();
        let mut splits = vec![0.0f64; num_regions - 1];

        // Bounding box of the node coordinates.
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in g.node_ids() {
            let p = g.point(v);
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        if g.num_nodes() == 0 {
            (min_x, max_x, min_y, max_y) = (0.0, 0.0, 0.0, 0.0);
        }

        // Each BFS cell carries its own bounds; the split bisects the
        // cell's extent on the level's axis.
        let mut stack = vec![(0usize, 0u32, min_x, max_x, min_y, max_y)];
        while let Some((node, level, lo_x, hi_x, lo_y, hi_y)) = stack.pop() {
            let axis = axis_for_level(level);
            let split = match axis {
                Axis::X => (lo_x + hi_x) / 2.0,
                Axis::Y => (lo_y + hi_y) / 2.0,
            };
            splits[node] = split;
            if level + 1 < levels {
                match axis {
                    Axis::X => {
                        stack.push((2 * node + 1, level + 1, lo_x, split, lo_y, hi_y));
                        stack.push((2 * node + 2, level + 1, split, hi_x, lo_y, hi_y));
                    }
                    Axis::Y => {
                        stack.push((2 * node + 1, level + 1, lo_x, hi_x, lo_y, split));
                        stack.push((2 * node + 2, level + 1, lo_x, hi_x, split, hi_y));
                    }
                }
            }
        }

        Self::from_splits_for(g, KdLocator { splits, levels })
    }

    /// Materializes the node assignment and per-region lists of `g` under
    /// `locator` — the shared tail of every construction path, so
    /// assignment and `locate()` can never diverge between them.
    fn from_splits_for(g: &RoadNetwork, locator: KdLocator) -> Self {
        let mut assignment = vec![0 as RegionId; g.num_nodes()];
        let mut by_region = vec![Vec::new(); locator.num_regions()];
        for v in g.node_ids() {
            let r = locator.locate(g.point(v));
            assignment[v as usize] = r;
            by_region[r as usize].push(v);
        }
        Self {
            locator,
            assignment,
            by_region,
        }
    }

    /// The broadcastable locator (splitting values).
    pub fn locator(&self) -> &KdLocator {
        &self.locator
    }

    /// Splitting values in BFS order — the paper's first index component.
    pub fn splits(&self) -> &[f64] {
        self.locator.splits()
    }
}

/// Stable partition: moves elements satisfying `pred` to the front,
/// returning the cut index.
fn partition_by<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut front: Vec<T> = Vec::with_capacity(slice.len());
    let mut back: Vec<T> = Vec::new();
    for &x in slice.iter() {
        if pred(&x) {
            front.push(x);
        } else {
            back.push(x);
        }
    }
    let cut = front.len();
    slice[..cut].copy_from_slice(&front);
    slice[cut..].copy_from_slice(&back);
    cut
}

impl Partitioning for KdTreePartition {
    fn num_regions(&self) -> usize {
        self.locator.num_regions()
    }

    fn region_of(&self, v: NodeId) -> RegionId {
        self.assignment[v as usize]
    }

    fn locate(&self, p: Point) -> RegionId {
        self.locator.locate(p)
    }

    fn nodes_by_region(&self) -> &[Vec<NodeId>] {
        &self.by_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::GraphBuilder;

    #[test]
    fn every_node_in_exactly_one_region() {
        let g = small_grid(12, 12, 1);
        let part = KdTreePartition::build(&g, 16);
        let mut seen = vec![false; g.num_nodes()];
        for (r, nodes) in part.nodes_by_region().iter().enumerate() {
            for &v in nodes {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
                assert_eq!(part.region_of(v), r as RegionId);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn regions_are_balanced_by_median_splits() {
        let g = small_grid(16, 16, 3);
        let part = KdTreePartition::build(&g, 16);
        let expected = g.num_nodes() / 16;
        for nodes in part.nodes_by_region() {
            // Median splits keep each region within a small factor.
            assert!(
                nodes.len() >= expected / 2 && nodes.len() <= expected * 2,
                "unbalanced region: {} vs expected ~{expected}",
                nodes.len()
            );
        }
    }

    #[test]
    fn locate_agrees_with_node_assignment() {
        let g = small_grid(10, 14, 5);
        for &n in &[2usize, 4, 8, 32] {
            let part = KdTreePartition::build(&g, n);
            for v in g.node_ids() {
                assert_eq!(part.locate(g.point(v)), part.region_of(v));
            }
        }
    }

    #[test]
    fn locator_round_trips_through_splits() {
        let g = small_grid(9, 9, 8);
        let part = KdTreePartition::build(&g, 8);
        let rebuilt = KdLocator::from_splits(part.splits().to_vec());
        for v in g.node_ids() {
            assert_eq!(rebuilt.locate(g.point(v)), part.region_of(v));
        }
        assert_eq!(rebuilt.num_regions(), 8);
    }

    #[test]
    fn split_count_matches_paper_formula() {
        // n partitions => n - 1 splitting values (§4.1).
        let g = small_grid(8, 8, 2);
        for &n in &[2usize, 4, 8, 16, 32] {
            let part = KdTreePartition::build(&g, n);
            assert_eq!(part.splits().len(), n - 1);
        }
    }

    #[test]
    fn first_split_is_on_y_axis() {
        // Build a graph stretched along y: the root split (level 0, which
        // compares y per the paper's Figure 2) must separate low-y from
        // high-y nodes.
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_node(Point::new(0.0, i as f64));
        }
        for i in 0..7 {
            b.add_undirected_edge(i, i + 1, 1);
        }
        let g = b.finish();
        let part = KdTreePartition::build(&g, 2);
        // Nodes 0..3 below the median-y, 4..7 at or above it.
        assert_eq!(part.region_of(0), 0);
        assert_eq!(part.region_of(7), 1);
    }

    #[test]
    fn region_numbering_is_left_to_right() {
        // 4 nodes in a 2x2 layout, 4 regions: numbering should follow
        // (low-y, low-x), (low-y, high-x), (high-y, low-x), (high-y, high-x).
        let mut b = GraphBuilder::new();
        let pts = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
        for (x, y) in pts {
            b.add_node(Point::new(x, y));
        }
        b.add_undirected_edge(0, 1, 1);
        b.add_undirected_edge(2, 3, 1);
        b.add_undirected_edge(0, 2, 1);
        let g = b.finish();
        let part = KdTreePartition::build(&g, 4);
        let regions: Vec<_> = g.node_ids().map(|v| part.region_of(v)).collect();
        // All four nodes land in distinct regions and low-y nodes precede
        // high-y nodes (root splits on y).
        let mut sorted = regions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert!(regions[0] < regions[2]);
        assert!(regions[1] < regions[3]);
    }

    #[test]
    fn uniform_build_covers_every_node_and_agrees_with_locate() {
        let g = small_grid(11, 13, 4);
        for &n in &[2usize, 4, 8, 16] {
            let part = KdTreePartition::build_uniform(&g, n);
            let mut seen = vec![false; g.num_nodes()];
            for (r, nodes) in part.nodes_by_region().iter().enumerate() {
                for &v in nodes {
                    assert!(!seen[v as usize]);
                    seen[v as usize] = true;
                    assert_eq!(part.region_of(v), r as RegionId);
                    assert_eq!(part.locate(g.point(v)), r as RegionId);
                }
            }
            assert!(seen.iter().all(|&s| s));
            assert_eq!(part.splits().len(), n - 1);
        }
    }

    #[test]
    fn uniform_splits_form_a_regular_grid() {
        // 4 regions over a square extent: the root bisects y at the
        // midpoint, both children bisect x at the *same* midpoint — a
        // regular 2x2 grid, unlike median splits.
        let g = small_grid(16, 16, 9);
        let part = KdTreePartition::build_uniform(&g, 4);
        let s = part.splits();
        assert!((s[1] - s[2]).abs() < 1e-12, "x-splits differ: {s:?}");
    }

    #[test]
    fn uniform_locator_round_trips_through_splits() {
        let g = small_grid(10, 10, 2);
        let part = KdTreePartition::build_uniform(&g, 8);
        let rebuilt = KdLocator::from_splits(part.splits().to_vec());
        for v in g.node_ids() {
            assert_eq!(rebuilt.locate(g.point(v)), part.region_of(v));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let g = small_grid(4, 4, 0);
        KdTreePartition::build(&g, 12);
    }

    #[test]
    fn duplicate_coordinates_still_assign_consistently() {
        let mut b = GraphBuilder::new();
        for _ in 0..16 {
            b.add_node(Point::new(1.0, 1.0));
        }
        for i in 0..15 {
            b.add_undirected_edge(i, i + 1, 1);
        }
        let g = b.finish();
        let part = KdTreePartition::build(&g, 4);
        for v in g.node_ids() {
            assert_eq!(part.locate(g.point(v)), part.region_of(v));
        }
    }
}
