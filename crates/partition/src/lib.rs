//! Space partitioning of road networks (paper §4.1).
//!
//! EB, NR and ArcFlag all rest on a partition of the network nodes into
//! regions. The paper uses kd-tree partitioning (median splits alternating
//! between the axes, following Möhring et al.) because it balances node
//! counts per region; a regular grid is provided as the simpler alternative
//! the paper discusses and discards.
//!
//! The kd-tree's defining trick for the broadcast setting: the *splitting
//! values alone* (n−1 numbers in breadth-first order) reconstruct the whole
//! partition on the client, so region lookup for the query's source and
//! destination costs a handful of comparisons after receiving n−1 floats —
//! far cheaper than shipping per-region bounding boxes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod border;
pub mod grid;
pub mod kdtree;

pub use border::{BorderInfo, NodeClass};
pub use grid::{GridLocator, GridPartition};
pub use kdtree::{KdLocator, KdTreePartition};

use spair_roadnet::{NodeId, Point};

/// Region identifier. Regions are numbered `0..num_regions` (the paper's
/// `R1..Rn` shifted to 0-based).
pub type RegionId = u16;

/// A partition of the network nodes into spatial regions.
pub trait Partitioning {
    /// Number of regions.
    fn num_regions(&self) -> usize;

    /// Region containing node `v`.
    fn region_of(&self, v: NodeId) -> RegionId;

    /// Region containing an arbitrary point (used by clients to map the
    /// query's source/destination coordinates to `Rs`/`Rt`).
    fn locate(&self, p: Point) -> RegionId;

    /// Node ids grouped by region, each group sorted ascending. Region
    /// ordering abides by region numbers, which is also the broadcast
    /// order of region data in the cycle (§4.1).
    fn nodes_by_region(&self) -> &[Vec<NodeId>];
}
