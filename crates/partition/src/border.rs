//! Border-node analysis (paper §2.1 / §4.1).
//!
//! A node is a *border node* of its region if at least one adjacent node
//! (in either edge direction — the graph is directed) lies in a different
//! region. Border nodes are where all inter-region shortest paths cross,
//! which is why EB/NR precompute exactly the border-pair distances.
//!
//! EB further classifies the remaining nodes (§4.1, end): a node is
//! *cross-border* if it appears on at least one precomputed border-pair
//! shortest path, otherwise *local*. Cross-border/local is computed later
//! by the precomputation pass (it needs the shortest paths); this module
//! owns the classification storage.

use crate::{Partitioning, RegionId};
use spair_roadnet::{NodeId, RoadNetwork};

/// Classification of a node within its region (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Has a neighbour in another region.
    Border,
    /// Non-border, but lies on some border-pair shortest path.
    CrossBorder,
    /// Appears on no inter-region shortest path.
    Local,
}

/// Border nodes of every region, plus per-node flags.
#[derive(Debug, Clone)]
pub struct BorderInfo {
    is_border: Vec<bool>,
    /// Border node ids per region, ascending.
    per_region: Vec<Vec<NodeId>>,
    /// All border node ids, ascending.
    all: Vec<NodeId>,
}

impl BorderInfo {
    /// Identifies the border nodes of `g` under `part`.
    pub fn compute(g: &RoadNetwork, part: &impl Partitioning) -> Self {
        let mut is_border = vec![false; g.num_nodes()];
        for v in g.node_ids() {
            let rv = part.region_of(v);
            let crosses = g.out_edges(v).any(|(u, _)| part.region_of(u) != rv)
                || g.in_edges(v).any(|(u, _)| part.region_of(u) != rv);
            is_border[v as usize] = crosses;
        }
        let mut per_region = vec![Vec::new(); part.num_regions()];
        let mut all = Vec::new();
        for v in g.node_ids() {
            if is_border[v as usize] {
                per_region[part.region_of(v) as usize].push(v);
                all.push(v);
            }
        }
        Self {
            is_border,
            per_region,
            all,
        }
    }

    /// Whether `v` is a border node.
    #[inline]
    pub fn is_border(&self, v: NodeId) -> bool {
        self.is_border[v as usize]
    }

    /// Border nodes of region `r`, ascending.
    #[inline]
    pub fn of_region(&self, r: RegionId) -> &[NodeId] {
        &self.per_region[r as usize]
    }

    /// All border nodes, ascending.
    #[inline]
    pub fn all(&self) -> &[NodeId] {
        &self.all
    }

    /// Total number of border nodes.
    #[inline]
    pub fn count(&self) -> usize {
        self.all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::KdTreePartition;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{GraphBuilder, Point};

    #[test]
    fn border_definition_holds() {
        let g = small_grid(10, 10, 6);
        let part = KdTreePartition::build(&g, 8);
        let info = BorderInfo::compute(&g, &part);
        for v in g.node_ids() {
            let rv = part.region_of(v);
            let expect = g.out_edges(v).any(|(u, _)| part.region_of(u) != rv)
                || g.in_edges(v).any(|(u, _)| part.region_of(u) != rv);
            assert_eq!(info.is_border(v), expect);
        }
    }

    #[test]
    fn per_region_lists_are_consistent() {
        let g = small_grid(8, 8, 9);
        let part = KdTreePartition::build(&g, 4);
        let info = BorderInfo::compute(&g, &part);
        let mut total = 0;
        for r in 0..part.num_regions() as RegionId {
            for &v in info.of_region(r) {
                assert_eq!(part.region_of(v), r);
                assert!(info.is_border(v));
                total += 1;
            }
        }
        assert_eq!(total, info.count());
        assert_eq!(info.all().len(), info.count());
    }

    #[test]
    fn single_region_has_no_borders() {
        // A grid partition with one cell: nothing crosses regions.
        let g = small_grid(5, 5, 0);
        let part = crate::grid::GridPartition::build(&g, 1, 1);
        let info = BorderInfo::compute(&g, &part);
        assert_eq!(info.count(), 0);
    }

    #[test]
    fn directed_edges_mark_both_endpoints() {
        // 0 --> 1 with a one-way edge across the region boundary: both the
        // source (out-neighbour elsewhere) and the target (in-neighbour
        // elsewhere) are border nodes.
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(10.0, 0.0));
        b.add_node(Point::new(0.0, 1.0));
        b.add_node(Point::new(10.0, 1.0));
        b.add_edge(0, 1, 1); // one-way crossing
        b.add_undirected_edge(0, 2, 1);
        b.add_undirected_edge(1, 3, 1);
        let g = b.finish();
        let part = crate::grid::GridPartition::build(&g, 2, 1);
        let info = BorderInfo::compute(&g, &part);
        assert!(info.is_border(0));
        assert!(info.is_border(1));
        assert!(!info.is_border(2));
        assert!(!info.is_border(3));
    }

    #[test]
    fn border_fraction_shrinks_with_fewer_regions() {
        let g = small_grid(16, 16, 2);
        let few = BorderInfo::compute(&g, &KdTreePartition::build(&g, 4)).count();
        let many = BorderInfo::compute(&g, &KdTreePartition::build(&g, 64)).count();
        assert!(few < many);
    }
}
