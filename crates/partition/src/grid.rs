//! Regular-grid partitioning (paper §4.1, the "straightforward approach").
//!
//! A `k × m` grid of equi-sized rectangular cells over the network's
//! bounding box. The client can map coordinates to regions knowing only the
//! granularity and the total extent. The paper notes the drawback — cells
//! may be empty or overfull, weakening the pruning — which the fine-tuning
//! experiment (Appendix C.1) quantifies; the HiTi baseline also partitions
//! with a grid, per its original design.

use crate::{Partitioning, RegionId};
use serde::{Deserialize, Serialize};
use spair_roadnet::{NodeId, Point, RoadNetwork};

/// A `cols × rows` regular grid partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridPartition {
    min: Point,
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    assignment: Vec<RegionId>,
    #[serde(skip)]
    by_region: Vec<Vec<NodeId>>,
}

impl GridPartition {
    /// Builds a grid partition with the given column/row counts.
    pub fn build(g: &RoadNetwork, cols: usize, rows: usize) -> Self {
        assert!(cols >= 1 && rows >= 1, "grid must have at least one cell");
        assert!(
            cols * rows <= RegionId::MAX as usize + 1,
            "too many regions for RegionId"
        );
        let (min, max) = g.bounding_box();
        let cell_w = ((max.x - min.x) / cols as f64).max(1e-12);
        let cell_h = ((max.y - min.y) / rows as f64).max(1e-12);
        let mut this = Self {
            min,
            cell_w,
            cell_h,
            cols,
            rows,
            assignment: Vec::new(),
            by_region: vec![Vec::new(); cols * rows],
        };
        this.assignment = g
            .node_ids()
            .map(|v| this.locate_inner(g.point(v)))
            .collect();
        for v in g.node_ids() {
            this.by_region[this.assignment[v as usize] as usize].push(v);
        }
        this
    }

    /// Builds a roughly square grid with approximately `target` cells.
    pub fn build_square(g: &RoadNetwork, target: usize) -> Self {
        let side = (target as f64).sqrt().round().max(1.0) as usize;
        Self::build(g, side, target.div_ceil(side))
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn locate_inner(&self, p: Point) -> RegionId {
        let cx = (((p.x - self.min.x) / self.cell_w).floor().max(0.0) as usize).min(self.cols - 1);
        let cy = (((p.y - self.min.y) / self.cell_h).floor().max(0.0) as usize).min(self.rows - 1);
        (cy * self.cols + cx) as RegionId
    }

    /// Cell `(col, row)` of region `r`.
    pub fn cell_of(&self, r: RegionId) -> (usize, usize) {
        (r as usize % self.cols, r as usize / self.cols)
    }

    /// The broadcastable locator (grid geometry).
    pub fn locator(&self) -> GridLocator {
        GridLocator {
            min: self.min,
            cell_w: self.cell_w,
            cell_h: self.cell_h,
            cols: self.cols,
            rows: self.rows,
        }
    }
}

/// The client-side reconstruction of a grid partition: the origin, cell
/// extents and granularity. This is all a client needs to map coordinates
/// to regions (§4.1's "knowledge of the grid granularity and of the total
/// spatial extent").
///
/// The fields must travel as exact `f64`s: cell boundaries coincide with
/// node coordinates in degenerate layouts, and `locate` compares against
/// them with floor/`>=` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridLocator {
    /// Bounding-box origin.
    pub min: Point,
    /// Cell width.
    pub cell_w: f64,
    /// Cell height.
    pub cell_h: f64,
    /// Columns.
    pub cols: usize,
    /// Rows.
    pub rows: usize,
}

impl GridLocator {
    /// Region containing point `p` (out-of-range points clamp to edge
    /// cells, like the server side).
    pub fn locate(&self, p: Point) -> RegionId {
        let cx = (((p.x - self.min.x) / self.cell_w).floor().max(0.0) as usize).min(self.cols - 1);
        let cy = (((p.y - self.min.y) / self.cell_h).floor().max(0.0) as usize).min(self.rows - 1);
        (cy * self.cols + cx) as RegionId
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.cols * self.rows
    }
}

impl Partitioning for GridPartition {
    fn num_regions(&self) -> usize {
        self.cols * self.rows
    }

    fn region_of(&self, v: NodeId) -> RegionId {
        self.assignment[v as usize]
    }

    fn locate(&self, p: Point) -> RegionId {
        self.locate_inner(p)
    }

    fn nodes_by_region(&self) -> &[Vec<NodeId>] {
        &self.by_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn covers_all_nodes_once() {
        let g = small_grid(10, 10, 4);
        let part = GridPartition::build(&g, 4, 4);
        let total: usize = part.nodes_by_region().iter().map(Vec::len).sum();
        assert_eq!(total, g.num_nodes());
        for (r, nodes) in part.nodes_by_region().iter().enumerate() {
            for &v in nodes {
                assert_eq!(part.region_of(v), r as RegionId);
            }
        }
    }

    #[test]
    fn locate_matches_assignment() {
        let g = small_grid(9, 7, 2);
        let part = GridPartition::build(&g, 5, 3);
        for v in g.node_ids() {
            assert_eq!(part.locate(g.point(v)), part.region_of(v));
        }
    }

    #[test]
    fn out_of_bounds_points_clamp_to_edge_cells() {
        let g = small_grid(6, 6, 1);
        let part = GridPartition::build(&g, 3, 3);
        let (min, max) = g.bounding_box();
        let r = part.locate(Point::new(min.x - 100.0, min.y - 100.0));
        assert_eq!(r, 0);
        let r = part.locate(Point::new(max.x + 100.0, max.y + 100.0));
        assert_eq!(r as usize, part.num_regions() - 1);
    }

    #[test]
    fn square_builder_hits_target_roughly() {
        let g = small_grid(8, 8, 0);
        let part = GridPartition::build_square(&g, 16);
        assert_eq!(part.num_regions(), 16);
        let part = GridPartition::build_square(&g, 10);
        assert!(part.num_regions() >= 10 && part.num_regions() <= 12);
    }

    #[test]
    fn cell_of_inverts_region_index() {
        let g = small_grid(6, 6, 3);
        let part = GridPartition::build(&g, 4, 2);
        for r in 0..part.num_regions() as RegionId {
            let (c, row) = part.cell_of(r);
            assert_eq!((row * 4 + c) as RegionId, r);
        }
    }

    #[test]
    fn locator_round_trips() {
        let g = small_grid(9, 7, 2);
        let part = GridPartition::build(&g, 5, 3);
        let loc = part.locator();
        assert_eq!(loc.num_regions(), part.num_regions());
        for v in g.node_ids() {
            assert_eq!(loc.locate(g.point(v)), part.region_of(v));
        }
    }

    #[test]
    fn regular_grid_can_produce_empty_cells() {
        // Nodes clustered in one corner: most grid cells stay empty — the
        // drawback the paper cites for regular grids.
        let mut b = spair_roadnet::GraphBuilder::new();
        for i in 0..10 {
            b.add_node(Point::new(i as f64 * 0.1, 0.0));
        }
        b.add_node(Point::new(100.0, 100.0));
        for i in 0..10 {
            b.add_undirected_edge(i, i + 1, 1);
        }
        let g = b.finish();
        let part = GridPartition::build(&g, 4, 4);
        let empty = part
            .nodes_by_region()
            .iter()
            .filter(|v| v.is_empty())
            .count();
        assert!(empty > 0);
    }
}
