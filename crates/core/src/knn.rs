//! k-nearest-neighbour retrieval on air — the paper's stated future work
//! (§8: "a promising direction ... is to consider on-air processing of
//! spatial queries in road networks, e.g., range and nearest neighbor
//! retrieval").
//!
//! The extension reuses EB's machinery: the broadcast cycle carries the
//! kd splits, the min/max border-distance matrix `A`, the region offset
//! table, the region adjacency data — plus one extra index record stream
//! marking which nodes host points of interest (POIs). The client runs an
//! incremental network expansion (INE-style Dijkstra) from its location
//! and uses `A`'s *min* entries the way EB uses them for pruning, but in
//! one-sided form: a region `R` can contain a POI closer than the current
//! k-th candidate only if `min(Rs, R)` is below that candidate's
//! distance. Regions are received in ascending `min(Rs, ·)` order, so the
//! expansion provably never misses a nearer POI:
//!
//! * any path from `v_s` into region `R` crosses border nodes of `Rs` and
//!   `R`, hence has length at least `min(Rs, R)`;
//! * regions are consumed in ascending `min(Rs, ·)`; when the k-th best
//!   candidate distance is ≤ the next region's bound, no unreceived
//!   region can improve the answer.
//!
//! Range queries (`all POIs within distance d`) fall out of the same scan
//! with the cut-off fixed at `d` instead of the k-th candidate.

use crate::client_common::{find_next_index, receive_segment, MAX_RETRY_CYCLES};
use crate::eb::index::EbIndexDecoder;
use crate::eb::{EbIndex, EbRegionEntry};
use crate::netcodec::{decode_payload, encode_nodes_with_borders, ReceivedGraph};
use crate::precompute::BorderPrecomputation;
use bytes::Bytes;
use spair_broadcast::codec::{EncodeError, PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::interleave::{interleave_1m, optimal_m, DataChunk};
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, BroadcastCycle, CpuMeter, MemoryMeter, QueryStats};
use spair_partition::{KdLocator, KdTreePartition, Partitioning, RegionId};
use spair_roadnet::{Distance, MinHeap, NodeId, Point, RoadNetwork};

const POI_MAGIC: u8 = 0x90;

/// A POI-annotated EB-style broadcast program for on-air kNN.
#[derive(Debug)]
pub struct KnnProgram {
    cycle: BroadcastCycle,
    num_regions: usize,
}

impl KnnProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Number of kd regions.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }
}

/// Server: EB layout plus a POI id stream inside the global index.
pub struct KnnServer<'a> {
    g: &'a RoadNetwork,
    part: &'a KdTreePartition,
    pre: &'a BorderPrecomputation,
    pois: &'a [NodeId],
}

impl<'a> KnnServer<'a> {
    /// Binds the server to its inputs; `pois` are the POI-hosting nodes.
    pub fn new(
        g: &'a RoadNetwork,
        part: &'a KdTreePartition,
        pre: &'a BorderPrecomputation,
        pois: &'a [NodeId],
    ) -> Self {
        assert_eq!(part.num_regions(), pre.num_regions());
        Self { g, part, pre, pois }
    }

    fn poi_payloads(&self) -> Vec<Bytes> {
        let mut w = RecordWriter::new();
        let mut rec = RecordBuf::new();
        for chunk in self.pois.chunks(28) {
            rec.clear();
            rec.put_u8(POI_MAGIC).put_u8(chunk.len() as u8);
            for &p in chunk {
                rec.put_u32(p);
            }
            w.push_record(rec.as_slice());
        }
        w.finish()
    }

    /// Assembles the program. The POI stream rides as extra index packets
    /// after each EB index copy, so a client has POIs and matrix together.
    pub fn build_program(&self) -> Result<KnnProgram, EncodeError> {
        let n = self.part.num_regions();
        // Whole-region payloads (kNN needs local nodes too: a POI can be
        // anywhere, so there is no cross-border shortcut here).
        let region_payloads: Vec<Vec<Bytes>> = (0..n)
            .map(|r| {
                encode_nodes_with_borders(self.g, &self.part.nodes_by_region()[r], |v| {
                    self.pre.borders().is_border(v)
                })
            })
            .collect();

        let index_of = |entries: Vec<EbRegionEntry>| -> Result<Vec<Bytes>, EncodeError> {
            let mut minmax = Vec::with_capacity(n * n);
            for i in 0..n as u16 {
                for j in 0..n as u16 {
                    minmax.push(self.pre.minmax(i, j));
                }
            }
            let mut payloads = EbIndex {
                num_regions: n,
                splits: self.part.splits().to_vec(),
                minmax,
                regions: entries,
            }
            .encode()?;
            payloads.extend(self.poi_payloads());
            Ok(payloads)
        };

        let placeholder: Vec<EbRegionEntry> = (0..n)
            .map(|r| EbRegionEntry {
                data_offset: 0,
                cross_packets: region_payloads[r].len() as u16,
                local_packets: 0,
            })
            .collect();
        let index_payloads = index_of(placeholder)?;
        let index_packets = index_payloads.len();
        let total_data: usize = region_payloads.iter().map(Vec::len).sum();
        let m = optimal_m(total_data, index_packets);

        let chunks = |payloads: &[Vec<Bytes>]| -> Vec<DataChunk> {
            payloads
                .iter()
                .enumerate()
                .map(|(r, p)| DataChunk {
                    kind: SegmentKind::RegionData(r as u16),
                    packet_kind: PacketKind::Data,
                    payloads: p.clone(),
                })
                .collect()
        };
        let dry = interleave_1m(index_payloads, chunks(&region_payloads), m).finish();
        let entries: Vec<EbRegionEntry> = (0..n)
            .map(|r| {
                let seg = dry
                    .find_segment(SegmentKind::RegionData(r as u16))
                    .expect("region segment");
                EbRegionEntry {
                    data_offset: seg.start as u32,
                    cross_packets: region_payloads[r].len() as u16,
                    local_packets: 0,
                }
            })
            .collect();
        let real = index_of(entries)?;
        assert_eq!(real.len(), index_packets, "fixed-width encoding");
        let cycle = interleave_1m(real, chunks(&region_payloads), m).finish();
        Ok(KnnProgram {
            cycle,
            num_regions: n,
        })
    }
}

/// One kNN answer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// POI node.
    pub node: NodeId,
    /// Network distance from the query location.
    pub distance: Distance,
}

/// Result of a kNN query with its measured cost.
#[derive(Debug, Clone)]
pub struct KnnOutcome {
    /// The k nearest POIs, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Performance measurements.
    pub stats: QueryStats,
}

/// The on-air kNN client.
#[derive(Debug, Clone)]
pub struct KnnClient {
    num_regions: usize,
}

/// When the incremental region scan may stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cutoff {
    /// Stop once the k-th candidate beats the next region's lower bound.
    Nearest(usize),
    /// Stop once the next region's lower bound exceeds the radius.
    Radius(Distance),
}

impl KnnClient {
    /// New client for a program with `num_regions` regions.
    pub fn new(num_regions: usize) -> Self {
        Self { num_regions }
    }

    /// Finds the `k` POIs nearest to `source` (located at `source_pt`).
    /// Returns fewer than `k` neighbours only if the network holds fewer
    /// reachable POIs.
    pub fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        source: NodeId,
        source_pt: Point,
        k: usize,
    ) -> Result<KnnOutcome, crate::query::QueryError> {
        self.scan(ch, source, source_pt, Cutoff::Nearest(k))
    }

    /// Finds every POI within network distance `radius` of `source` — the
    /// §8 range query, sharing the kNN scan with the cut-off fixed at
    /// `radius` instead of the k-th candidate.
    pub fn range(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        source: NodeId,
        source_pt: Point,
        radius: Distance,
    ) -> Result<KnnOutcome, crate::query::QueryError> {
        self.scan(ch, source, source_pt, Cutoff::Radius(radius))
    }

    fn scan(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        source: NodeId,
        source_pt: Point,
        cutoff: Cutoff,
    ) -> Result<KnnOutcome, crate::query::QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();

        // Index reception (same discipline as EB, plus the POI stream,
        // which rides as extra `Index`-kind packets after the EB payloads
        // of each copy). The copy's end is recognized by packet kind; lost
        // packets are re-received at the same cycle offsets (§6.2), and
        // ones that turn out to be data packets are simply dropped.
        let mut dec = EbIndexDecoder::new();
        let mut poi_ids: Vec<NodeId> = Vec::new();
        let Some(idx_off) = find_next_index(ch, 10_000) else {
            return Err(crate::query::QueryError::Aborted("no index on channel"));
        };
        ch.sleep_to_offset(idx_off);
        let len = ch.cycle_len();
        let mut lost: Vec<usize> = Vec::new();
        let ingest_index = |payload: &[u8], dec: &mut EbIndexDecoder, poi_ids: &mut Vec<NodeId>| {
            if !dec.ingest(payload) {
                if let Some(ids) = decode_pois(payload) {
                    poi_ids.extend(ids);
                }
            }
        };
        for step in 0.. {
            if step > 2 * len {
                return Err(crate::query::QueryError::Aborted("kNN index never ended"));
            }
            let off = ch.offset();
            match ch.receive() {
                spair_broadcast::Received::Packet(p) if p.kind() == PacketKind::Index => {
                    ingest_index(p.payload(), &mut dec, &mut poi_ids);
                }
                spair_broadcast::Received::Packet(_) => break, // data started
                spair_broadcast::Received::Lost | spair_broadcast::Received::Corrupted => {
                    lost.push(off)
                }
            }
        }
        let mut rounds = 0;
        while !lost.is_empty() {
            rounds += 1;
            if rounds > MAX_RETRY_CYCLES {
                return Err(crate::query::QueryError::Aborted(
                    "kNN index never completed",
                ));
            }
            let mut still = Vec::new();
            for off in lost {
                ch.sleep_to_offset(off);
                match ch.receive() {
                    spair_broadcast::Received::Packet(p) if p.kind() == PacketKind::Index => {
                        ingest_index(p.payload(), &mut dec, &mut poi_ids);
                    }
                    spair_broadcast::Received::Packet(_) => {} // was a data packet
                    spair_broadcast::Received::Lost | spair_broadcast::Received::Corrupted => {
                        still.push(off)
                    }
                }
            }
            lost = still;
        }
        let Some(splits) = dec.splits() else {
            return Err(crate::query::QueryError::Aborted("kNN splits incomplete"));
        };
        let locator = cpu.time(|| KdLocator::from_splits(splits));
        let rs = locator.locate(source_pt);
        let n = dec.num_regions().ok_or(crate::query::QueryError::Aborted(
            "kNN index lost its region count",
        ))? as RegionId;
        debug_assert_eq!(n as usize, self.num_regions);
        mem.alloc(dec.retained_bytes() + poi_ids.len() * 4);
        let is_poi: std::collections::HashSet<NodeId> = poi_ids.iter().copied().collect();

        // Regions ascending by min(Rs, ·) — the reception schedule.
        let mut order: Vec<(Distance, RegionId)> = Vec::with_capacity(n as usize);
        for r in 0..n {
            let b = if r == rs {
                0
            } else {
                dec.minmax(rs, r)
                    .ok_or(crate::query::QueryError::Aborted(
                        "kNN minmax row incomplete",
                    ))?
                    .min
            };
            order.push((b, r));
        }
        order.sort_unstable();

        // Incremental expansion: receive regions in bound order; after
        // each batch, extend Dijkstra; stop when the k-th candidate beats
        // the next region's lower bound.
        let mut store = ReceivedGraph::new();
        let mut missing: Vec<usize> = Vec::new();
        let len = ch.cycle_len();
        let mut found: Vec<Neighbor> = Vec::new();
        let mut consumed = 0usize;
        while consumed < order.len() {
            let (bound, _) = order[consumed];
            let done = match cutoff {
                Cutoff::Nearest(k) => found.len() >= k && found[k - 1].distance <= bound,
                Cutoff::Radius(d) => bound > d,
            };
            if done {
                break;
            }
            // Receive the next region (plus any with the same bound).
            let mut batch = Vec::new();
            let b0 = order[consumed].0;
            while consumed < order.len() && order[consumed].0 == b0 {
                batch.push(order[consumed].1);
                consumed += 1;
            }
            for r in batch {
                let e = dec
                    .region_entry(r)
                    .ok_or(crate::query::QueryError::Aborted(
                        "kNN region entry missing",
                    ))?;
                let got = receive_segment(ch, e.data_offset as usize, e.cross_packets as usize);
                for (i, slot) in got.into_iter().enumerate() {
                    match slot.and_then(|p| decode_payload(&p)) {
                        Some(records) => {
                            for rec in records {
                                mem.alloc(store.ingest(rec));
                            }
                        }
                        None => missing.push((e.data_offset as usize + i) % len),
                    }
                }
            }
            // §6.2: recover losses before searching over the batch.
            let mut rounds = 0;
            while !missing.is_empty() {
                rounds += 1;
                if rounds > MAX_RETRY_CYCLES {
                    return Err(crate::query::QueryError::Aborted(
                        "kNN data never completed",
                    ));
                }
                missing.sort_by_key(|&off| (off + len - ch.offset()) % len);
                let mut still = Vec::new();
                for off in missing {
                    ch.sleep_to_offset(off);
                    match ch.receive().ok().and_then(|p| decode_payload(p.payload())) {
                        Some(records) => {
                            for rec in records {
                                mem.alloc(store.ingest(rec));
                            }
                        }
                        None => still.push(off),
                    }
                }
                missing = still;
            }
            // Re-run the expansion over everything received so far.
            found = cpu.time(|| knn_over_store(&store, source, &is_poi, cutoff));
        }

        mem.alloc(store.num_nodes() * 24);
        match cutoff {
            Cutoff::Nearest(k) => found.truncate(k),
            Cutoff::Radius(d) => found.retain(|nb| nb.distance <= d),
        }
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: store.num_nodes() as u64,
        };
        Ok(KnnOutcome {
            neighbors: found,
            stats,
        })
    }
}

fn decode_pois(payload: &[u8]) -> Option<Vec<NodeId>> {
    let mut r = PayloadReader::new(payload);
    let mut out = Vec::new();
    while !r.is_empty() {
        if r.read_u8()? != POI_MAGIC {
            return None;
        }
        let count = r.read_u8()? as usize;
        for _ in 0..count {
            out.push(r.read_u32()?);
        }
    }
    Some(out)
}

/// Dijkstra over the received subgraph collecting POIs up to the cutoff.
fn knn_over_store(
    store: &ReceivedGraph,
    source: NodeId,
    is_poi: &std::collections::HashSet<NodeId>,
    cutoff: Cutoff,
) -> Vec<Neighbor> {
    use std::collections::HashMap;
    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut heap = MinHeap::new();
    let mut out = Vec::new();
    dist.insert(source, 0);
    heap.push(0, source);
    while let Some(e) = heap.pop() {
        let v = e.item;
        if dist.get(&v) != Some(&e.key) {
            continue;
        }
        if let Cutoff::Radius(d) = cutoff {
            if e.key > d {
                break;
            }
        }
        if is_poi.contains(&v) {
            out.push(Neighbor {
                node: v,
                distance: e.key,
            });
            if let Cutoff::Nearest(k) = cutoff {
                if out.len() >= k {
                    // Keep going only while equal-distance ties remain.
                    if heap.peek_key().is_none_or(|kk| kk > e.key) {
                        break;
                    }
                }
            }
        }
        for &(u, w) in store.out_edges(v) {
            let cand = e.key + w as Distance;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                heap.push(cand, u);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spair_broadcast::LossModel;
    use spair_roadnet::dijkstra_full;
    use spair_roadnet::generators::small_grid;

    fn setup(seed: u64, regions: usize, n_pois: usize) -> (RoadNetwork, Vec<NodeId>, KnnProgram) {
        let g = small_grid(14, 14, seed);
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        let mut rng = StdRng::seed_from_u64(seed + 99);
        let mut pois: Vec<NodeId> = (0..n_pois)
            .map(|_| rng.gen_range(0..g.num_nodes()) as NodeId)
            .collect();
        pois.sort_unstable();
        pois.dedup();
        let program = KnnServer::new(&g, &part, &pre, &pois)
            .build_program()
            .expect("encode");
        (g, pois, program)
    }

    /// Reference kNN by full Dijkstra.
    fn reference_knn(g: &RoadNetwork, s: NodeId, pois: &[NodeId], k: usize) -> Vec<Distance> {
        let tree = dijkstra_full(g, s);
        let mut d: Vec<Distance> = pois
            .iter()
            .filter(|&&p| tree.reachable(p))
            .map(|&p| tree.distance(p))
            .collect();
        d.sort_unstable();
        d.truncate(k);
        d
    }

    #[test]
    fn knn_matches_reference() {
        let (g, pois, program) = setup(3, 8, 20);
        let mut client = KnnClient::new(8);
        for &s in &[0u32, 97, 195] {
            let mut ch = BroadcastChannel::lossless(program.cycle());
            let out = client.query(&mut ch, s, g.point(s), 3).unwrap();
            let got: Vec<Distance> = out.neighbors.iter().map(|n| n.distance).collect();
            assert_eq!(got, reference_knn(&g, s, &pois, 3), "source {s}");
            // Returned neighbours really are POIs.
            for nb in &out.neighbors {
                assert!(pois.contains(&nb.node));
            }
        }
    }

    #[test]
    fn knn_prunes_regions_for_dense_pois() {
        // With POIs everywhere, the nearest ones are local: the client
        // should not receive the whole cycle.
        let (g, _, program) = setup(5, 16, 80);
        let mut client = KnnClient::new(16);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, 0, g.point(0), 2).unwrap();
        assert!(
            (out.stats.tuning_packets as usize) < program.cycle().len(),
            "tuned {} of {}",
            out.stats.tuning_packets,
            program.cycle().len()
        );
        assert_eq!(out.neighbors.len(), 2);
    }

    #[test]
    fn k_larger_than_poi_count() {
        let (g, pois, program) = setup(7, 4, 3);
        let mut client = KnnClient::new(4);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, 10, g.point(10), 10).unwrap();
        assert_eq!(out.neighbors.len(), pois.len());
    }

    #[test]
    fn knn_correct_under_loss() {
        let (g, pois, program) = setup(9, 8, 15);
        let mut client = KnnClient::new(8);
        for seed in 0..3 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 11, LossModel::bernoulli(0.05, seed));
            let out = client.query(&mut ch, 50, g.point(50), 2).unwrap();
            let got: Vec<Distance> = out.neighbors.iter().map(|n| n.distance).collect();
            assert_eq!(got, reference_knn(&g, 50, &pois, 2), "seed {seed}");
        }
    }

    #[test]
    fn range_matches_reference() {
        let (g, pois, program) = setup(13, 8, 25);
        let mut client = KnnClient::new(8);
        let tree = dijkstra_full(&g, 30);
        for radius in [500u64, 2_000, 10_000] {
            let mut ch = BroadcastChannel::lossless(program.cycle());
            let out = client.range(&mut ch, 30, g.point(30), radius).unwrap();
            let mut want: Vec<Distance> = pois
                .iter()
                .filter(|&&p| tree.reachable(p) && tree.distance(p) <= radius)
                .map(|&p| tree.distance(p))
                .collect();
            want.sort_unstable();
            let got: Vec<Distance> = out.neighbors.iter().map(|n| n.distance).collect();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn small_radius_prunes_most_of_the_cycle() {
        let (g, _, program) = setup(15, 16, 60);
        let mut client = KnnClient::new(16);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.range(&mut ch, 0, g.point(0), 200).unwrap();
        assert!(
            (out.stats.tuning_packets as usize) < program.cycle().len() / 2,
            "tuned {} of {}",
            out.stats.tuning_packets,
            program.cycle().len()
        );
    }

    #[test]
    fn range_zero_returns_only_colocated_pois() {
        let (g, pois, program) = setup(17, 4, 30);
        let mut client = KnnClient::new(4);
        let s = pois[0];
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.range(&mut ch, s, g.point(s), 0).unwrap();
        assert!(out.neighbors.iter().all(|n| n.distance == 0));
        assert!(out.neighbors.iter().any(|n| n.node == s));
    }

    #[test]
    fn range_correct_under_loss() {
        let (g, pois, program) = setup(19, 8, 20);
        let mut client = KnnClient::new(8);
        let tree = dijkstra_full(&g, 9);
        let mut want: Vec<Distance> = pois
            .iter()
            .filter(|&&p| tree.reachable(p) && tree.distance(p) <= 3_000)
            .map(|&p| tree.distance(p))
            .collect();
        want.sort_unstable();
        for seed in 0..3 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 5, LossModel::bernoulli(0.05, seed));
            let out = client.range(&mut ch, 9, g.point(9), 3_000).unwrap();
            let got: Vec<Distance> = out.neighbors.iter().map(|n| n.distance).collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn source_on_a_poi_is_distance_zero() {
        let (g, pois, program) = setup(11, 4, 10);
        let s = pois[0];
        let mut client = KnnClient::new(4);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, s, g.point(s), 1).unwrap();
        assert_eq!(out.neighbors[0].node, s);
        assert_eq!(out.neighbors[0].distance, 0);
    }
}
