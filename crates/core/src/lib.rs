//! The paper's contribution: **Elliptic Boundary (EB)** and **Next Region
//! (NR)** air-index methods for shortest path computation on wireless
//! broadcast channels (Kellaris & Mouratidis, PVLDB 2010).
//!
//! Both methods partition the road network into regions (kd-tree, §4.1),
//! precompute shortest paths between all border nodes of different regions
//! on the server, and broadcast concise per-region metadata so a client can
//! *selectively tune*: it listens only to the regions that can contain its
//! shortest path and sleeps through everything else.
//!
//! * **EB** (§4) broadcasts an `n × n` matrix of min/max border-pair
//!   distances. The max entry for `(Rs, Rt)` upper-bounds the inter-region
//!   portion of any source-target path, and a region `R` survives pruning
//!   only if `min(Rs,R) + min(R,Rt)` does not exceed that bound — a
//!   network-distance "ellipse" with foci `Rs` and `Rt`.
//! * **NR** (§5) stores, per region pair, which regions some border-pair
//!   shortest path traverses — but instead of broadcasting the full n³
//!   table, each region `Rm` is preceded by a small local index `A^m`
//!   telling the client only *the next needed region* in broadcast order.
//!   The client hops from region to region, never receiving a global index.
//!
//! Additional machinery: [`memory_bound`] implements §6.1 (collapse each
//! received region into super-edges between its border nodes, for
//! heap-constrained devices), and both clients implement the packet-loss
//! recovery rules of §6.2.
//!
//! The crate also hosts the pieces shared with the baseline methods:
//! [`precompute`] (border-pair Dijkstra pass) and [`netcodec`] (the on-air
//! encoding of adjacency lists).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client_common;
pub mod eb;
pub mod knn;
pub mod memory_bound;
pub mod netcodec;
pub mod nr;
pub mod onedge;
pub mod patch;
pub mod precompute;
pub mod query;
pub mod regionset;
pub mod session;

pub use eb::{EbClient, EbProgram, EbServer, EbSummary};
pub use knn::{KnnClient, KnnProgram, KnnServer};
pub use memory_bound::MemoryBoundProcessor;
pub use nr::{NrClient, NrProgram, NrServer, NrSummary};
pub use onedge::{on_edge_query, OnEdgeOutcome, OnEdgePoint};
pub use patch::{
    build_patch_cycle, receive_patch, ClientArena, Coverage, PatchError, PatchReport, WeightDelta,
};
pub use precompute::{BorderPrecomputation, MinMax};
pub use query::{Query, QueryError, QueryOutcome};
pub use regionset::RegionSet;
pub use session::{
    supervise, supervise_query, AttemptReport, RecoveryBudget, SessionError, SessionOutcome,
    SupervisedSession,
};
