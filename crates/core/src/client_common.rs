//! Shared client-side reception routines, including the §6.2 loss recovery
//! discipline: "missing any needed adjacency data still requires waiting
//! for the next cycle".

use bytes::Bytes;
use spair_broadcast::{BroadcastChannel, Received};

/// Receives the `len` packets starting at cycle offset `offset`, sleeping
/// to the start first. Lost packets yield `None` at their position.
pub fn receive_segment(
    ch: &mut BroadcastChannel<'_>,
    offset: usize,
    len: usize,
) -> Vec<Option<Bytes>> {
    ch.sleep_to_offset(offset);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(ch.receive().ok().map(|p| p.payload().clone()));
    }
    out
}

/// Receives a segment reliably: lost packets are re-received in subsequent
/// broadcast cycles (each retry wakes up exactly at the still-missing
/// offsets, sleeping in between). Gives up after `max_cycles` extra cycles
/// and returns `None` — only possible at loss rates far beyond the
/// evaluated 10%.
pub fn receive_segment_reliable(
    ch: &mut BroadcastChannel<'_>,
    offset: usize,
    len: usize,
    max_cycles: usize,
) -> Option<Vec<Bytes>> {
    let mut slots = receive_segment(ch, offset, len);
    let mut rounds = 0;
    while slots.iter().any(Option::is_none) {
        rounds += 1;
        if rounds > max_cycles {
            return None;
        }
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                ch.sleep_to_offset((offset + i) % ch.cycle_len());
                *slot = ch.receive().ok().map(|p| p.payload().clone());
            }
        }
    }
    // The loop above only exits once every slot is filled; a `None` here
    // would be a logic error, so degrade to a typed give-up, not a panic.
    slots.into_iter().collect()
}

/// Retry budget for reliable reception; at the paper's worst loss rate
/// (10%) the probability of a packet still missing after 100 cycles is
/// 10^-100 — this is an abort guard, not a tuning knob.
pub const MAX_RETRY_CYCLES: usize = 100;

/// Listens to one packet to learn the pointer to the next index copy.
/// If the packet is lost, keeps listening (each subsequent packet also
/// carries the pointer). Returns the cycle offset where the next index
/// copy starts.
pub fn find_next_index(ch: &mut BroadcastChannel<'_>, max_attempts: usize) -> Option<usize> {
    for _ in 0..max_attempts {
        if let Received::Packet(p) = ch.receive() {
            let ni = p.next_index();
            if ni == u32::MAX {
                return None; // cycle carries no index at all
            }
            return Some((ch.offset() + ni as usize) % ch.cycle_len());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::cycle::{CycleBuilder, SegmentKind};
    use spair_broadcast::packet::PacketKind;
    use spair_broadcast::LossModel;

    fn test_cycle(n: usize) -> spair_broadcast::BroadcastCycle {
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::GlobalIndex,
            PacketKind::Index,
            vec![Bytes::from(vec![255u8])],
        );
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            (1..n).map(|i| Bytes::from(vec![i as u8])).collect(),
        );
        b.finish()
    }

    #[test]
    fn segment_reception_in_order() {
        let c = test_cycle(10);
        let mut ch = BroadcastChannel::lossless(&c);
        let got = receive_segment(&mut ch, 3, 4);
        let bytes: Vec<u8> = got.iter().map(|o| o.as_ref().unwrap()[0]).collect();
        assert_eq!(bytes, vec![3, 4, 5, 6]);
        assert_eq!(ch.tuned(), 4);
    }

    #[test]
    fn segment_wraps_cycle() {
        let c = test_cycle(6);
        let mut ch = BroadcastChannel::lossless(&c);
        let got = receive_segment(&mut ch, 4, 4);
        let bytes: Vec<u8> = got.iter().map(|o| o.as_ref().unwrap()[0]).collect();
        assert_eq!(bytes, vec![4, 5, 255, 1]);
    }

    #[test]
    fn reliable_reception_recovers_losses() {
        let c = test_cycle(20);
        let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bernoulli(0.3, 99));
        let got = receive_segment_reliable(&mut ch, 2, 10, MAX_RETRY_CYCLES).unwrap();
        let bytes: Vec<u8> = got.iter().map(|b| b[0]).collect();
        assert_eq!(bytes, (2..12).map(|i| i as u8).collect::<Vec<_>>());
        // Retries cost extra tuning and latency.
        assert!(ch.tuned() >= 10);
    }

    #[test]
    fn reliable_reception_lossless_is_one_pass() {
        let c = test_cycle(12);
        let mut ch = BroadcastChannel::lossless(&c);
        let got = receive_segment_reliable(&mut ch, 0, 5, MAX_RETRY_CYCLES).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(ch.tuned(), 5);
        assert_eq!(ch.elapsed(), 5);
    }

    #[test]
    fn find_next_index_follows_pointer() {
        let c = test_cycle(8);
        // Tune in mid-data: pointer should lead to offset 0 (the index).
        let mut ch = BroadcastChannel::tune_in(&c, 3, LossModel::Lossless);
        let idx = find_next_index(&mut ch, 10).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(ch.tuned(), 1);
    }

    #[test]
    fn find_next_index_retries_on_loss() {
        let c = test_cycle(8);
        let mut ch = BroadcastChannel::tune_in(&c, 3, LossModel::bernoulli(0.5, 7));
        let idx = find_next_index(&mut ch, 1000).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn find_next_index_none_without_index() {
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            vec![Bytes::from(vec![1u8]); 4],
        );
        let c = b.finish();
        let mut ch = BroadcastChannel::lossless(&c);
        assert_eq!(find_next_index(&mut ch, 10), None);
    }
}
