//! Arbitrary on-edge source/destination positions (paper §5, closing
//! remark: "In practice ... the source/destination could be at arbitrary
//! locations on the network. EB and NR work as described").
//!
//! A position on an arc can only start travelling by reaching one of the
//! arc's endpoints (and can only be reached through one). The on-edge
//! answer therefore decomposes over endpoint choices:
//!
//! ```text
//! d(p, q) = min over a in exits(p), b in entries(q) of
//!           cost(p -> a) + d(a, b) + cost(b -> q)
//!           (plus the direct along-the-edge walk when p, q share an arc)
//! ```
//!
//! The node-to-node terms are ordinary air queries, so any broadcast
//! method answers on-edge queries unchanged — the decomposition runs as a
//! thin client-side wrapper around an [`AirClient`](crate::query::AirClient).
//! For an undirected
//! road segment that is at most four node-pair queries (the paper's §5
//! border-redefinition folds these into one tuned reception; the wrapper
//! instead reports the summed tuning cost, a documented upper bound).
//!
//! Correctness is property-tested against physically splitting the edges
//! with [`spair_roadnet::insert_positions`] and running whole-graph
//! Dijkstra.

use crate::query::{Query, QueryError, QueryOutcome};
use spair_broadcast::QueryStats;
use spair_roadnet::{Distance, NodeId, Point, RoadNetwork, Weight};

/// A query endpoint: a network node or a position strictly inside an arc.
///
/// Endpoint entries carry the endpoint node's *own* coordinates alongside
/// the id: the node-to-node sub-queries must be located (region lookup,
/// quadtree color lookup) at the node coordinate — §3.2's assumption —
/// not at the interpolated on-edge position, whose containing region/cell
/// can differ.
#[derive(Debug, Clone, PartialEq)]
pub struct OnEdgePoint {
    /// Coordinates of the position itself (reporting only).
    pub pt: Point,
    /// `(endpoint, cost, endpoint coordinates)` triples travel can start
    /// through.
    pub exits: Vec<(NodeId, Weight, Point)>,
    /// `(endpoint, cost, endpoint coordinates)` triples travel can arrive
    /// through.
    pub entries: Vec<(NodeId, Weight, Point)>,
    /// Canonical arc `(from, to)` the position lies on, with the offset
    /// from `from` — used for the same-arc direct-walk candidate. `None`
    /// for node endpoints.
    pub arc: Option<(NodeId, NodeId, Weight)>,
}

impl OnEdgePoint {
    /// Endpoint at a network node.
    pub fn at_node(g: &RoadNetwork, v: NodeId) -> Self {
        Self {
            pt: g.point(v),
            exits: vec![(v, 0, g.point(v))],
            entries: vec![(v, 0, g.point(v))],
            arc: None,
        }
    }

    /// Position `along` weight units into the directed arc `from -> to`
    /// (one-way street: travel exits through `to`, arrives through
    /// `from`). Panics if the arc is missing or `along` not strictly
    /// inside.
    pub fn on_arc(g: &RoadNetwork, from: NodeId, to: NodeId, along: Weight) -> Self {
        let w = g
            .weight_between(from, to)
            .unwrap_or_else(|| panic!("no arc {from} -> {to}"));
        assert!(along > 0 && along < w, "position must be strictly inside");
        Self {
            pt: interpolate(g, from, to, along, w),
            exits: vec![(to, w - along, g.point(to))],
            entries: vec![(from, along, g.point(from))],
            arc: Some((from, to, along)),
        }
    }

    /// Position on an undirected road segment `{a, b}` (both arcs must
    /// exist with equal weight): travel can exit and arrive through both
    /// endpoints.
    pub fn on_undirected(g: &RoadNetwork, a: NodeId, b: NodeId, along: Weight) -> Self {
        let w = g
            .weight_between(a, b)
            .unwrap_or_else(|| panic!("no arc {a} -> {b}"));
        assert_eq!(
            g.weight_between(b, a),
            Some(w),
            "undirected position needs symmetric arcs"
        );
        assert!(along > 0 && along < w, "position must be strictly inside");
        Self {
            pt: interpolate(g, a, b, along, w),
            exits: vec![(a, along, g.point(a)), (b, w - along, g.point(b))],
            entries: vec![(a, along, g.point(a)), (b, w - along, g.point(b))],
            arc: Some((a, b, along)),
        }
    }
}

fn interpolate(g: &RoadNetwork, a: NodeId, b: NodeId, along: Weight, w: Weight) -> Point {
    let (pa, pb) = (g.point(a), g.point(b));
    let t = along as f64 / w as f64;
    Point::new(pa.x + t * (pb.x - pa.x), pa.y + t * (pb.y - pa.y))
}

/// An on-edge shortest path: partial first/last edge costs around a node
/// path.
#[derive(Debug, Clone, PartialEq)]
pub struct OnEdgeOutcome {
    /// Total distance including the partial edge segments.
    pub distance: Distance,
    /// Cost from the source position to `nodes.first()` (0 for node
    /// sources and direct walks).
    pub src_partial: Weight,
    /// Node path between the chosen endpoints (empty for a same-arc
    /// direct walk).
    pub nodes: Vec<NodeId>,
    /// Cost from `nodes.last()` to the destination position.
    pub dst_partial: Weight,
    /// Summed measurements over every underlying air query.
    pub stats: QueryStats,
}

/// Answers an on-edge query by endpoint decomposition, delegating each
/// node-to-node term to `run` (typically a closure that tunes a fresh
/// channel session and calls an [`AirClient`](crate::query::AirClient)).
///
/// `run` is invoked at most `exits × entries` times (≤ 4 for undirected
/// positions); same-endpoint combinations short-circuit without a query.
pub fn on_edge_query(
    src: &OnEdgePoint,
    dst: &OnEdgePoint,
    mut run: impl FnMut(&Query) -> Result<QueryOutcome, QueryError>,
) -> Result<OnEdgeOutcome, QueryError> {
    let mut best: Option<OnEdgeOutcome> = None;
    let mut stats = QueryStats::default();
    fn consider(best: &mut Option<OnEdgeOutcome>, cand: OnEdgeOutcome) {
        if best.as_ref().is_none_or(|b| cand.distance < b.distance) {
            *best = Some(cand);
        }
    }

    // Same-arc direct walk.
    if let (Some((a1, b1, o1)), Some((a2, b2, o2))) = (src.arc, dst.arc) {
        if (a1, b1) == (a2, b2) {
            if o2 >= o1 && src.exits.iter().any(|&(v, _, _)| v == b1) {
                consider(
                    &mut best,
                    OnEdgeOutcome {
                        distance: (o2 - o1) as Distance,
                        src_partial: o2 - o1,
                        nodes: Vec::new(),
                        dst_partial: 0,
                        stats: QueryStats::default(),
                    },
                );
            }
            if o1 >= o2 && src.exits.iter().any(|&(v, _, _)| v == a1) {
                consider(
                    &mut best,
                    OnEdgeOutcome {
                        distance: (o1 - o2) as Distance,
                        src_partial: o1 - o2,
                        nodes: Vec::new(),
                        dst_partial: 0,
                        stats: QueryStats::default(),
                    },
                );
            }
        }
    }

    let mut any_reachable = best.is_some();
    for &(a, ca, pa) in &src.exits {
        for &(b, cb, pb) in &dst.entries {
            if a == b {
                any_reachable = true;
                consider(
                    &mut best,
                    OnEdgeOutcome {
                        distance: ca as Distance + cb as Distance,
                        src_partial: ca,
                        nodes: vec![a],
                        dst_partial: cb,
                        stats: QueryStats::default(),
                    },
                );
                continue;
            }
            // Node coordinates, not the on-edge position: the underlying
            // air query is an ordinary node-to-node query (§3.2).
            let q = Query {
                source: a,
                target: b,
                source_pt: pa,
                target_pt: pb,
            };
            match run(&q) {
                Ok(out) => {
                    any_reachable = true;
                    stats.add(&out.stats);
                    consider(
                        &mut best,
                        OnEdgeOutcome {
                            distance: ca as Distance + out.distance + cb as Distance,
                            src_partial: ca,
                            nodes: out.path,
                            dst_partial: cb,
                            stats: QueryStats::default(),
                        },
                    );
                }
                Err(QueryError::Unreachable) => {}
                Err(e) => return Err(e),
            }
        }
    }

    match best {
        Some(mut out) if any_reachable => {
            out.stats = stats;
            Ok(out)
        }
        _ => Err(QueryError::Unreachable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, dijkstra_to_target, insert_positions, EdgePosition};

    /// Plain-Dijkstra runner standing in for an air client.
    fn local_runner(
        g: &RoadNetwork,
    ) -> impl FnMut(&Query) -> Result<QueryOutcome, QueryError> + '_ {
        move |q: &Query| match dijkstra_to_target(g, q.source, q.target) {
            Some((d, path)) => Ok(QueryOutcome {
                distance: d,
                path,
                stats: QueryStats::default(),
            }),
            None => Err(QueryError::Unreachable),
        }
    }

    fn splittable_arc(g: &RoadNetwork) -> (NodeId, NodeId, Weight) {
        for v in g.node_ids() {
            for (u, w) in g.out_edges(v) {
                if w >= 4 {
                    return (v, u, w);
                }
            }
        }
        panic!("no arc with weight >= 4");
    }

    #[test]
    fn node_to_node_degenerates_to_plain_query() {
        let g = small_grid(6, 6, 1);
        let src = OnEdgePoint::at_node(&g, 0);
        let dst = OnEdgePoint::at_node(&g, 35);
        let out = on_edge_query(&src, &dst, local_runner(&g)).unwrap();
        assert_eq!(Some(out.distance), dijkstra_distance(&g, 0, 35));
        assert_eq!(out.src_partial, 0);
        assert_eq!(out.dst_partial, 0);
    }

    #[test]
    fn on_edge_source_matches_split_graph_reference() {
        let g = small_grid(7, 7, 2);
        let (u, v, w) = splittable_arc(&g);
        let along = w / 2;
        let src = OnEdgePoint::on_undirected(&g, u, v, along);
        for t in [0u32, 24, 48] {
            let dst = OnEdgePoint::at_node(&g, t);
            let out = on_edge_query(&src, &dst, local_runner(&g)).unwrap();
            let (g2, ids) = insert_positions(
                &g,
                &[EdgePosition {
                    from: u,
                    to: v,
                    along,
                }],
            );
            assert_eq!(
                Some(out.distance),
                dijkstra_distance(&g2, ids[0], t),
                "target {t}"
            );
        }
    }

    #[test]
    fn both_endpoints_on_edges_match_reference() {
        let g = small_grid(8, 8, 5);
        let (u1, v1, w1) = splittable_arc(&g);
        // A second splittable arc, distinct from the first.
        let (u2, v2, w2) = {
            let mut found = None;
            'outer: for x in g.node_ids() {
                for (y, wt) in g.out_edges(x) {
                    let same = (x, y) == (u1, v1) || (x, y) == (v1, u1);
                    if wt >= 4 && !same {
                        found = Some((x, y, wt));
                        break 'outer;
                    }
                }
            }
            found.expect("second arc")
        };
        let (a1, a2) = (w1 / 3, 2 * w2 / 3);
        let src = OnEdgePoint::on_undirected(&g, u1, v1, a1);
        let dst = OnEdgePoint::on_undirected(&g, u2, v2, a2);
        let out = on_edge_query(&src, &dst, local_runner(&g)).unwrap();
        let (g2, ids) = insert_positions(
            &g,
            &[
                EdgePosition {
                    from: u1,
                    to: v1,
                    along: a1,
                },
                EdgePosition {
                    from: u2,
                    to: v2,
                    along: a2,
                },
            ],
        );
        assert_eq!(Some(out.distance), dijkstra_distance(&g2, ids[0], ids[1]));
    }

    #[test]
    fn same_arc_positions_use_the_direct_walk() {
        let g = small_grid(5, 5, 4);
        let (u, v, w) = splittable_arc(&g);
        let src = OnEdgePoint::on_undirected(&g, u, v, 1);
        let dst = OnEdgePoint::on_undirected(&g, u, v, w - 1);
        let out = on_edge_query(&src, &dst, local_runner(&g)).unwrap();
        let (g2, ids) = insert_positions(
            &g,
            &[
                EdgePosition {
                    from: u,
                    to: v,
                    along: 1,
                },
                EdgePosition {
                    from: u,
                    to: v,
                    along: w - 1,
                },
            ],
        );
        assert_eq!(Some(out.distance), dijkstra_distance(&g2, ids[0], ids[1]));
        // On a metric grid the direct walk wins.
        assert_eq!(out.distance, (w - 2) as Distance);
    }

    #[test]
    fn directed_arc_position_cannot_go_backwards() {
        // One-way pair: 0 -> 1 -> 2, plus a long way back 2 -> 0.
        let mut b = spair_roadnet::GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 0, 100);
        let g = b.finish();
        let src = OnEdgePoint::on_arc(&g, 0, 1, 4);
        // Reaching node 0 requires driving forward to 1, then around.
        let dst = OnEdgePoint::at_node(&g, 0);
        let out = on_edge_query(&src, &dst, local_runner(&g)).unwrap();
        assert_eq!(out.distance, 6 + 10 + 100);
    }

    #[test]
    fn unreachable_propagates() {
        let mut b = spair_roadnet::GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(2.0, 0.0));
        b.add_undirected_edge(0, 1, 8);
        let g = b.finish();
        let src = OnEdgePoint::on_undirected(&g, 0, 1, 3);
        let dst = OnEdgePoint::at_node(&g, 2);
        assert_eq!(
            on_edge_query(&src, &dst, local_runner(&g)).unwrap_err(),
            QueryError::Unreachable
        );
    }

    #[test]
    fn stats_accumulate_over_combos() {
        let g = small_grid(6, 6, 8);
        let (u, v, w) = splittable_arc(&g);
        let src = OnEdgePoint::on_undirected(&g, u, v, w / 2);
        let dst = OnEdgePoint::at_node(&g, 30);
        let mut calls = 0usize;
        let out = on_edge_query(&src, &dst, |q| {
            calls += 1;
            let mut o = local_runner(&g)(q)?;
            o.stats.tuning_packets = 7;
            Ok(o)
        })
        .unwrap();
        assert!(calls <= 2, "at most exits x entries runs");
        assert_eq!(out.stats.tuning_packets, 7 * calls as u64);
    }
}
