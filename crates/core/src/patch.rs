//! Versioned delta-broadcast of live weight updates (dynamic worlds).
//!
//! A static broadcast program repeats one cycle forever; when edge
//! weights change between cycles (rush-hour ramps, incidents), the server
//! additionally broadcasts a small **patch cycle** carrying only the
//! changed weights, version-stamped, so a client that already holds a
//! received arena from version `v` can upgrade it to `v+1` in place —
//! re-tuning for a handful of patch packets instead of a whole program.
//!
//! Wire format (all little-endian, packets per [`spair_broadcast`]):
//!
//! * **Directory** segment ([`SegmentKind::PatchIndex`], packets of kind
//!   `Index` so every other packet's next-index pointer leads here). Every
//!   directory packet is self-describing: a 12-byte global record
//!   (`version:u32, base_version:u32, region_count:u16, seq:u16`)
//!   followed by up to [`PATCH_DIR_REGIONS_PER_PACKET`] region records
//!   (`region:u16, start:u32, packets:u16, entries:u32` — `start` is the
//!   absolute cycle offset of that region's data segment). The directory
//!   packet count is a closed-form function of `region_count`, so a
//!   client needs one intact directory packet to know the whole layout.
//! * **Data** segments ([`SegmentKind::PatchData`], packets of kind
//!   `Patch`), one per region with changes, in region order: 12-byte
//!   records `from:u32, to:u32, weight:u32`, packed via the shared
//!   record codec (records never straddle packets).
//!
//! The client protocol ([`receive_patch`]) checks the patch's
//! `base_version` against the arena's version **before** touching any
//! data: a stale or skipped version surfaces as the typed
//! [`PatchError::Stale`], leaving the arena byte-identical, so the caller
//! can fall back to a full re-tune under its recovery supervisor.

use crate::client_common::{find_next_index, receive_segment_reliable, MAX_RETRY_CYCLES};
use crate::netcodec::{PatchApply, ReceivedGraph};
use bytes::Bytes;
use spair_broadcast::codec::{PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, BroadcastCycle, CycleBuilder};
use spair_roadnet::{NodeId, Weight};

/// Bytes of the directory's global record.
pub const PATCH_DIR_GLOBAL_BYTES: usize = 12;
/// Bytes of one directory region record.
pub const PATCH_DIR_REGION_BYTES: usize = 12;
/// Region records per directory packet: `(123 - 12) / 12`.
pub const PATCH_DIR_REGIONS_PER_PACKET: usize =
    (spair_broadcast::packet::PAYLOAD_CAPACITY - PATCH_DIR_GLOBAL_BYTES) / PATCH_DIR_REGION_BYTES;
/// Bytes of one weight-delta record.
pub const PATCH_ENTRY_BYTES: usize = 12;

/// Directory packets needed to list `region_count` regions (at least one,
/// so even an empty patch carries its version stamps).
pub fn dir_packet_count(region_count: usize) -> usize {
    region_count.div_ceil(PATCH_DIR_REGIONS_PER_PACKET).max(1)
}

/// One changed edge weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightDelta {
    /// Edge source (broadcast node id).
    pub from: NodeId,
    /// Edge target.
    pub to: NodeId,
    /// The new weight.
    pub weight: Weight,
}

/// The version stamps every directory packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchHeader {
    /// The version this patch upgrades an arena *to*.
    pub version: u32,
    /// The version an arena must hold for the patch to apply.
    pub base_version: u32,
    /// Regions listed in the directory (regions with changes).
    pub region_count: u16,
}

/// One region's row in the patch directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchRegionEntry {
    /// Region id.
    pub region: u16,
    /// Absolute cycle offset of the region's data segment.
    pub start: u32,
    /// Data segment length in packets.
    pub packets: u16,
    /// Delta records in the segment.
    pub entries: u32,
}

/// Builds the patch cycle upgrading `base_version` to `version`.
///
/// `deltas` holds `(region, changed edges)` groups — the server groups a
/// delta under `region_of(from)`, so a client holding a region's nodes
/// knows that listening to that region's patch segment covers every edge
/// it materialized from it. Groups with no changes are dropped; group
/// order is normalized to ascending region id. An all-empty delta set is
/// legal and yields a directory-only cycle (pure version heartbeat).
pub fn build_patch_cycle(
    version: u32,
    base_version: u32,
    deltas: &[(u16, Vec<WeightDelta>)],
) -> BroadcastCycle {
    let mut groups: Vec<(u16, &[WeightDelta])> = deltas
        .iter()
        .filter(|(_, d)| !d.is_empty())
        .map(|(r, d)| (*r, d.as_slice()))
        .collect();
    groups.sort_by_key(|&(r, _)| r);

    // Encode every region's data first so the directory can carry exact
    // segment offsets (the layout is: directory, then data in order).
    let mut region_payloads: Vec<Vec<Bytes>> = Vec::with_capacity(groups.len());
    for (_, ds) in &groups {
        let mut w = RecordWriter::new();
        let mut rec = RecordBuf::new();
        for d in ds.iter() {
            rec.clear();
            rec.put_u32(d.from).put_u32(d.to).put_u32(d.weight);
            w.push_record(rec.as_slice());
        }
        region_payloads.push(w.finish());
    }
    let dpkts = dir_packet_count(groups.len());
    let mut starts: Vec<u32> = Vec::with_capacity(groups.len());
    let mut at = dpkts;
    for p in &region_payloads {
        starts.push(at as u32);
        at += p.len();
    }

    let mut dir: Vec<Bytes> = Vec::with_capacity(dpkts);
    let mut rec = RecordBuf::new();
    for seq in 0..dpkts {
        rec.clear();
        rec.put_u32(version)
            .put_u32(base_version)
            .put_u16(groups.len() as u16)
            .put_u16(seq as u16);
        let lo = seq * PATCH_DIR_REGIONS_PER_PACKET;
        let hi = (lo + PATCH_DIR_REGIONS_PER_PACKET).min(groups.len());
        for i in lo..hi {
            rec.put_u16(groups[i].0)
                .put_u32(starts[i])
                .put_u16(region_payloads[i].len() as u16)
                .put_u32(groups[i].1.len() as u32);
        }
        dir.push(Bytes::copy_from_slice(rec.as_slice()));
    }

    let mut b = CycleBuilder::new();
    b.push_segment(SegmentKind::PatchIndex, PacketKind::Index, dir);
    for (i, payloads) in region_payloads.into_iter().enumerate() {
        b.push_segment(
            SegmentKind::PatchData(groups[i].0),
            PacketKind::Patch,
            payloads,
        );
    }
    b.finish()
}

/// Incremental directory decoder: feed it intact directory payloads (in
/// any order, duplicates welcome) until [`PatchDecoder::is_complete`].
#[derive(Debug, Default)]
pub struct PatchDecoder {
    header: Option<PatchHeader>,
    regions: std::collections::BTreeMap<u16, PatchRegionEntry>,
}

impl PatchDecoder {
    /// Empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The version stamps, once any directory packet decoded.
    pub fn header(&self) -> Option<PatchHeader> {
        self.header
    }

    /// Region entries decoded so far, keyed by region id.
    pub fn regions(&self) -> &std::collections::BTreeMap<u16, PatchRegionEntry> {
        &self.regions
    }

    /// All regions listed?
    pub fn is_complete(&self) -> bool {
        self.header
            .is_some_and(|h| self.regions.len() == h.region_count as usize)
    }

    /// Decodes one directory payload. `None` on malformed bytes or a
    /// version stamp contradicting an earlier packet (both are treated
    /// like a lost packet by the client).
    pub fn ingest_directory_payload(&mut self, payload: &[u8]) -> Option<()> {
        let mut r = PayloadReader::new(payload);
        let version = r.read_u32()?;
        let base_version = r.read_u32()?;
        let region_count = r.read_u16()?;
        let _seq = r.read_u16()?;
        let header = PatchHeader {
            version,
            base_version,
            region_count,
        };
        if *self.header.get_or_insert(header) != header {
            return None;
        }
        if !r.remaining().is_multiple_of(PATCH_DIR_REGION_BYTES) {
            return None;
        }
        while !r.is_empty() {
            let region = r.read_u16()?;
            let start = r.read_u32()?;
            let packets = r.read_u16()?;
            let entries = r.read_u32()?;
            self.regions.insert(
                region,
                PatchRegionEntry {
                    region,
                    start,
                    packets,
                    entries,
                },
            );
        }
        Some(())
    }
}

/// Decodes the weight-delta records of one data payload. `None` on
/// malformed bytes.
pub fn decode_patch_payload(payload: &[u8]) -> Option<Vec<WeightDelta>> {
    let mut r = PayloadReader::new(payload);
    if !r.remaining().is_multiple_of(PATCH_ENTRY_BYTES) {
        return None;
    }
    let mut out = Vec::with_capacity(r.remaining() / PATCH_ENTRY_BYTES);
    while !r.is_empty() {
        out.push(WeightDelta {
            from: r.read_u32()?,
            to: r.read_u32()?,
            weight: r.read_u32()?,
        });
    }
    Some(out)
}

/// Which patch regions a client's arena needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coverage {
    /// The arena holds the whole network (DJ and the whole-cycle search
    /// methods): listen to every listed region.
    Whole,
    /// The arena holds these regions only (NR/EB selective tuning):
    /// listen to the intersection with the directory.
    Regions(Vec<u16>),
}

/// A session's received arena handed to the dynamic-world driver: the
/// store plus what part of the network it covers.
#[derive(Debug)]
pub struct ClientArena {
    /// The received (materialized-complete) adjacency arena.
    pub store: ReceivedGraph,
    /// Regions the store's materialized nodes came from.
    pub coverage: Coverage,
}

/// Why a patch could not be applied. Every variant is typed so the
/// caller's supervisor can classify its fallback re-tune.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The patch upgrades `base`, the arena holds `have` — the client
    /// slept through a version (or tuned into the future). The arena is
    /// untouched.
    Stale {
        /// The arena's version.
        have: u32,
        /// The version the patch applies to.
        base: u32,
    },
    /// A delta named an edge the arena's materialized source node does
    /// not carry — the patch stream contradicts the arena (every
    /// materialized node holds its complete adjacency).
    MissingEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// Reception never completed within the retry budget.
    Aborted(&'static str),
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::Stale { have, base } => {
                write!(f, "stale arena: holds v{have}, patch upgrades v{base}")
            }
            PatchError::MissingEdge { from, to } => {
                write!(f, "patch names unheld edge {from}->{to}")
            }
            PatchError::Aborted(why) => write!(f, "patch reception aborted: {why}"),
        }
    }
}

impl std::error::Error for PatchError {}

/// What one successful patch session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchReport {
    /// The arena's new version.
    pub version: u32,
    /// Deltas applied to held edges.
    pub applied: usize,
    /// Deltas skipped because their source node is not materialized
    /// (local nodes of a region the arena only holds cross data of).
    pub skipped_not_held: usize,
    /// Patch data segments listened to.
    pub regions_listened: usize,
}

/// Runs one client patch session over a tuned-in patch channel: finds
/// the directory via the next-index pointer, decodes it (with §6.2
/// re-reception of lost packets), verifies the version stamps, then
/// listens to exactly the covered regions' data segments and applies
/// their deltas to `store`.
///
/// On [`PatchError::Stale`] the store is untouched — the check happens
/// before any data reception. Packet costs are read off the channel by
/// the caller (`ch.tuned()` / `ch.elapsed()`).
pub fn receive_patch(
    ch: &mut BroadcastChannel<'_>,
    have_version: u32,
    coverage: &Coverage,
    store: &mut ReceivedGraph,
) -> Result<PatchReport, PatchError> {
    let len = ch.cycle_len();
    let dir = find_next_index(ch, 10_000).ok_or(PatchError::Aborted(
        "no next-index pointer on patch channel",
    ))?;
    let mut dec = PatchDecoder::new();
    let first = receive_segment_reliable(ch, dir, 1, MAX_RETRY_CYCLES)
        .ok_or(PatchError::Aborted("patch directory never received"))?;
    dec.ingest_directory_payload(&first[0])
        .ok_or(PatchError::Aborted("malformed patch directory"))?;
    let header = dec.header().expect("just ingested");
    let dpkts = dir_packet_count(header.region_count as usize);
    if dpkts > 1 {
        let rest = receive_segment_reliable(ch, (dir + 1) % len, dpkts - 1, MAX_RETRY_CYCLES)
            .ok_or(PatchError::Aborted("patch directory never completed"))?;
        for p in &rest {
            dec.ingest_directory_payload(p)
                .ok_or(PatchError::Aborted("malformed patch directory"))?;
        }
    }
    if !dec.is_complete() {
        return Err(PatchError::Aborted("patch directory incomplete"));
    }
    if header.base_version != have_version {
        return Err(PatchError::Stale {
            have: have_version,
            base: header.base_version,
        });
    }
    let mut wanted: Vec<PatchRegionEntry> = dec
        .regions()
        .values()
        .filter(|e| match coverage {
            Coverage::Whole => true,
            Coverage::Regions(held) => held.contains(&e.region),
        })
        .copied()
        .collect();
    // Listen in broadcast order from wherever the directory left us.
    wanted.sort_by_key(|e| (e.start as usize + len - ch.offset()) % len);
    let mut applied = 0usize;
    let mut skipped = 0usize;
    for e in &wanted {
        let payloads = receive_segment_reliable(
            ch,
            e.start as usize % len,
            e.packets as usize,
            MAX_RETRY_CYCLES,
        )
        .ok_or(PatchError::Aborted("patch data never completed"))?;
        for p in &payloads {
            let deltas =
                decode_patch_payload(p).ok_or(PatchError::Aborted("malformed patch data"))?;
            for d in deltas {
                match store.apply_weight(d.from, d.to, d.weight) {
                    PatchApply::Applied => applied += 1,
                    PatchApply::NotHeld => skipped += 1,
                    PatchApply::MissingEdge => {
                        return Err(PatchError::MissingEdge {
                            from: d.from,
                            to: d.to,
                        })
                    }
                }
            }
        }
    }
    Ok(PatchReport {
        version: header.version,
        applied,
        skipped_not_held: skipped,
        regions_listened: wanted.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netcodec::{encode_nodes, ReceivedGraph};
    use spair_broadcast::LossModel;
    use spair_roadnet::generators::small_grid;

    fn deltas(n: u32, base: Weight) -> Vec<WeightDelta> {
        (0..n)
            .map(|i| WeightDelta {
                from: i,
                to: i + 1,
                weight: base + i,
            })
            .collect()
    }

    #[test]
    fn directory_round_trip_multi_packet() {
        // 25 regions -> 3 directory packets.
        let groups: Vec<(u16, Vec<WeightDelta>)> =
            (0..25u16).map(|r| (r, deltas(3, 10 + r as u32))).collect();
        let cycle = build_patch_cycle(7, 6, &groups);
        let dir = cycle.find_segment(SegmentKind::PatchIndex).unwrap();
        assert_eq!(dir.len, dir_packet_count(25));
        assert_eq!(dir.len, 3);
        let mut dec = PatchDecoder::new();
        for i in (0..dir.len).rev() {
            assert!(!dec.is_complete());
            dec.ingest_directory_payload(cycle.packet(dir.start + i).payload())
                .unwrap();
        }
        assert!(dec.is_complete());
        let h = dec.header().unwrap();
        assert_eq!((h.version, h.base_version, h.region_count), (7, 6, 25));
        for (r, e) in dec.regions() {
            assert_eq!(e.entries, 3);
            let seg = cycle.find_segment(SegmentKind::PatchData(*r)).unwrap();
            assert_eq!(seg.start, e.start as usize);
            assert_eq!(seg.len, e.packets as usize);
            let mut got = Vec::new();
            for p in 0..seg.len {
                got.extend(decode_patch_payload(cycle.packet(seg.start + p).payload()).unwrap());
            }
            assert_eq!(got, groups[*r as usize].1);
        }
    }

    #[test]
    fn empty_patch_is_a_directory_only_heartbeat() {
        let cycle = build_patch_cycle(3, 2, &[]);
        assert_eq!(cycle.len(), 1);
        let mut dec = PatchDecoder::new();
        dec.ingest_directory_payload(cycle.packet(0).payload())
            .unwrap();
        assert!(dec.is_complete());
        assert_eq!(dec.header().unwrap().region_count, 0);
        // The directory is its own index segment: the pointer wraps to
        // the next cycle's copy.
        assert_eq!(cycle.packet(0).next_index(), 0);
    }

    #[test]
    fn contradictory_stamps_rejected() {
        let a = build_patch_cycle(2, 1, &[(0, deltas(1, 5))]);
        let b = build_patch_cycle(3, 2, &[(0, deltas(1, 5))]);
        let mut dec = PatchDecoder::new();
        dec.ingest_directory_payload(a.packet(0).payload()).unwrap();
        assert!(dec
            .ingest_directory_payload(b.packet(0).payload())
            .is_none());
    }

    fn full_store(g: &spair_roadnet::RoadNetwork) -> ReceivedGraph {
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for p in encode_nodes(g, &nodes) {
            store.ingest_payload(&p).unwrap();
        }
        store
    }

    #[test]
    fn receive_patch_applies_whole_coverage() {
        let g = small_grid(6, 6, 5);
        let mut store = full_store(&g);
        let (f, t, _) = {
            let mut it = g.out_edges(0);
            let (t, w) = it.next().unwrap();
            (0u32, t, w)
        };
        let cycle = build_patch_cycle(
            1,
            0,
            &[(
                0,
                vec![WeightDelta {
                    from: f,
                    to: t,
                    weight: 999,
                }],
            )],
        );
        let mut ch = BroadcastChannel::tune_in(&cycle, 1, LossModel::Lossless);
        let rep = receive_patch(&mut ch, 0, &Coverage::Whole, &mut store).unwrap();
        assert_eq!(rep.version, 1);
        assert_eq!(rep.applied, 1);
        assert_eq!(rep.skipped_not_held, 0);
        assert!(store.out_edges(f).iter().any(|&(u, w)| u == t && w == 999));
    }

    #[test]
    fn receive_patch_respects_region_coverage_and_survives_loss() {
        let g = small_grid(8, 8, 2);
        let store = full_store(&g);
        // Two real edges from two distinct source nodes.
        let (a_from, a_to) = {
            let (t, _) = g.out_edges(0).next().unwrap();
            (0u32, t)
        };
        let b_from = g
            .node_ids()
            .find(|&v| v != 0 && g.out_edges(v).next().is_some())
            .unwrap();
        let (b_to, _) = g.out_edges(b_from).next().unwrap();
        let groups = vec![
            (
                0u16,
                vec![WeightDelta {
                    from: a_from,
                    to: a_to,
                    weight: 777_777,
                }],
            ),
            (
                1u16,
                vec![WeightDelta {
                    from: b_from,
                    to: b_to,
                    weight: 888_888,
                }],
            ),
        ];
        let cycle = build_patch_cycle(5, 4, &groups);
        for seed in 0..4u64 {
            let mut s = store.clone();
            let mut ch = BroadcastChannel::tune_in(
                &cycle,
                seed as usize % cycle.len(),
                LossModel::bernoulli(0.2, seed),
            );
            let rep = receive_patch(&mut ch, 4, &Coverage::Regions(vec![1]), &mut s).unwrap();
            assert_eq!(rep.regions_listened, 1);
            assert_eq!(rep.applied, 1);
            assert!(s
                .out_edges(b_from)
                .iter()
                .any(|&(u, w)| u == b_to && w == 888_888));
            // Region 0's delta was never listened to.
            assert!(s
                .out_edges(a_from)
                .iter()
                .all(|&(u, w)| u != a_to || w != 777_777));
        }
    }

    #[test]
    fn stale_patch_is_typed_and_leaves_store_untouched() {
        let g = small_grid(5, 5, 3);
        let mut store = full_store(&g);
        let before = store.out_edges(0).to_vec();
        let cycle = build_patch_cycle(
            9,
            8,
            &[(
                0,
                vec![WeightDelta {
                    from: 0,
                    to: 1,
                    weight: 123,
                }],
            )],
        );
        let mut ch = BroadcastChannel::lossless(&cycle);
        let err = receive_patch(&mut ch, 7, &Coverage::Whole, &mut store).unwrap_err();
        assert_eq!(err, PatchError::Stale { have: 7, base: 8 });
        assert_eq!(store.out_edges(0), &before[..]);
    }

    #[test]
    fn missing_edge_is_a_typed_protocol_error() {
        let g = small_grid(4, 4, 1);
        let mut store = full_store(&g);
        let cycle = build_patch_cycle(
            1,
            0,
            &[(
                0,
                vec![WeightDelta {
                    from: 0,
                    to: 9999,
                    weight: 1,
                }],
            )],
        );
        let mut ch = BroadcastChannel::lossless(&cycle);
        let err = receive_patch(&mut ch, 0, &Coverage::Whole, &mut store).unwrap_err();
        assert_eq!(err, PatchError::MissingEdge { from: 0, to: 9999 });
    }
}
