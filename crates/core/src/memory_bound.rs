//! Memory-bound processing (paper §6.1).
//!
//! A device with very limited heap can avoid keeping every received region
//! in memory: as soon as a region `R` is fully received, the client runs
//! Dijkstra *within* `R` from each of its border nodes (plus `v_s`/`v_t`
//! for the terminal regions) and keeps only the resulting **super-edges**
//! — border-to-border shortest paths with their costs — discarding the raw
//! adjacency data. The final search runs over the graph `G'` of
//! super-edges and border edges; super-edges on the answer path are then
//! replaced by the paths they abbreviate.
//!
//! The contraction preserves distances: any true shortest path decomposes
//! into maximal intra-region segments between anchors, and each segment is
//! replaced by a super-edge of exactly its region-restricted shortest
//! length, while every super-edge expands back to a real path. The paper
//! reports ~35% lower peak memory at the cost of extra client CPU
//! (Figure 13); the trade-off is reproduced by the `fig13` experiment.
//!
//! **Path storage.** The paper does not account for where the expansion
//! paths of super-edges live; storing every border-pair path can dwarf the
//! raw region data when the border/node ratio is high. The processor
//! therefore has two modes: the default stores super-edge *costs* only
//! (matching the paper's reported memory saving; the answer path is
//! anchor-level, with super-edges left contracted), and `keep_paths`
//! additionally retains the expansions so the returned path is the full
//! node sequence. The saving materializes when regions are large relative
//! to their border count — exactly the road-network regime (a few percent
//! of a kd region's nodes are border nodes at paper scale).
//!
//! Internally `G'` is a flat slot arena rather than a per-node map, the
//! same layout [`crate::netcodec::ReceivedGraph`] uses: every broadcast id
//! seen gets a dense `u32` slot (direct-index table below
//! [`DIRECT_ID_CAP`], spill map above), per-slot adjacency is an intrusive
//! list inside one shared edge arena, and both Dijkstras (the per-region
//! contraction and the final `G'` search) run over stamp-versioned dense
//! scratch arrays that regions reuse without reallocating. Distances and
//! memory charges are identical to the former map-based processor; unlike
//! it, super-edge emission order is deterministic (ascending reached id)
//! rather than hash-iteration order.

use crate::netcodec::ReceivedGraph;
use crate::query::decoded_node_bytes;
use spair_broadcast::{CpuMeter, MemoryMeter};
use spair_roadnet::bucket_queue::AUTO_BUCKET_MAX_WEIGHT;
use spair_roadnet::{BucketQueue, DijkstraQueue, Distance, MinHeap, NodeId, QueuePolicy, Weight};
use std::collections::HashMap;

/// One edge of the contracted graph `G'`.
#[derive(Debug, Clone, Copy)]
enum GEdge {
    /// A raw network edge retained as-is (border/cross edges).
    Raw(Weight),
    /// A super-edge abbreviating an intra-region path (index into the
    /// stored path table).
    Super(Distance, usize),
}

/// Sentinel for "no slot" / "no parent" / "end of adjacency list".
const NO_SLOT: u32 = u32::MAX;

/// Largest broadcast id served by the direct-index slot table; ids beyond
/// it go to the spill map so a hostile id space cannot balloon the table.
const DIRECT_ID_CAP: usize = 1 << 22;

/// Incremental §6.1 contractor.
#[derive(Debug, Default)]
pub struct MemoryBoundProcessor {
    /// Broadcast id -> slot for ids below [`DIRECT_ID_CAP`] (`NO_SLOT` =
    /// unseen), grown on demand.
    slot_table: Vec<u32>,
    /// Slots of outlandish ids (≥ [`DIRECT_ID_CAP`]).
    slot_spill: HashMap<NodeId, u32>,
    /// Broadcast id per slot.
    ids: Vec<NodeId>,
    /// Head of each slot's adjacency list in the edge arena.
    adj_head: Vec<u32>,
    /// Tail of each slot's adjacency list (appends preserve edge order).
    adj_tail: Vec<u32>,
    /// Edge arena: target slot + payload; `edge_next` links same-source
    /// edges in insertion order.
    edge_to: Vec<u32>,
    edge_payload: Vec<GEdge>,
    edge_next: Vec<u32>,
    /// Slots whose adjacency list is non-empty (sizes the bucket queue the
    /// way the former map's `len()` did).
    adj_nodes: usize,
    /// Stamped scratch shared by the contraction and `G'` Dijkstras.
    dist: Vec<Distance>,
    parent: Vec<u32>,
    stamp: Vec<u64>,
    search: u64,
    /// Region-membership / anchor stamps for the current `add_region`.
    member: Vec<u64>,
    anchor: Vec<u64>,
    region_epoch: u64,
    /// Slots touched by the current search, in first-touch order.
    touched: Vec<u32>,
    paths: Vec<Vec<NodeId>>,
    keep_paths: bool,
    queue: QueuePolicy,
    /// Largest edge cost inserted into `G'` (super-edges can span whole
    /// regions, so this can exceed any raw network weight).
    max_cost: Distance,
    /// Peak/current memory of the retained state (G' plus the region
    /// currently being contracted).
    pub mem: MemoryMeter,
    /// CPU spent contracting (the paper notes it must outpace reception).
    pub cpu: CpuMeter,
}

impl MemoryBoundProcessor {
    /// Costs-only processor (the paper's memory model).
    pub fn new() -> Self {
        Self::default()
    }

    /// Processor that also retains expansion paths, so answers carry the
    /// full node sequence.
    pub fn with_paths() -> Self {
        Self {
            keep_paths: true,
            ..Self::default()
        }
    }

    /// Selects the queue driving the final `G'` Dijkstra. `Auto` resolves
    /// against the largest super-edge cost seen; when that cost exceeds
    /// the bucket-friendly range the heap is used regardless (a bucket
    /// array cannot be sized for unbounded super-edges).
    pub fn with_queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    /// Slot of `v`, if seen.
    #[inline]
    fn slot_lookup(&self, v: NodeId) -> Option<u32> {
        if (v as usize) < self.slot_table.len() {
            let s = self.slot_table[v as usize];
            if s != NO_SLOT {
                Some(s)
            } else {
                None
            }
        } else if (v as usize) < DIRECT_ID_CAP {
            None
        } else {
            self.slot_spill.get(&v).copied()
        }
    }

    /// Slot of `v`, creating one if unseen. New slots get empty adjacency
    /// and already-expired scratch stamps.
    fn ensure_slot(&mut self, v: NodeId) -> u32 {
        if let Some(s) = self.slot_lookup(v) {
            return s;
        }
        let s = self.ids.len() as u32;
        if (v as usize) < DIRECT_ID_CAP {
            if (v as usize) >= self.slot_table.len() {
                let new_len = ((v as usize + 1).next_power_of_two()).min(DIRECT_ID_CAP);
                self.slot_table.resize(new_len, NO_SLOT);
            }
            self.slot_table[v as usize] = s;
        } else {
            self.slot_spill.insert(v, s);
        }
        self.ids.push(v);
        self.adj_head.push(NO_SLOT);
        self.adj_tail.push(NO_SLOT);
        self.dist.push(0);
        self.parent.push(NO_SLOT);
        self.stamp.push(0);
        self.member.push(0);
        self.anchor.push(0);
        s
    }

    /// Appends one `G'` edge `from -> to` at the end of `from`'s list.
    fn push_edge(&mut self, from: u32, to: u32, e: GEdge) {
        let idx = self.edge_to.len() as u32;
        self.edge_to.push(to);
        self.edge_payload.push(e);
        self.edge_next.push(NO_SLOT);
        let f = from as usize;
        if self.adj_head[f] == NO_SLOT {
            self.adj_head[f] = idx;
            self.adj_nodes += 1;
        } else {
            self.edge_next[self.adj_tail[f] as usize] = idx;
        }
        self.adj_tail[f] = idx;
    }

    /// Contracts one fully received region.
    ///
    /// `region_nodes` are the node ids of the region with their adjacency
    /// in `store`; `terminals` lists query endpoints inside this region
    /// (empty for non-terminal regions). The region's raw data is charged
    /// to the meter while the contraction runs and released afterwards —
    /// that is precisely the §6.1 saving.
    pub fn add_region(
        &mut self,
        store: &ReceivedGraph,
        region_nodes: &[NodeId],
        terminals: &[NodeId],
    ) {
        // Charge the raw region (it had to be held during reception).
        let raw_bytes: usize = region_nodes
            .iter()
            .map(|&v| decoded_node_bytes(store.out_edges(v).len()))
            .sum();
        self.mem.alloc(raw_bytes);

        self.region_epoch += 1;
        let epoch = self.region_epoch;
        let mut anchors: Vec<u32> = Vec::new();
        for &v in region_nodes {
            let s = self.ensure_slot(v);
            self.member[s as usize] = epoch;
            if store.is_border(v).unwrap_or(false) {
                self.anchor[s as usize] = epoch;
                anchors.push(s);
            }
        }
        for &t in terminals {
            if let Some(s) = self.slot_lookup(t) {
                let si = s as usize;
                if self.member[si] == epoch && self.anchor[si] != epoch {
                    self.anchor[si] = epoch;
                    anchors.push(s);
                }
            }
        }

        let mut new_edges: Vec<(u32, u32, GEdge)> = Vec::new();
        let mut path_bytes = 0usize;
        // Meter taken out for the duration so the closure can borrow the
        // rest of `self` mutably.
        let mut cpu = std::mem::take(&mut self.cpu);
        cpu.time(|| {
            for &a in &anchors {
                path_bytes += self.contract_from(store, a, &mut new_edges);
            }
            // Keep raw cross-region edges of border nodes (border edges).
            for &a in &anchors {
                for &(u, w) in store.out_edges(self.ids[a as usize]) {
                    let us = self.ensure_slot(u);
                    if self.member[us as usize] != epoch {
                        new_edges.push((a, us, GEdge::Raw(w)));
                    }
                }
            }
        });
        self.cpu = cpu;
        self.mem.alloc(path_bytes + new_edges.len() * 16);
        for (from, to, e) in new_edges {
            self.max_cost = self.max_cost.max(match &e {
                GEdge::Raw(w) => *w as Distance,
                GEdge::Super(d, _) => *d,
            });
            self.push_edge(from, to, e);
        }

        // Release the raw region data (§6.1: "the region data can be
        // discarded").
        self.mem.free(raw_bytes);
    }

    /// Region-restricted Dijkstra from anchor slot `a`; appends
    /// super-edges to every other anchor reached, in ascending reached-id
    /// order. Returns the bytes of stored paths.
    fn contract_from(
        &mut self,
        store: &ReceivedGraph,
        a: u32,
        out: &mut Vec<(u32, u32, GEdge)>,
    ) -> usize {
        let epoch = self.region_epoch;
        self.search += 1;
        let search = self.search;
        self.touched.clear();
        let mut heap = MinHeap::new();
        self.dist[a as usize] = 0;
        self.parent[a as usize] = NO_SLOT;
        self.stamp[a as usize] = search;
        self.touched.push(a);
        heap.push(0, self.ids[a as usize]);
        while let Some(e) = heap.pop() {
            let v = e.item;
            // Popped ids were stamped when pushed; the slot exists.
            let vs = self.slot_lookup(v).expect("queued node has a slot");
            if self.dist[vs as usize] != e.key {
                continue;
            }
            for &(u, w) in store.out_edges(v) {
                let us = self.ensure_slot(u) as usize;
                if self.member[us] != epoch {
                    continue;
                }
                let cand = e.key + w as Distance;
                let seen = self.stamp[us] == search;
                if !seen || cand < self.dist[us] {
                    self.dist[us] = cand;
                    self.parent[us] = vs;
                    if !seen {
                        self.stamp[us] = search;
                        self.touched.push(us as u32);
                    }
                    heap.push(cand, u);
                }
            }
        }
        // The former map-based processor iterated its distance map in hash
        // order here; ascending reached-id order is deterministic and
        // emits the same super-edge *set*.
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable_by_key(|&s| self.ids[s as usize]);
        let mut bytes = 0usize;
        for &bs in &touched {
            let bi = bs as usize;
            if bs == a || self.anchor[bi] != epoch {
                continue;
            }
            let idx = if self.keep_paths {
                let mut path = vec![self.ids[bi]];
                let mut cur = bi;
                while self.parent[cur] != NO_SLOT {
                    cur = self.parent[cur] as usize;
                    path.push(self.ids[cur]);
                }
                path.reverse();
                bytes += 4 * path.len();
                self.paths.push(path);
                self.paths.len() - 1
            } else {
                usize::MAX // contracted marker: answer path stays anchor-level
            };
            out.push((a, bs, GEdge::Super(self.dist[bi], idx)));
        }
        self.touched = touched;
        bytes
    }

    /// Final Dijkstra over `G'` followed by super-edge expansion, on the
    /// queue selected via [`Self::with_queue_policy`].
    pub fn shortest_path(
        &mut self,
        source: NodeId,
        target: NodeId,
    ) -> Option<(Distance, Vec<NodeId>)> {
        let bucket_ok = self.max_cost <= AUTO_BUCKET_MAX_WEIGHT as Distance;
        let resolved = if bucket_ok {
            let expected = Some(self.adj_nodes.div_ceil(2));
            self.queue.resolve_for(self.max_cost as Weight, expected)
        } else {
            QueuePolicy::Heap
        };
        let (t_slot, spidx) = match resolved {
            QueuePolicy::Bucket => self.gprime_search(
                source,
                target,
                &mut BucketQueue::new(self.max_cost as Weight),
            ),
            _ => self.gprime_search(source, target, &mut MinHeap::new()),
        };
        let t_slot = t_slot?;
        let d = self.dist[t_slot as usize];
        // Expand: walk parents, splicing super-edge paths back in.
        let mut path = vec![self.ids[t_slot as usize]];
        let mut cur = t_slot as usize;
        while self.parent[cur] != NO_SLOT {
            let p = self.parent[cur] as usize;
            match spidx[cur] {
                None | Some(usize::MAX) => path.push(self.ids[p]),
                Some(i) => {
                    // Stored path runs p -> cur; splice reversed interior.
                    let sp = &self.paths[i];
                    debug_assert_eq!(sp.first(), Some(&self.ids[p]));
                    debug_assert_eq!(sp.last(), Some(&self.ids[cur]));
                    for &node in sp.iter().rev().skip(1) {
                        path.push(node);
                    }
                }
            }
            cur = p;
        }
        path.reverse();
        Some((d, path))
    }

    /// The `G'` Dijkstra itself, generic over the driving queue. Returns
    /// the settled target slot (scratch holds dist/parent) plus each
    /// slot's reaching super-edge path index.
    fn gprime_search<Q: DijkstraQueue>(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (Option<u32>, Vec<Option<usize>>) {
        let s_slot = self.ensure_slot(source);
        let t_slot = self.slot_lookup(target).unwrap_or(NO_SLOT);
        let mut spidx: Vec<Option<usize>> = vec![None; self.ids.len()];
        let mut reached_target = false;
        // Meter taken out for the duration so the closure can borrow the
        // rest of `self` mutably.
        let mut cpu = std::mem::take(&mut self.cpu);
        cpu.time(|| {
            self.search += 1;
            let search = self.search;
            self.dist[s_slot as usize] = 0;
            self.parent[s_slot as usize] = NO_SLOT;
            self.stamp[s_slot as usize] = search;
            queue.push(0, s_slot);
            while let Some((key, v)) = queue.pop() {
                let vi = v as usize;
                if self.stamp[vi] != search || self.dist[vi] != key {
                    continue;
                }
                if v == t_slot {
                    reached_target = true;
                    break;
                }
                let mut e = self.adj_head[vi];
                while e != NO_SLOT {
                    let ei = e as usize;
                    let u = self.edge_to[ei];
                    let (cost, pidx) = match self.edge_payload[ei] {
                        GEdge::Raw(w) => (w as Distance, None),
                        GEdge::Super(d, i) => (d, Some(i)),
                    };
                    let cand = key + cost;
                    let ui = u as usize;
                    if self.stamp[ui] != search || cand < self.dist[ui] {
                        self.dist[ui] = cand;
                        self.parent[ui] = v;
                        self.stamp[ui] = search;
                        spidx[ui] = pidx;
                        queue.push(cand, u);
                    }
                    e = self.edge_next[ei];
                }
            }
        });
        self.cpu = cpu;
        if reached_target {
            (Some(t_slot), spidx)
        } else {
            (None, spidx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netcodec::{decode_payload, encode_nodes_with_borders, NodeRecord};
    use crate::precompute::BorderPrecomputation;
    use spair_partition::{KdTreePartition, Partitioning};
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, Point, RoadNetwork};

    /// Builds a ReceivedGraph holding the whole network with true border
    /// flags, plus the per-region node lists.
    fn received_world(g: &RoadNetwork, regions: usize) -> (ReceivedGraph, Vec<Vec<NodeId>>) {
        let part = KdTreePartition::build(g, regions);
        let pre = BorderPrecomputation::run(g, &part);
        let mut store = ReceivedGraph::new();
        for r in 0..regions {
            let nodes = &part.nodes_by_region()[r];
            for payload in encode_nodes_with_borders(g, nodes, |v| pre.borders().is_border(v)) {
                for rec in decode_payload(&payload).unwrap() {
                    store.ingest(rec);
                }
            }
        }
        (store, part.nodes_by_region().to_vec())
    }

    #[test]
    fn distances_match_plain_search() {
        let g = small_grid(10, 10, 3);
        let (store, by_region) = received_world(&g, 8);
        for &(s, t) in &[(0u32, 99u32), (5, 60), (42, 43)] {
            let mut proc = MemoryBoundProcessor::with_paths();
            for nodes in &by_region {
                let terminals: Vec<NodeId> = [s, t]
                    .iter()
                    .copied()
                    .filter(|v| nodes.contains(v))
                    .collect();
                proc.add_region(&store, nodes, &terminals);
            }
            let got = proc.shortest_path(s, t);
            assert_eq!(
                got.as_ref().map(|(d, _)| *d),
                dijkstra_distance(&g, s, t),
                "{s}->{t}"
            );
            // Expanded path must be a real path of the claimed length.
            let (d, path) = got.unwrap();
            let mut acc: Distance = 0;
            for w in path.windows(2) {
                acc += g.weight_between(w[0], w[1]).unwrap() as Distance;
            }
            assert_eq!(acc, d);
            assert_eq!(path.first(), Some(&s));
            assert_eq!(path.last(), Some(&t));
        }
    }

    #[test]
    fn distances_identical_under_every_queue_policy() {
        let g = small_grid(9, 9, 6);
        let (store, by_region) = received_world(&g, 8);
        for &(s, t) in &[(0u32, 80u32), (10, 71)] {
            let mut got = Vec::new();
            for policy in [QueuePolicy::Heap, QueuePolicy::Bucket, QueuePolicy::Auto] {
                let mut proc = MemoryBoundProcessor::with_paths().with_queue_policy(policy);
                for nodes in &by_region {
                    let terminals: Vec<NodeId> = [s, t]
                        .iter()
                        .copied()
                        .filter(|v| nodes.contains(v))
                        .collect();
                    proc.add_region(&store, nodes, &terminals);
                }
                got.push(proc.shortest_path(s, t).map(|(d, _)| d));
            }
            assert_eq!(got[0], dijkstra_distance(&g, s, t));
            assert_eq!(got[0], got[1]);
            assert_eq!(got[0], got[2]);
        }
    }

    #[test]
    fn peak_memory_below_plain_retention() {
        // The saving needs regions that are big relative to their border
        // count (the road-network regime): four chain clusters joined by
        // single bridge edges, so each region has at most two border
        // nodes.
        use spair_roadnet::{GraphBuilder, Point};
        let k: u32 = 60;
        let mut b = GraphBuilder::new();
        for c in 0..4 {
            for i in 0..k {
                b.add_node(Point::new(
                    c as f64 * 1000.0 + (i % 10) as f64,
                    (i / 10) as f64,
                ));
            }
        }
        for c in 0..4u32 {
            let base = c * k;
            for i in 0..k - 1 {
                b.add_undirected_edge(base + i, base + i + 1, 3);
            }
            if c < 3 {
                b.add_undirected_edge(base + k - 1, base + k, 5); // bridge
            }
        }
        let g = b.finish();
        let (store, by_region) = received_world(&g, 4);
        let (s, t) = (0u32, 4 * k - 1);
        let mut proc = MemoryBoundProcessor::new();
        for nodes in &by_region {
            let terminals: Vec<NodeId> = [s, t]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        let plain = store.retained_bytes();
        assert!(
            proc.mem.peak() < plain,
            "contracted peak {} vs plain {}",
            proc.mem.peak(),
            plain
        );
        let got = proc.shortest_path(s, t).map(|(d, _)| d);
        assert_eq!(got, dijkstra_distance(&g, s, t));
    }

    #[test]
    fn terminal_inside_single_region() {
        let g = small_grid(8, 8, 1);
        let (store, by_region) = received_world(&g, 4);
        // Source and target in the same region.
        let nodes0 = &by_region[0];
        let (s, t) = (nodes0[0], *nodes0.last().unwrap());
        let mut proc = MemoryBoundProcessor::with_paths();
        for nodes in &by_region {
            let terminals: Vec<NodeId> = [s, t]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        assert_eq!(
            proc.shortest_path(s, t).map(|(d, _)| d),
            dijkstra_distance(&g, s, t)
        );
    }

    #[test]
    fn unreachable_returns_none() {
        let store = ReceivedGraph::new();
        let mut proc = MemoryBoundProcessor::new();
        proc.add_region(&store, &[], &[]);
        assert!(proc.shortest_path(0, 1).is_none());
    }

    #[test]
    fn contraction_cpu_is_measured() {
        let g = small_grid(8, 8, 2);
        let (store, by_region) = received_world(&g, 4);
        let mut proc = MemoryBoundProcessor::new();
        for nodes in &by_region {
            proc.add_region(&store, nodes, &[]);
        }
        assert!(proc.cpu.total().as_nanos() > 0);
    }

    #[test]
    fn spill_range_node_ids_use_the_spill_map() {
        // A two-region chain whose ids straddle DIRECT_ID_CAP exercises
        // both halves of the slot table.
        let base = (super::DIRECT_ID_CAP as NodeId) - 2;
        let ids: Vec<NodeId> = (0..6).map(|i| base + i).collect();
        let mut store = ReceivedGraph::new();
        for (k, &id) in ids.iter().enumerate() {
            let mut edges = Vec::new();
            if k > 0 {
                edges.push((ids[k - 1], 7));
            }
            if k + 1 < ids.len() {
                edges.push((ids[k + 1], 7));
            }
            store.ingest(NodeRecord {
                id,
                point: Point::new(k as f64, 0.0),
                border: k == 2 || k == 3, // the bridge endpoints
                edges,
                more: false,
            });
        }
        let regions = [ids[..3].to_vec(), ids[3..].to_vec()];
        let (s, t) = (ids[0], ids[5]);
        let mut proc = MemoryBoundProcessor::with_paths();
        for nodes in &regions {
            let terminals: Vec<NodeId> = [s, t]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        let (d, path) = proc.shortest_path(s, t).expect("reachable");
        assert_eq!(d, 35);
        assert_eq!(path, ids);
        assert!(!proc.slot_spill.is_empty(), "ids above the cap must spill");
    }
}
