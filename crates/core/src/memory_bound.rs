//! Memory-bound processing (paper §6.1).
//!
//! A device with very limited heap can avoid keeping every received region
//! in memory: as soon as a region `R` is fully received, the client runs
//! Dijkstra *within* `R` from each of its border nodes (plus `v_s`/`v_t`
//! for the terminal regions) and keeps only the resulting **super-edges**
//! — border-to-border shortest paths with their costs — discarding the raw
//! adjacency data. The final search runs over the graph `G'` of
//! super-edges and border edges; super-edges on the answer path are then
//! replaced by the paths they abbreviate.
//!
//! The contraction preserves distances: any true shortest path decomposes
//! into maximal intra-region segments between anchors, and each segment is
//! replaced by a super-edge of exactly its region-restricted shortest
//! length, while every super-edge expands back to a real path. The paper
//! reports ~35% lower peak memory at the cost of extra client CPU
//! (Figure 13); the trade-off is reproduced by the `fig13` experiment.
//!
//! **Path storage.** The paper does not account for where the expansion
//! paths of super-edges live; storing every border-pair path can dwarf the
//! raw region data when the border/node ratio is high. The processor
//! therefore has two modes: the default stores super-edge *costs* only
//! (matching the paper's reported memory saving; the answer path is
//! anchor-level, with super-edges left contracted), and `keep_paths`
//! additionally retains the expansions so the returned path is the full
//! node sequence. The saving materializes when regions are large relative
//! to their border count — exactly the road-network regime (a few percent
//! of a kd region's nodes are border nodes at paper scale).

use crate::netcodec::ReceivedGraph;
use crate::query::decoded_node_bytes;
use spair_broadcast::{CpuMeter, MemoryMeter};
use spair_roadnet::bucket_queue::AUTO_BUCKET_MAX_WEIGHT;
use spair_roadnet::{BucketQueue, DijkstraQueue, Distance, MinHeap, NodeId, QueuePolicy, Weight};
use std::collections::{HashMap, HashSet};

/// One edge of the contracted graph `G'`.
#[derive(Debug, Clone)]
enum GEdge {
    /// A raw network edge retained as-is (border/cross edges).
    Raw(Weight),
    /// A super-edge abbreviating an intra-region path (index into the
    /// stored path table).
    Super(Distance, usize),
}

/// Incremental §6.1 contractor.
#[derive(Debug, Default)]
pub struct MemoryBoundProcessor {
    gprime: HashMap<NodeId, Vec<(NodeId, GEdge)>>,
    paths: Vec<Vec<NodeId>>,
    keep_paths: bool,
    queue: QueuePolicy,
    /// Largest edge cost inserted into `G'` (super-edges can span whole
    /// regions, so this can exceed any raw network weight).
    max_cost: Distance,
    /// Peak/current memory of the retained state (G' plus the region
    /// currently being contracted).
    pub mem: MemoryMeter,
    /// CPU spent contracting (the paper notes it must outpace reception).
    pub cpu: CpuMeter,
}

impl MemoryBoundProcessor {
    /// Costs-only processor (the paper's memory model).
    pub fn new() -> Self {
        Self::default()
    }

    /// Processor that also retains expansion paths, so answers carry the
    /// full node sequence.
    pub fn with_paths() -> Self {
        Self {
            keep_paths: true,
            ..Self::default()
        }
    }

    /// Selects the queue driving the final `G'` Dijkstra. `Auto` resolves
    /// against the largest super-edge cost seen; when that cost exceeds
    /// the bucket-friendly range the heap is used regardless (a bucket
    /// array cannot be sized for unbounded super-edges).
    pub fn with_queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    /// Contracts one fully received region.
    ///
    /// `region_nodes` are the node ids of the region with their adjacency
    /// in `store`; `terminals` lists query endpoints inside this region
    /// (empty for non-terminal regions). The region's raw data is charged
    /// to the meter while the contraction runs and released afterwards —
    /// that is precisely the §6.1 saving.
    pub fn add_region(
        &mut self,
        store: &ReceivedGraph,
        region_nodes: &[NodeId],
        terminals: &[NodeId],
    ) {
        // Charge the raw region (it had to be held during reception).
        let raw_bytes: usize = region_nodes
            .iter()
            .map(|&v| decoded_node_bytes(store.out_edges(v).len()))
            .sum();
        self.mem.alloc(raw_bytes);

        let inside: HashSet<NodeId> = region_nodes.iter().copied().collect();
        let mut anchors: Vec<NodeId> = region_nodes
            .iter()
            .copied()
            .filter(|&v| store.is_border(v).unwrap_or(false))
            .collect();
        for &t in terminals {
            if inside.contains(&t) && !anchors.contains(&t) {
                anchors.push(t);
            }
        }

        let anchor_set: HashSet<NodeId> = anchors.iter().copied().collect();
        let mut new_edges: Vec<(NodeId, NodeId, GEdge)> = Vec::new();
        let mut path_bytes = 0usize;
        let keep_paths = self.keep_paths;
        self.cpu.time(|| {
            for &a in &anchors {
                path_bytes += contract_from(
                    store,
                    a,
                    &inside,
                    &anchor_set,
                    keep_paths,
                    &mut self.paths,
                    &mut new_edges,
                );
            }
            // Keep raw cross-region edges of border nodes (border edges).
            for &v in &anchors {
                for &(u, w) in store.out_edges(v) {
                    if !inside.contains(&u) {
                        new_edges.push((v, u, GEdge::Raw(w)));
                    }
                }
            }
        });
        self.mem.alloc(path_bytes + new_edges.len() * 16);
        for (from, to, e) in new_edges {
            self.max_cost = self.max_cost.max(match &e {
                GEdge::Raw(w) => *w as Distance,
                GEdge::Super(d, _) => *d,
            });
            self.gprime.entry(from).or_default().push((to, e));
        }

        // Release the raw region data (§6.1: "the region data can be
        // discarded").
        self.mem.free(raw_bytes);
    }

    /// Final Dijkstra over `G'` followed by super-edge expansion, on the
    /// queue selected via [`Self::with_queue_policy`].
    pub fn shortest_path(
        &mut self,
        source: NodeId,
        target: NodeId,
    ) -> Option<(Distance, Vec<NodeId>)> {
        let bucket_ok = self.max_cost <= AUTO_BUCKET_MAX_WEIGHT as Distance;
        let resolved = if bucket_ok {
            let expected = Some(self.gprime.len().div_ceil(2));
            self.queue.resolve_for(self.max_cost as Weight, expected)
        } else {
            QueuePolicy::Heap
        };
        let (dist, parent) = match resolved {
            QueuePolicy::Bucket => self.gprime_search(
                source,
                target,
                &mut BucketQueue::new(self.max_cost as Weight),
            ),
            _ => self.gprime_search(source, target, &mut MinHeap::new()),
        };
        let d = *dist.get(&target)?;
        // Expand: walk parents, splicing super-edge paths back in.
        let mut path = vec![target];
        let mut cur = target;
        while cur != source {
            let &(p, pidx) = parent.get(&cur)?;
            match pidx {
                None | Some(usize::MAX) => path.push(p),
                Some(i) => {
                    // Stored path runs p -> cur; splice reversed interior.
                    let sp = &self.paths[i];
                    debug_assert_eq!(sp.first(), Some(&p));
                    debug_assert_eq!(sp.last(), Some(&cur));
                    for &node in sp.iter().rev().skip(1) {
                        path.push(node);
                    }
                }
            }
            cur = p;
        }
        path.reverse();
        Some((d, path))
    }

    /// The `G'` Dijkstra itself, generic over the driving queue. Takes
    /// `gprime` out of `self` for the duration so the CPU meter can time
    /// the closure without aliasing.
    fn gprime_search<Q: DijkstraQueue>(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> GSearchState {
        let gprime = std::mem::take(&mut self.gprime);
        let result = self.cpu.time(|| {
            let mut dist: HashMap<NodeId, Distance> = HashMap::new();
            let mut parent: HashMap<NodeId, (NodeId, Option<usize>)> = HashMap::new();
            dist.insert(source, 0);
            queue.push(0, source);
            while let Some((key, v)) = queue.pop() {
                if dist.get(&v) != Some(&key) {
                    continue;
                }
                if v == target {
                    break;
                }
                for (u, edge) in gprime.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                    let (cost, pidx) = match edge {
                        GEdge::Raw(w) => (*w as Distance, None),
                        GEdge::Super(d, i) => (*d, Some(*i)),
                    };
                    let cand = key + cost;
                    if dist.get(u).is_none_or(|&d| cand < d) {
                        dist.insert(*u, cand);
                        parent.insert(*u, (v, pidx));
                        queue.push(cand, *u);
                    }
                }
            }
            (dist, parent)
        });
        self.gprime = gprime;
        result
    }
}

/// `(distances, parents)` of one `G'` search.
type GSearchState = (
    HashMap<NodeId, Distance>,
    HashMap<NodeId, (NodeId, Option<usize>)>,
);

/// Region-restricted Dijkstra from anchor `a`; appends super-edges to
/// every other anchor reached. Returns the bytes of stored paths.
fn contract_from(
    store: &ReceivedGraph,
    a: NodeId,
    inside: &HashSet<NodeId>,
    anchors: &HashSet<NodeId>,
    keep_paths: bool,
    paths: &mut Vec<Vec<NodeId>>,
    out: &mut Vec<(NodeId, NodeId, GEdge)>,
) -> usize {
    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = MinHeap::new();
    dist.insert(a, 0);
    heap.push(0, a);
    while let Some(e) = heap.pop() {
        let v = e.item;
        if dist.get(&v) != Some(&e.key) {
            continue;
        }
        for &(u, w) in store.out_edges(v) {
            if !inside.contains(&u) {
                continue;
            }
            let cand = e.key + w as Distance;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                parent.insert(u, v);
                heap.push(cand, u);
            }
        }
    }
    let mut bytes = 0usize;
    for (&b, &d) in &dist {
        if b == a || !anchors.contains(&b) {
            continue;
        }
        let idx = if keep_paths {
            let mut path = vec![b];
            let mut cur = b;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            bytes += 4 * path.len();
            paths.push(path);
            paths.len() - 1
        } else {
            usize::MAX // contracted marker: answer path stays anchor-level
        };
        out.push((a, b, GEdge::Super(d, idx)));
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netcodec::{decode_payload, encode_nodes_with_borders};
    use crate::precompute::BorderPrecomputation;
    use spair_partition::{KdTreePartition, Partitioning};
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, RoadNetwork};

    /// Builds a ReceivedGraph holding the whole network with true border
    /// flags, plus the per-region node lists.
    fn received_world(g: &RoadNetwork, regions: usize) -> (ReceivedGraph, Vec<Vec<NodeId>>) {
        let part = KdTreePartition::build(g, regions);
        let pre = BorderPrecomputation::run(g, &part);
        let mut store = ReceivedGraph::new();
        for r in 0..regions {
            let nodes = &part.nodes_by_region()[r];
            for payload in encode_nodes_with_borders(g, nodes, |v| pre.borders().is_border(v)) {
                for rec in decode_payload(&payload).unwrap() {
                    store.ingest(rec);
                }
            }
        }
        (store, part.nodes_by_region().to_vec())
    }

    #[test]
    fn distances_match_plain_search() {
        let g = small_grid(10, 10, 3);
        let (store, by_region) = received_world(&g, 8);
        for &(s, t) in &[(0u32, 99u32), (5, 60), (42, 43)] {
            let mut proc = MemoryBoundProcessor::with_paths();
            for nodes in &by_region {
                let terminals: Vec<NodeId> = [s, t]
                    .iter()
                    .copied()
                    .filter(|v| nodes.contains(v))
                    .collect();
                proc.add_region(&store, nodes, &terminals);
            }
            let got = proc.shortest_path(s, t);
            assert_eq!(
                got.as_ref().map(|(d, _)| *d),
                dijkstra_distance(&g, s, t),
                "{s}->{t}"
            );
            // Expanded path must be a real path of the claimed length.
            let (d, path) = got.unwrap();
            let mut acc: Distance = 0;
            for w in path.windows(2) {
                acc += g.weight_between(w[0], w[1]).unwrap() as Distance;
            }
            assert_eq!(acc, d);
            assert_eq!(path.first(), Some(&s));
            assert_eq!(path.last(), Some(&t));
        }
    }

    #[test]
    fn distances_identical_under_every_queue_policy() {
        let g = small_grid(9, 9, 6);
        let (store, by_region) = received_world(&g, 8);
        for &(s, t) in &[(0u32, 80u32), (10, 71)] {
            let mut got = Vec::new();
            for policy in [QueuePolicy::Heap, QueuePolicy::Bucket, QueuePolicy::Auto] {
                let mut proc = MemoryBoundProcessor::with_paths().with_queue_policy(policy);
                for nodes in &by_region {
                    let terminals: Vec<NodeId> = [s, t]
                        .iter()
                        .copied()
                        .filter(|v| nodes.contains(v))
                        .collect();
                    proc.add_region(&store, nodes, &terminals);
                }
                got.push(proc.shortest_path(s, t).map(|(d, _)| d));
            }
            assert_eq!(got[0], dijkstra_distance(&g, s, t));
            assert_eq!(got[0], got[1]);
            assert_eq!(got[0], got[2]);
        }
    }

    #[test]
    fn peak_memory_below_plain_retention() {
        // The saving needs regions that are big relative to their border
        // count (the road-network regime): four chain clusters joined by
        // single bridge edges, so each region has at most two border
        // nodes.
        use spair_roadnet::{GraphBuilder, Point};
        let k: u32 = 60;
        let mut b = GraphBuilder::new();
        for c in 0..4 {
            for i in 0..k {
                b.add_node(Point::new(
                    c as f64 * 1000.0 + (i % 10) as f64,
                    (i / 10) as f64,
                ));
            }
        }
        for c in 0..4u32 {
            let base = c * k;
            for i in 0..k - 1 {
                b.add_undirected_edge(base + i, base + i + 1, 3);
            }
            if c < 3 {
                b.add_undirected_edge(base + k - 1, base + k, 5); // bridge
            }
        }
        let g = b.finish();
        let (store, by_region) = received_world(&g, 4);
        let (s, t) = (0u32, 4 * k - 1);
        let mut proc = MemoryBoundProcessor::new();
        for nodes in &by_region {
            let terminals: Vec<NodeId> = [s, t]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        let plain = store.retained_bytes();
        assert!(
            proc.mem.peak() < plain,
            "contracted peak {} vs plain {}",
            proc.mem.peak(),
            plain
        );
        let got = proc.shortest_path(s, t).map(|(d, _)| d);
        assert_eq!(got, dijkstra_distance(&g, s, t));
    }

    #[test]
    fn terminal_inside_single_region() {
        let g = small_grid(8, 8, 1);
        let (store, by_region) = received_world(&g, 4);
        // Source and target in the same region.
        let nodes0 = &by_region[0];
        let (s, t) = (nodes0[0], *nodes0.last().unwrap());
        let mut proc = MemoryBoundProcessor::with_paths();
        for nodes in &by_region {
            let terminals: Vec<NodeId> = [s, t]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        assert_eq!(
            proc.shortest_path(s, t).map(|(d, _)| d),
            dijkstra_distance(&g, s, t)
        );
    }

    #[test]
    fn unreachable_returns_none() {
        let store = ReceivedGraph::new();
        let mut proc = MemoryBoundProcessor::new();
        proc.add_region(&store, &[], &[]);
        assert!(proc.shortest_path(0, 1).is_none());
    }

    #[test]
    fn contraction_cpu_is_measured() {
        let g = small_grid(8, 8, 2);
        let (store, by_region) = received_world(&g, 4);
        let mut proc = MemoryBoundProcessor::new();
        for nodes in &by_region {
            proc.add_region(&store, nodes, &[]);
        }
        assert!(proc.cpu.total().as_nanos() > 0);
    }
}
