//! The Elliptic Boundary (EB) method (paper §4).
//!
//! Server side: partition the network with a kd-tree, precompute min/max
//! shortest-path distances between the border nodes of every region pair,
//! and broadcast (a) the kd splitting values, (b) the n×n min/max matrix
//! `A`, and (c) a per-region offset table — followed by the region data,
//! with `(1,m)` index replication forced between regions. Region data is
//! split into a cross-border segment and a local segment so non-terminal
//! regions cost only the former (§4.1's ~20% tuning saving).
//!
//! Client side (§4.2, Algorithm 1): receive the index, locate `Rs`/`Rt`,
//! take `UB = A[Rs][Rt].max`, receive exactly the regions `R` with
//! `A[Rs][R].min + A[R][Rt].min ≤ UB`, and run Dijkstra over their union.
//!
//! Soundness of the pruning: the optimal path's middle segment between its
//! first exit from `Rs` and last entry into `Rt` is itself a shortest path
//! between border nodes of `Rs` and `Rt`, hence no longer than `UB`; every
//! region that segment touches therefore satisfies the kept-inequality,
//! and the prefix/suffix lie inside `Rs`/`Rt`, which are always received.

mod client;
pub mod index;
mod server;

pub use client::EbClient;
pub use index::{EbIndex, EbRegionEntry};
pub use server::{EbProgram, EbServer, EbSummary};
