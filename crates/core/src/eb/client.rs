//! Client-side EB query processing (§4.2, Algorithm 1) with the §6.2 loss
//! recovery rules.

use crate::client_common::{find_next_index, receive_segment, MAX_RETRY_CYCLES};
use crate::eb::index::EbIndexDecoder;
use crate::eb::server::EbSummary;
use crate::netcodec::{decode_payload, ReceivedGraph};
use crate::patch::{ClientArena, Coverage};
use crate::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, CpuMeter, MemoryMeter, QueryStats, Received};
use spair_partition::{KdLocator, RegionId};
use spair_roadnet::{QueuePolicy, DIST_INF};

/// The EB client. One instance can serve many queries; between queries it
/// holds the method summary plus the last session's received arena (the
/// [`AirClient::export_arena`] hook for dynamic worlds).
#[derive(Debug, Clone)]
pub struct EbClient {
    summary: EbSummary,
    queue: QueuePolicy,
    /// Last session's received arena.
    store: ReceivedGraph,
    /// Regions the last session received data from, ascending.
    held: Vec<u16>,
}

impl EbClient {
    /// New client for an EB broadcast program.
    pub fn new(summary: EbSummary) -> Self {
        Self {
            summary,
            queue: QueuePolicy::default(),
            store: ReceivedGraph::new(),
            held: Vec::new(),
        }
    }

    /// Selects the queue driving the final client-side Dijkstra over the
    /// received regions. Distances are identical under every policy.
    pub fn with_queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    /// Receives one full index copy starting at `index_offset`, ingesting
    /// whatever arrives. Returns the number of packets the copy spans, or
    /// `None` when not even one packet of the copy could be decoded.
    fn receive_index_copy(
        &self,
        ch: &mut BroadcastChannel<'_>,
        index_offset: usize,
        dec: &mut EbIndexDecoder,
    ) -> Option<usize> {
        ch.sleep_to_offset(index_offset);
        // Length is learned from the first successfully received packet's
        // header; until then, receive packet by packet. Only packets the
        // channel marks as index packets are ingested: when every header
        // packet of the copy is lost (a burst can wipe the whole copy),
        // reception overruns into region data, and a data payload whose
        // first byte aliases the index magic would otherwise poison the
        // decoder's region count — found by the load harness's bursty
        // populations as sporadic wrong-region locates.
        let mut received = 0usize;
        let mut total: Option<usize> = dec.total_packets.map(|t| t as usize);
        loop {
            if let Some(t) = total {
                if received >= t {
                    return Some(t);
                }
            }
            match ch.receive() {
                Received::Packet(p) if p.kind() == PacketKind::Index => {
                    dec.ingest(p.payload());
                    total = dec.total_packets.map(|t| t as usize);
                }
                Received::Packet(_) => {
                    // Ran past the copy's end without ever learning its
                    // length: give up; the caller retries at the next copy.
                    return None;
                }
                Received::Lost | Received::Corrupted => {
                    if total.is_none() && received > 8 {
                        // Pathological: many leading losses and length
                        // unknown. Give up on this copy as well.
                        return None;
                    }
                }
            }
            received += 1;
        }
    }

    /// True when the decoder holds every value this query needs: all
    /// splits, row `rs` and column `rt` of the matrix (§6.2's light-gray
    /// cells in Figure 9), and the offset entries of all candidate
    /// regions.
    fn index_complete(dec: &EbIndexDecoder, rs: RegionId, rt: RegionId) -> bool {
        let Some(n) = dec.num_regions() else {
            return false;
        };
        if dec.splits().is_none() {
            return false;
        }
        for r in 0..n as RegionId {
            if dec.minmax(rs, r).is_none() || dec.minmax(r, rt).is_none() {
                return false;
            }
            if dec.region_entry(r).is_none() {
                return false;
            }
        }
        true
    }
}

impl AirClient for EbClient {
    fn method_name(&self) -> &'static str {
        "EB"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();

        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }

        // Phase 1: index. Listen for the pointer, receive a copy; on any
        // loss that touches needed values, wait for the next copy (§6.2).
        let mut dec = EbIndexDecoder::new();
        let mut rs_rt: Option<(RegionId, RegionId)> = None;
        let mut attempts = 0;
        let (rs, rt) = loop {
            attempts += 1;
            if attempts > MAX_RETRY_CYCLES {
                return Err(QueryError::Aborted("EB index never completed"));
            }
            let Some(idx_off) = find_next_index(ch, 10_000) else {
                return Err(QueryError::Aborted("no index on channel"));
            };
            self.receive_index_copy(ch, idx_off, &mut dec);
            // Locate Rs/Rt as soon as the splits are whole.
            if rs_rt.is_none() {
                if let Some(splits) = dec.splits() {
                    let locator = cpu.time(|| KdLocator::from_splits(splits));
                    rs_rt = Some((locator.locate(q.source_pt), locator.locate(q.target_pt)));
                }
            }
            if let Some((rs, rt)) = rs_rt {
                if Self::index_complete(&dec, rs, rt) {
                    break (rs, rt);
                }
            }
        };
        let n = dec
            .num_regions()
            .ok_or(QueryError::Aborted("EB index lost its region count"))?
            as RegionId;
        debug_assert_eq!(n as usize, self.summary.num_regions);
        mem.alloc(dec.retained_bytes());

        // Phase 2: prune (§4.2). UB = max(Rs,Rt); keep R iff
        // min(Rs,R) + min(R,Rt) <= UB, plus the terminal regions.
        let ub = dec
            .minmax(rs, rt)
            .ok_or(QueryError::Aborted("EB minmax row incomplete"))?
            .max;
        let mut needed: Vec<RegionId> = cpu.time(|| {
            let mut v = Vec::new();
            for r in 0..n {
                if r == rs || r == rt {
                    v.push(r);
                    continue;
                }
                let (Some(row), Some(col)) = (dec.minmax(rs, r), dec.minmax(r, rt)) else {
                    return Err(QueryError::Aborted("EB minmax row incomplete"));
                };
                let (a, b) = (row.min, col.min);
                if a != DIST_INF && b != DIST_INF && a + b <= ub {
                    v.push(r);
                }
            }
            Ok(v)
        })?;
        // Degenerate pair (no border connectivity recorded): fall back to
        // receiving everything — correctness over pruning.
        if ub == 0 && rs != rt {
            needed = (0..n).collect();
        }

        // Phase 3: receive needed regions in broadcast order from the
        // current position (Algorithm 1's "next region to be broadcast").
        let here = ch.offset();
        let len = ch.cycle_len();
        let mut entries = Vec::with_capacity(needed.len());
        for &r in &needed {
            let e = dec
                .region_entry(r)
                .ok_or(QueryError::Aborted("EB region entry missing"))?;
            entries.push((r, e));
        }
        entries.sort_by_key(|&(_, e)| (e.data_offset as usize + len - here) % len);

        let mut store = std::mem::take(&mut self.store);
        store.clear();
        let mut missing: Vec<usize> = Vec::new(); // absolute offsets lost
        for &(r, e) in &entries {
            let take = if r == rs || r == rt {
                e.cross_packets as usize + e.local_packets as usize
            } else {
                e.cross_packets as usize // §4.1: skip the local segment
            };
            let got = receive_segment(ch, e.data_offset as usize, take);
            for (i, slot) in got.into_iter().enumerate() {
                match slot.and_then(|p| decode_payload(&p)) {
                    Some(records) => {
                        for rec in records {
                            mem.alloc(store.ingest(rec));
                        }
                    }
                    None => missing.push((e.data_offset as usize + i) % len),
                }
            }
        }
        // §6.2: lost region data must be received in a later cycle.
        let mut rounds = 0;
        while !missing.is_empty() {
            rounds += 1;
            if rounds > MAX_RETRY_CYCLES {
                return Err(QueryError::Aborted("EB region data never completed"));
            }
            missing.sort_by_key(|&off| (off + len - ch.offset()) % len);
            let mut still = Vec::new();
            for off in missing {
                ch.sleep_to_offset(off);
                match ch.receive().ok().and_then(|p| decode_payload(p.payload())) {
                    Some(records) => {
                        for rec in records {
                            mem.alloc(store.ingest(rec));
                        }
                    }
                    None => still.push(off),
                }
            }
            missing = still;
        }

        // Phase 4: Dijkstra over the union of received regions (§4.2
        // guarantees the answer is correct for the whole network).
        mem.alloc(store.num_nodes() * 24); // dist/parent search state
        let (res, settled) = cpu.time(|| store.shortest_path_with(q.source, q.target, self.queue));
        self.held = {
            let mut h: Vec<u16> = needed.to_vec();
            h.sort_unstable();
            h
        };
        self.store = store;
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }

    fn export_arena(&mut self) -> Option<ClientArena> {
        Some(ClientArena {
            store: std::mem::take(&mut self.store),
            coverage: Coverage::Regions(std::mem::take(&mut self.held)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eb::server::EbServer;
    use crate::precompute::BorderPrecomputation;
    use spair_broadcast::LossModel;
    use spair_partition::KdTreePartition;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, RoadNetwork};

    fn setup(seed: u64, regions: usize) -> (RoadNetwork, crate::eb::EbProgram) {
        let g = small_grid(12, 12, seed);
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        let program = EbServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn matches_dijkstra_on_many_queries() {
        let (g, program) = setup(11, 8);
        let mut client = EbClient::new(program.summary());
        for (i, &(s, t)) in [(0u32, 143u32), (5, 77), (130, 2), (60, 61), (0, 1)]
            .iter()
            .enumerate()
        {
            let mut ch = BroadcastChannel::tune_in(
                program.cycle(),
                i * 37, // vary tune-in position
                LossModel::Lossless,
            );
            let q = Query::for_nodes(&g, s, t);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t));
            assert_eq!(out.path.first(), Some(&s));
            assert_eq!(out.path.last(), Some(&t));
        }
    }

    #[test]
    fn tunes_fewer_packets_than_cycle() {
        let (g, program) = setup(3, 16);
        let mut client = EbClient::new(program.summary());
        // A short-range query should skip most regions.
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let q = Query::for_nodes(&g, 0, 13);
        let out = client.query(&mut ch, &q).unwrap();
        assert!(
            (out.stats.tuning_packets as usize) < program.cycle().len(),
            "tuning {} vs cycle {}",
            out.stats.tuning_packets,
            program.cycle().len()
        );
        assert!(out.stats.peak_memory_bytes > 0);
    }

    #[test]
    fn latency_within_two_cycles_lossless() {
        let (g, program) = setup(5, 8);
        let mut client = EbClient::new(program.summary());
        let mut ch = BroadcastChannel::tune_in(program.cycle(), 123, LossModel::Lossless);
        let q = Query::for_nodes(&g, 7, 140);
        let out = client.query(&mut ch, &q).unwrap();
        // Paper: latency does not exceed one broadcast cycle (plus the
        // initial wait for the index).
        assert!(
            (out.stats.latency_packets as usize) <= 2 * program.cycle().len(),
            "latency {}",
            out.stats.latency_packets
        );
    }

    #[test]
    fn correct_under_packet_loss() {
        let (g, program) = setup(7, 8);
        let mut client = EbClient::new(program.summary());
        for seed in 0..5 {
            let mut ch = BroadcastChannel::tune_in(
                program.cycle(),
                19 * seed as usize,
                LossModel::bernoulli(0.05, seed),
            );
            let q = Query::for_nodes(&g, 3, 137);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, 3, 137));
        }
    }

    #[test]
    fn loss_increases_tuning_time() {
        let (g, program) = setup(9, 8);
        let mut client = EbClient::new(program.summary());
        let q = Query::for_nodes(&g, 2, 141);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let clean = client.query(&mut ch, &q).unwrap().stats.tuning_packets;
        let mut sum = 0;
        for seed in 0..5 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 0, LossModel::bernoulli(0.1, seed));
            sum += client.query(&mut ch, &q).unwrap().stats.tuning_packets;
        }
        assert!(sum / 5 >= clean);
    }

    #[test]
    fn trivial_same_node_query() {
        let (g, program) = setup(2, 8);
        let mut client = EbClient::new(program.summary());
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let q = Query::for_nodes(&g, 9, 9);
        let out = client.query(&mut ch, &q).unwrap();
        assert_eq!(out.distance, 0);
        assert_eq!(out.stats.tuning_packets, 0);
    }

    #[test]
    fn same_region_query_is_correct() {
        let (g, program) = setup(13, 8);
        let mut client = EbClient::new(program.summary());
        // Adjacent node ids are usually spatially close => same region.
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let q = Query::for_nodes(&g, 40, 41);
        let out = client.query(&mut ch, &q).unwrap();
        assert_eq!(Some(out.distance), dijkstra_distance(&g, 40, 41));
    }
}
