//! Server-side EB: index construction and broadcast cycle assembly.

use crate::eb::index::{EbIndex, EbRegionEntry};
use crate::netcodec::encode_nodes_with_borders;
use crate::precompute::BorderPrecomputation;
use bytes::Bytes;
use spair_broadcast::codec::EncodeError;
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::interleave::{interleave_1m, optimal_m, DataChunk};
use spair_broadcast::packet::PacketKind;
use spair_broadcast::BroadcastCycle;
use spair_partition::{KdTreePartition, Partitioning};
use spair_roadnet::{NodeId, RoadNetwork};

/// What the client is assumed to know a priori (nothing network-specific:
/// just which method the channel carries and how many regions to expect —
/// both also recoverable from any index packet header).
#[derive(Debug, Clone, Copy)]
pub struct EbSummary {
    /// Number of kd regions.
    pub num_regions: usize,
}

/// A fully assembled EB broadcast program.
#[derive(Debug)]
pub struct EbProgram {
    cycle: BroadcastCycle,
    summary: EbSummary,
    index_packets: usize,
    replication: usize,
}

impl EbProgram {
    /// The broadcast cycle the server repeats.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Client bootstrap info.
    pub fn summary(&self) -> EbSummary {
        self.summary
    }

    /// Packets per index copy.
    pub fn index_packets(&self) -> usize {
        self.index_packets
    }

    /// Number of index copies `m` in the (1,m) layout.
    pub fn replication(&self) -> usize {
        self.replication
    }
}

/// EB server: owns the partitioning and precomputation products and
/// assembles the broadcast program.
pub struct EbServer<'a> {
    g: &'a RoadNetwork,
    part: &'a KdTreePartition,
    pre: &'a BorderPrecomputation,
}

impl<'a> EbServer<'a> {
    /// Binds the server to its inputs.
    pub fn new(
        g: &'a RoadNetwork,
        part: &'a KdTreePartition,
        pre: &'a BorderPrecomputation,
    ) -> Self {
        assert_eq!(part.num_regions(), pre.num_regions());
        Self { g, part, pre }
    }

    /// Region data payloads: `(cross_border, local)` per region.
    fn region_payloads(&self) -> Vec<(Vec<Bytes>, Vec<Bytes>)> {
        let n = self.part.num_regions();
        let mut out = Vec::with_capacity(n);
        for r in 0..n {
            let nodes = &self.part.nodes_by_region()[r];
            let (cross, local): (Vec<NodeId>, Vec<NodeId>) = nodes
                .iter()
                .copied()
                .partition(|&v| self.pre.is_cross_border(v));
            let flag = |v| self.pre.borders().is_border(v);
            out.push((
                encode_nodes_with_borders(self.g, &cross, flag),
                encode_nodes_with_borders(self.g, &local, flag),
            ));
        }
        out
    }

    fn index_with_offsets(&self, entries: Vec<EbRegionEntry>) -> EbIndex {
        let n = self.part.num_regions();
        let mut minmax = Vec::with_capacity(n * n);
        for i in 0..n as u16 {
            for j in 0..n as u16 {
                minmax.push(self.pre.minmax(i, j));
            }
        }
        EbIndex {
            num_regions: n,
            splits: self.part.splits().to_vec(),
            minmax,
            regions: entries,
        }
    }

    /// Assembles the broadcast program.
    ///
    /// Layout/offset circularity is broken by fixed-width index encoding:
    /// encode with placeholder offsets to learn the index packet count,
    /// lay the cycle out, read the region offsets back from the layout,
    /// re-encode, and rebuild the identical layout with the real index.
    pub fn build_program(&self) -> Result<EbProgram, EncodeError> {
        let n = self.part.num_regions();
        let region_data = self.region_payloads();

        let placeholder = self.index_with_offsets(
            (0..n)
                .map(|r| EbRegionEntry {
                    data_offset: 0,
                    cross_packets: region_data[r].0.len() as u16,
                    local_packets: region_data[r].1.len() as u16,
                })
                .collect(),
        );
        let index_payloads = placeholder.encode()?;
        let index_packets = index_payloads.len();
        let total_data: usize = region_data.iter().map(|(c, l)| c.len() + l.len()).sum();
        let m = optimal_m(total_data, index_packets);

        let chunks = |data: &[(Vec<Bytes>, Vec<Bytes>)]| -> Vec<DataChunk> {
            data.iter()
                .enumerate()
                .map(|(r, (cross, local))| {
                    let mut payloads = cross.clone();
                    payloads.extend(local.iter().cloned());
                    DataChunk {
                        kind: SegmentKind::RegionData(r as u16),
                        packet_kind: PacketKind::Data,
                        payloads,
                    }
                })
                .collect()
        };

        // Dry-run layout to learn region offsets.
        let dry = interleave_1m(index_payloads, chunks(&region_data), m).finish();
        let entries: Vec<EbRegionEntry> = (0..n)
            .map(|r| {
                let seg = dry
                    .find_segment(SegmentKind::RegionData(r as u16))
                    .expect("every region has a segment");
                EbRegionEntry {
                    data_offset: seg.start as u32,
                    cross_packets: region_data[r].0.len() as u16,
                    local_packets: region_data[r].1.len() as u16,
                }
            })
            .collect();

        // Real build: same payload counts => identical layout.
        let real_index = self.index_with_offsets(entries).encode()?;
        assert_eq!(real_index.len(), index_packets, "fixed-width encoding");
        let cycle = interleave_1m(real_index, chunks(&region_data), m).finish();
        debug_assert_eq!(cycle.len(), dry.len());

        Ok(EbProgram {
            cycle,
            summary: EbSummary { num_regions: n },
            index_packets,
            replication: m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eb::index::EbIndexDecoder;
    use spair_broadcast::cycle::SegmentKind;
    use spair_roadnet::generators::small_grid;

    fn build(seed: u64, regions: usize) -> (RoadNetwork, EbProgram) {
        let g = small_grid(10, 10, seed);
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        let program = EbServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn program_contains_m_index_copies() {
        let (_, program) = build(1, 8);
        let copies = program
            .cycle()
            .segments()
            .iter()
            .filter(|s| s.kind == SegmentKind::GlobalIndex)
            .count();
        assert_eq!(copies, program.replication());
        assert!(copies >= 1);
    }

    #[test]
    fn offsets_in_index_match_actual_layout() {
        let (_, program) = build(2, 8);
        // Decode the first index copy and compare each region entry with
        // the actual segment layout.
        let seg = program
            .cycle()
            .find_segment(SegmentKind::GlobalIndex)
            .unwrap();
        let mut dec = EbIndexDecoder::new();
        for off in seg.start..seg.start + seg.len {
            assert!(dec.ingest(program.cycle().packet(off).payload()));
        }
        for r in 0..8u16 {
            let entry = dec.region_entry(r).unwrap();
            let seg = program
                .cycle()
                .find_segment(SegmentKind::RegionData(r))
                .unwrap();
            assert_eq!(entry.data_offset as usize, seg.start, "region {r}");
            assert_eq!(
                (entry.cross_packets + entry.local_packets) as usize,
                seg.len
            );
        }
    }

    #[test]
    fn cycle_is_longer_than_raw_data_but_modestly() {
        let (g, program) = build(3, 8);
        let nodes: Vec<_> = g.node_ids().collect();
        let raw = crate::netcodec::packet_count(&g, &nodes);
        assert!(program.cycle().len() > raw);
        // Structural identity: cycle = per-region data segments + m index
        // copies. (Per-region encoding fragments packets slightly versus
        // one contiguous encode, so compare against the segments.)
        let data: usize = program
            .cycle()
            .segments()
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::RegionData(_)))
            .map(|s| s.len)
            .sum();
        assert_eq!(
            program.cycle().len(),
            data + program.replication() * program.index_packets(),
        );
    }

    #[test]
    fn every_region_has_a_data_segment() {
        let (_, program) = build(4, 16);
        for r in 0..16u16 {
            assert!(program
                .cycle()
                .find_segment(SegmentKind::RegionData(r))
                .is_some());
        }
    }
}
