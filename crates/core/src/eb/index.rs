//! On-air encoding of the EB index.
//!
//! Every index packet starts with a 7-byte self-describing header
//! (magic, sequence number, copy length, region count) so a client that
//! lost the first packet of a copy still learns the copy's extent from any
//! later packet. The payload after the header is a sequence of tagged
//! records:
//!
//! * kd splitting values in chunks (first index component, §4.1);
//! * w×w squares of the min/max matrix `A` — squares, because among all
//!   rectangles covering equally many cells a square intersects the fewest
//!   rows and columns, minimizing the chance that one lost packet hits the
//!   query's needed row/column (§6.2, Figure 9);
//! * per-region entries of the offset table (the extra column of §4.1):
//!   cycle offset of the region's data, cross-border and local packet
//!   counts.

use crate::precompute::MinMax;
use bytes::Bytes;
use spair_broadcast::codec::{u16_of, EncodeError, PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::packet::PAYLOAD_CAPACITY;
use spair_partition::RegionId;
use spair_roadnet::{Distance, DIST_INF};

const MAGIC: u8 = 0xEB;
const TAG_SPLITS: u8 = 1;
const TAG_SQUARE: u8 = 2;
const TAG_REGION: u8 = 3;

/// Square side for matrix packing: header 6 bytes + side² × 8 ≤ record
/// budget. Side 3 (9 cells, 78 bytes) leaves room to co-pack smaller
/// records in the same packet.
pub const SQUARE_SIDE: usize = 3;

/// Per-region entry of the offset table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbRegionEntry {
    /// Cycle offset where the region's data starts (cross segment first).
    pub data_offset: u32,
    /// Packets of the cross-border segment.
    pub cross_packets: u16,
    /// Packets of the local segment (broadcast right after the cross one).
    pub local_packets: u16,
}

/// The decoded (client-side) or source (server-side) EB index.
#[derive(Debug, Clone)]
pub struct EbIndex {
    /// Number of regions.
    pub num_regions: usize,
    /// Kd splitting values, BFS order (`num_regions - 1` values).
    pub splits: Vec<f64>,
    /// Row-major min/max matrix.
    pub minmax: Vec<MinMax>,
    /// Offset table.
    pub regions: Vec<EbRegionEntry>,
}

impl EbIndex {
    /// Matrix lookup.
    pub fn minmax(&self, from: RegionId, to: RegionId) -> MinMax {
        self.minmax[from as usize * self.num_regions + to as usize]
    }

    /// Encodes this index into packet payloads.
    ///
    /// The packet count depends only on `num_regions`, never on the stored
    /// values (fixed-width encoding), which the server relies on to break
    /// the layout/offset circularity: encode once with placeholder
    /// offsets, lay out the cycle, then re-encode with real offsets.
    ///
    /// Fails with a typed [`EncodeError`] when the index exceeds a wire
    /// field (chunk starts, square coordinates, the u16 seq/total
    /// header) instead of silently truncating a counter.
    pub fn encode(&self) -> Result<Vec<Bytes>, EncodeError> {
        let n = self.num_regions;
        assert_eq!(self.splits.len(), n - 1);
        assert_eq!(self.minmax.len(), n * n);
        assert_eq!(self.regions.len(), n);

        // First pass with total=0 to learn the packet count, second pass
        // with the real total. Both passes produce identical structure.
        let body = |total: u16| -> Result<Vec<Bytes>, EncodeError> {
            let header_len = 7;
            let mut w = RecordWriter::with_capacity(PAYLOAD_CAPACITY - header_len);
            let mut rec = RecordBuf::new();

            // Splits in chunks of up to 12 values, transmitted as full
            // f64: kd split values are exact node coordinates and the
            // client's `locate` compares `>=` against them, so any
            // narrowing would flip boundary nodes into the wrong region.
            for (ci, chunk) in self.splits.chunks(12).enumerate() {
                rec.clear();
                rec.put_u8(TAG_SPLITS)
                    .put_u16(u16_of(ci * 12, "eb splits chunk start")?)
                    .put_u8(chunk.len() as u8);
                for &s in chunk {
                    rec.put_f64(s);
                }
                w.push_record(rec.as_slice());
            }

            // Matrix squares, row-major blocks.
            let mut i0 = 0;
            while i0 < n {
                let si = SQUARE_SIDE.min(n - i0);
                let mut j0 = 0;
                while j0 < n {
                    let sj = SQUARE_SIDE.min(n - j0);
                    rec.clear();
                    rec.put_u8(TAG_SQUARE)
                        .put_u16(u16_of(i0, "eb square row")?)
                        .put_u16(u16_of(j0, "eb square column")?)
                        .put_u8(si as u8)
                        .put_u8(sj as u8);
                    for i in i0..i0 + si {
                        for j in j0..j0 + sj {
                            let cell = self.minmax[i * n + j];
                            rec.put_u32(encode_dist(cell.min));
                            rec.put_u32(encode_dist(cell.max));
                        }
                    }
                    w.push_record(rec.as_slice());
                    j0 += sj;
                }
                i0 += si;
            }

            // Offset table.
            for (r, e) in self.regions.iter().enumerate() {
                rec.clear();
                rec.put_u8(TAG_REGION)
                    .put_u16(u16_of(r, "eb region id")?)
                    .put_u32(e.data_offset)
                    .put_u16(e.cross_packets)
                    .put_u16(e.local_packets);
                w.push_record(rec.as_slice());
            }

            let payloads = w.finish();
            payloads
                .into_iter()
                .enumerate()
                .map(|(seq, body)| {
                    let mut full = RecordBuf::new();
                    full.put_u8(MAGIC)
                        .put_u16(u16_of(seq, "eb index seq")?)
                        .put_u16(total)
                        .put_u16(u16_of(n, "eb region count")?);
                    let mut v = full.as_slice().to_vec();
                    v.extend_from_slice(&body);
                    Ok(Bytes::from(v))
                })
                .collect()
        };

        let count = u16_of(body(0)?.len(), "eb index total packets")?;
        body(count)
    }
}

#[inline]
fn encode_dist(d: Distance) -> u32 {
    if d == DIST_INF {
        u32::MAX
    } else {
        u32::try_from(d).expect("distance exceeds on-air u32 range")
    }
}

#[inline]
fn decode_dist(v: u32) -> Distance {
    if v == u32::MAX {
        DIST_INF
    } else {
        v as Distance
    }
}

/// Incremental decoder tolerating missing packets.
#[derive(Debug)]
pub struct EbIndexDecoder {
    /// Copy length learned from any packet header.
    pub total_packets: Option<u16>,
    num_regions: Option<usize>,
    splits: Vec<Option<f64>>,
    minmax: Vec<Option<MinMax>>,
    regions: Vec<Option<EbRegionEntry>>,
}

impl Default for EbIndexDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl EbIndexDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self {
            total_packets: None,
            num_regions: None,
            splits: Vec::new(),
            minmax: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Region count, once any packet decoded.
    pub fn num_regions(&self) -> Option<usize> {
        self.num_regions
    }

    /// Ingests one received index packet payload. Returns `false` if the
    /// payload does not look like an EB index packet.
    pub fn ingest(&mut self, payload: &[u8]) -> bool {
        let mut r = PayloadReader::new(payload);
        let Some(MAGIC) = r.read_u8() else {
            return false;
        };
        let Some(_seq) = r.read_u16() else {
            return false;
        };
        let Some(total) = r.read_u16() else {
            return false;
        };
        let Some(n) = r.read_u16() else {
            return false;
        };
        let n = n as usize;
        // A bit-flipped header must yield a typed reject, never a panic:
        // n == 0 would underflow the `n - 1` split store below, and an
        // implausibly large n would turn the `n * n` min/max matrix into
        // an allocation bomb before any real payload is inspected.
        if n == 0 || n > crate::nr::MAX_WIRE_REGIONS {
            return false;
        }
        if self.num_regions.is_none() {
            self.num_regions = Some(n);
            self.splits = vec![None; n - 1];
            self.minmax = vec![None; n * n];
            self.regions = vec![None; n];
        }
        if total > 0 {
            self.total_packets = Some(total);
        }
        while let Some(tag) = r.read_u8() {
            match tag {
                TAG_SPLITS => {
                    let Some(start) = r.read_u16() else {
                        return false;
                    };
                    let Some(count) = r.read_u8() else {
                        return false;
                    };
                    for k in 0..count as usize {
                        let Some(v) = r.read_f64() else { return false };
                        if let Some(slot) = self.splits.get_mut(start as usize + k) {
                            *slot = Some(v);
                        }
                    }
                }
                TAG_SQUARE => {
                    let (Some(i0), Some(j0), Some(si), Some(sj)) =
                        (r.read_u16(), r.read_u16(), r.read_u8(), r.read_u8())
                    else {
                        return false;
                    };
                    for i in 0..si as usize {
                        for j in 0..sj as usize {
                            let (Some(min), Some(max)) = (r.read_u32(), r.read_u32()) else {
                                return false;
                            };
                            let idx = (i0 as usize + i) * n + j0 as usize + j;
                            if let Some(slot) = self.minmax.get_mut(idx) {
                                *slot = Some(MinMax {
                                    min: decode_dist(min),
                                    max: decode_dist(max),
                                });
                            }
                        }
                    }
                }
                TAG_REGION => {
                    let (Some(reg), Some(off), Some(cross), Some(local)) =
                        (r.read_u16(), r.read_u32(), r.read_u16(), r.read_u16())
                    else {
                        return false;
                    };
                    if let Some(slot) = self.regions.get_mut(reg as usize) {
                        *slot = Some(EbRegionEntry {
                            data_offset: off,
                            cross_packets: cross,
                            local_packets: local,
                        });
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// All splitting values, if complete. `None` until the region count
    /// is known: before any packet decodes, the split store is an empty
    /// vector, and treating that as "complete" would locate every
    /// coordinate in region 0 — a wrong-pruning bug the load harness's
    /// bursty populations exposed (a burst can wipe an entire index
    /// copy, leaving the first reception attempt with nothing ingested).
    pub fn splits(&self) -> Option<Vec<f64>> {
        self.num_regions?;
        self.splits.iter().copied().collect()
    }

    /// Matrix cell, if received.
    pub fn minmax(&self, from: RegionId, to: RegionId) -> Option<MinMax> {
        let n = self.num_regions?;
        self.minmax[from as usize * n + to as usize]
    }

    /// Offset-table entry, if received.
    pub fn region_entry(&self, r: RegionId) -> Option<EbRegionEntry> {
        *self.regions.get(r as usize)?
    }

    /// Decoded in-memory footprint (charged to the client memory meter):
    /// splits + matrix + table.
    pub fn retained_bytes(&self) -> usize {
        match self.num_regions {
            Some(n) => (n - 1) * 8 + n * n * 16 + n * 8,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_decoder_reports_nothing_complete() {
        // Regression: before any packet decodes, the empty split store
        // must not read as "all splits received" (it located every
        // coordinate in region 0 under burst loss).
        let dec = EbIndexDecoder::new();
        assert_eq!(dec.splits(), None);
        assert_eq!(dec.num_regions(), None);
    }

    fn sample_index(n: usize) -> EbIndex {
        let mut minmax = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                minmax.push(if i == j {
                    MinMax { min: 0, max: 10 }
                } else {
                    MinMax {
                        min: (i * n + j) as Distance,
                        max: (i * n + j + 100) as Distance,
                    }
                });
            }
        }
        EbIndex {
            num_regions: n,
            splits: (0..n - 1).map(|i| i as f64 * 1.5).collect(),
            minmax,
            regions: (0..n)
                .map(|r| EbRegionEntry {
                    data_offset: 1000 + r as u32,
                    cross_packets: r as u16,
                    local_packets: 2 * r as u16,
                })
                .collect(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let idx = sample_index(16);
        let payloads = idx.encode().unwrap();
        let mut dec = EbIndexDecoder::new();
        for p in &payloads {
            assert!(dec.ingest(p));
        }
        assert_eq!(dec.num_regions(), Some(16));
        assert_eq!(dec.total_packets, Some(payloads.len() as u16));
        assert_eq!(dec.splits().unwrap(), idx.splits);
        for i in 0..16u16 {
            for j in 0..16u16 {
                assert_eq!(dec.minmax(i, j), Some(idx.minmax(i, j)));
            }
        }
        for r in 0..16u16 {
            assert_eq!(dec.region_entry(r), Some(idx.regions[r as usize]));
        }
    }

    #[test]
    fn packet_count_independent_of_values() {
        let mut a = sample_index(32);
        let b = a.clone();
        for e in &mut a.regions {
            e.data_offset = 999_999;
        }
        for c in &mut a.minmax {
            c.max = 4_000_000;
        }
        assert_eq!(a.encode().unwrap().len(), b.encode().unwrap().len());
    }

    #[test]
    fn partial_decode_reports_missing() {
        let idx = sample_index(8);
        let payloads = idx.encode().unwrap();
        let mut dec = EbIndexDecoder::new();
        // Skip one packet.
        for (i, p) in payloads.iter().enumerate() {
            if i != 1 {
                dec.ingest(p);
            }
        }
        let missing_splits = dec.splits().is_none();
        let missing_cells = (0..8u16)
            .flat_map(|i| (0..8u16).map(move |j| (i, j)))
            .any(|(i, j)| dec.minmax(i, j).is_none());
        let missing_regions = (0..8u16).any(|r| dec.region_entry(r).is_none());
        assert!(
            missing_splits || missing_cells || missing_regions,
            "dropping a packet must lose something"
        );
    }

    #[test]
    fn inf_distances_survive() {
        let mut idx = sample_index(4);
        idx.minmax[1] = MinMax {
            min: DIST_INF,
            max: 0,
        };
        let mut dec = EbIndexDecoder::new();
        for p in &idx.encode().unwrap() {
            dec.ingest(p);
        }
        let cell = dec.minmax(0, 1).unwrap();
        assert_eq!(cell.min, DIST_INF);
        assert_eq!(cell.max, 0);
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut dec = EbIndexDecoder::new();
        assert!(!dec.ingest(&[0x00, 1, 2, 3, 4, 5, 6, 7]));
    }

    #[test]
    fn retained_bytes_formula() {
        let idx = sample_index(8);
        let mut dec = EbIndexDecoder::new();
        dec.ingest(&idx.encode().unwrap()[0]);
        assert_eq!(dec.retained_bytes(), 7 * 8 + 64 * 16 + 8 * 8);
    }

    /// Decoder panic audit: every payload — random, truncated, or
    /// bit-flipped — must yield a typed reject or a partial decode,
    /// never a panic.
    mod panic_audit {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            #[test]
            fn arbitrary_payloads_never_panic(
                payload in proptest::collection::vec(any::<u8>(), 0..220),
            ) {
                let mut dec = EbIndexDecoder::new();
                let _ = dec.ingest(&payload);
                let _ = dec.splits();
                let _ = dec.num_regions();
            }

            #[test]
            fn corrupted_real_payloads_never_panic(
                cut in 0usize..256,
                bit in 0usize..(1 << 11),
            ) {
                for payload in sample_index(8).encode().unwrap() {
                    let mut dec = EbIndexDecoder::new();
                    let _ = dec.ingest(&payload[..cut.min(payload.len())]);
                    let mut flipped = payload.to_vec();
                    let b = bit % (flipped.len() * 8);
                    flipped[b / 8] ^= 1 << (b % 8);
                    let mut dec = EbIndexDecoder::new();
                    let _ = dec.ingest(&flipped);
                    let _ = dec.splits();
                }
            }
        }

        /// Hostile header region counts: zero (would underflow the
        /// `n - 1` split store) and u16::MAX (would blow up the `n * n`
        /// min/max matrix) must be typed rejects.
        #[test]
        fn hostile_region_counts_are_rejected() {
            let payload = sample_index(8).encode().unwrap().remove(0);
            for n in [0u16, u16::MAX] {
                let mut hostile = payload.to_vec();
                hostile[5..7].copy_from_slice(&n.to_le_bytes());
                let mut dec = EbIndexDecoder::new();
                assert!(!dec.ingest(&hostile), "n={n}");
                assert_eq!(dec.num_regions(), None);
            }
        }
    }
}
