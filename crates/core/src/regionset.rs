//! Compact sets of region ids, and the n×n matrix of such sets that NR's
//! precomputation produces (the boolean n³ array of §5, stored as bitsets).

use spair_partition::RegionId;

/// A bitset over region ids `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSet {
    words: Vec<u64>,
    num_regions: usize,
}

impl RegionSet {
    /// Empty set over `num_regions` regions.
    pub fn new(num_regions: usize) -> Self {
        Self {
            words: vec![0; num_regions.div_ceil(64)],
            num_regions,
        }
    }

    /// Number of regions the set ranges over.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Inserts `r`.
    #[inline]
    pub fn insert(&mut self, r: RegionId) {
        debug_assert!((r as usize) < self.num_regions);
        self.words[r as usize / 64] |= 1u64 << (r as usize % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, r: RegionId) -> bool {
        (self.words[r as usize / 64] >> (r as usize % 64)) & 1 == 1
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &RegionSet) {
        debug_assert_eq!(self.num_regions, other.num_regions);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of regions in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the member region ids ascending.
    pub fn iter(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    Some((wi * 64) as RegionId + bit as RegionId)
                }
            })
        })
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Raw words (exposed for tests and the precomputation DP).
    #[cfg(test)]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Unions raw words into this set.
    pub(crate) fn union_words(&mut self, words: &[u64]) {
        debug_assert_eq!(self.words.len(), words.len());
        for (a, &b) in self.words.iter_mut().zip(words) {
            *a |= b;
        }
    }
}

/// An `n × n` matrix of [`RegionSet`]s: cell `(i, j)` holds the regions
/// traversed by some shortest path from a border node of `Ri` to a border
/// node of `Rj`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSetMatrix {
    sets: Vec<RegionSet>,
    n: usize,
}

impl RegionSetMatrix {
    /// All-empty matrix for `n` regions.
    pub fn new(n: usize) -> Self {
        Self {
            sets: vec![RegionSet::new(n); n * n],
            n,
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.n
    }

    /// The set for `(from, to)`.
    #[inline]
    pub fn get(&self, from: RegionId, to: RegionId) -> &RegionSet {
        &self.sets[from as usize * self.n + to as usize]
    }

    /// Mutable set for `(from, to)`.
    #[inline]
    pub fn get_mut(&mut self, from: RegionId, to: RegionId) -> &mut RegionSet {
        &mut self.sets[from as usize * self.n + to as usize]
    }

    /// Cell-wise in-place union (used to merge parallel precomputation
    /// partials; union is commutative, so merge order cannot change the
    /// result).
    pub fn union_with(&mut self, other: &RegionSetMatrix) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.sets.iter_mut().zip(&other.sets) {
            a.union_with(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut s = RegionSet::new(130);
        for r in [0u16, 63, 64, 65, 129] {
            s.insert(r);
        }
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 65, 129]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn union_merges() {
        let mut a = RegionSet::new(70);
        let mut b = RegionSet::new(70);
        a.insert(1);
        b.insert(69);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(69));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = RegionSet::new(10);
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn matrix_cells_independent() {
        let mut m = RegionSetMatrix::new(4);
        m.get_mut(1, 2).insert(3);
        assert!(m.get(1, 2).contains(3));
        assert!(!m.get(2, 1).contains(3));
        assert!(m.get(0, 0).is_empty());
    }

    #[test]
    fn word_level_union() {
        let mut a = RegionSet::new(128);
        let mut b = RegionSet::new(128);
        b.insert(127);
        b.insert(2);
        a.union_words(b.words());
        assert!(a.contains(127) && a.contains(2));
    }
}
