//! On-air encoding of road-network data (adjacency lists).
//!
//! One *node record* carries a node's id, coordinates and (a chunk of) its
//! adjacency list: `id:u32, x:f32, y:f32, count:u8, flags:u8,
//! count × (target:u32, weight:u32)`. High-degree nodes split across
//! records (flag bit 0 marks continuation chunks exist), so records always
//! fit a packet and a lost packet costs only the records inside it. Flag
//! bit 1 marks border nodes — the client-side super-edge contraction of
//! §6.1 needs to know a region's border nodes, and the server knows them
//! for free.
//!
//! The decoded in-memory footprint of a record is what the client memory
//! meter charges: the paper's clients keep adjacency lists of every
//! received node for the final Dijkstra.

use crate::query::decoded_node_bytes;
use bytes::Bytes;
use spair_broadcast::codec::{PayloadReader, RecordBuf, RecordWriter};
use spair_roadnet::{BucketQueue, DijkstraQueue, NodeId, Point, QueuePolicy, RoadNetwork, Weight};

/// Maximum adjacency entries per record so the record fits a payload:
/// header 14 bytes + k×8 ≤ 123 → k ≤ 13.
pub const MAX_EDGES_PER_RECORD: usize = 13;

/// A decoded node record (one chunk of a node's adjacency list).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Node id.
    pub id: NodeId,
    /// Node coordinates.
    pub point: Point,
    /// Whether further chunks of this node's adjacency follow.
    pub more: bool,
    /// Whether the node is a border node of its region.
    pub border: bool,
    /// `(target, weight)` adjacency entries in this chunk.
    pub edges: Vec<(NodeId, Weight)>,
}

/// Encodes the adjacency data of `nodes` (in the given order) into packet
/// payloads. No nodes are marked as border nodes; use
/// [`encode_nodes_with_borders`] when the §6.1 contraction matters.
pub fn encode_nodes(g: &RoadNetwork, nodes: &[NodeId]) -> Vec<Bytes> {
    encode_nodes_with_borders(g, nodes, |_| false)
}

/// Encodes adjacency data, flagging border nodes per `is_border`.
pub fn encode_nodes_with_borders(
    g: &RoadNetwork,
    nodes: &[NodeId],
    is_border: impl Fn(NodeId) -> bool,
) -> Vec<Bytes> {
    let mut w = RecordWriter::new();
    let mut rec = RecordBuf::new();
    for &v in nodes {
        let edges: Vec<(NodeId, Weight)> = g.out_edges(v).collect();
        let chunks: Vec<&[(NodeId, Weight)]> = if edges.is_empty() {
            vec![&[][..]]
        } else {
            edges.chunks(MAX_EDGES_PER_RECORD).collect()
        };
        let last = chunks.len() - 1;
        for (ci, chunk) in chunks.iter().enumerate() {
            rec.clear();
            let p = g.point(v);
            let flags = u8::from(ci != last) | (u8::from(is_border(v)) << 1);
            rec.put_u32(v)
                .put_f32(p.x as f32)
                .put_f32(p.y as f32)
                .put_u8(chunk.len() as u8)
                .put_u8(flags);
            for &(t, wt) in chunk.iter() {
                rec.put_u32(t).put_u32(wt);
            }
            w.push_record(rec.as_slice());
        }
    }
    w.finish()
}

/// Decodes all node records in one payload. Returns `None` on a malformed
/// payload (which clients treat like a lost packet).
pub fn decode_payload(payload: &[u8]) -> Option<Vec<NodeRecord>> {
    let mut r = PayloadReader::new(payload);
    let mut out = Vec::new();
    while !r.is_empty() {
        let id = r.read_u32()?;
        let x = r.read_f32()?;
        let y = r.read_f32()?;
        let count = r.read_u8()? as usize;
        let flags = r.read_u8()?;
        let more = flags & 1 != 0;
        let border = flags & 2 != 0;
        if count > MAX_EDGES_PER_RECORD {
            return None;
        }
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let t = r.read_u32()?;
            let w = r.read_u32()?;
            edges.push((t, w));
        }
        out.push(NodeRecord {
            id,
            point: Point::new(x as f64, y as f64),
            more,
            border,
            edges,
        });
    }
    Some(out)
}

/// Packets needed to broadcast the adjacency data of `nodes`.
pub fn packet_count(g: &RoadNetwork, nodes: &[NodeId]) -> usize {
    encode_nodes(g, nodes).len()
}

/// Decoded per-node state: coordinates, border flag, adjacency.
type StoredNode = (Point, bool, Vec<(NodeId, Weight)>);

/// A client-side store of received adjacency data, with memory accounting
/// hooks. Nodes may arrive in multiple chunks; the store merges them.
#[derive(Debug, Default)]
pub struct ReceivedGraph {
    /// `(point, border flag, adjacency)` per received node.
    nodes: std::collections::HashMap<NodeId, StoredNode>,
    /// Largest edge weight received so far (sizes the bucket queue when a
    /// [`QueuePolicy`] resolves to `Bucket`).
    max_weight: Weight,
}

impl ReceivedGraph {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one record; returns the bytes newly retained (for the
    /// memory meter).
    pub fn ingest(&mut self, rec: NodeRecord) -> usize {
        let entry = self
            .nodes
            .entry(rec.id)
            .or_insert_with(|| (rec.point, rec.border, Vec::new()));
        entry.1 |= rec.border;
        let added = rec.edges.len();
        for &(_, w) in &rec.edges {
            self.max_weight = self.max_weight.max(w);
        }
        entry.2.extend(rec.edges);
        // Charge per decoded edge plus once per fresh node.
        let fresh_node = if entry.2.len() == added {
            decoded_node_bytes(0)
        } else {
            0
        };
        fresh_node + added * 8
    }

    /// Number of distinct nodes received.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `v` was received.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains_key(&v)
    }

    /// Out-edges of `v` (empty if unknown).
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        self.nodes
            .get(&v)
            .map(|(_, _, e)| e.as_slice())
            .unwrap_or(&[])
    }

    /// Point of `v`, if received.
    pub fn point(&self, v: NodeId) -> Option<Point> {
        self.nodes.get(&v).map(|(p, _, _)| *p)
    }

    /// Whether `v` was flagged as a border node of its region.
    pub fn is_border(&self, v: NodeId) -> Option<bool> {
        self.nodes.get(&v).map(|(_, b, _)| *b)
    }

    /// Iterates received node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Total retained bytes (consistent with the per-ingest charges).
    pub fn retained_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|(_, _, e)| decoded_node_bytes(0) + e.len() * 8)
            .sum()
    }

    /// Drops a node's adjacency (memory-bound processing discards region
    /// data after contraction); returns bytes released.
    pub fn discard(&mut self, v: NodeId) -> usize {
        match self.nodes.remove(&v) {
            Some((_, _, e)) => decoded_node_bytes(0) + e.len() * 8,
            None => 0,
        }
    }

    /// Largest edge weight received so far.
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Dijkstra from `source` to `target` over the received subgraph on
    /// the default queue policy. Returns `(distance, path)` if `target`
    /// is reachable, plus settled node count.
    pub fn shortest_path(
        &self,
        source: NodeId,
        target: NodeId,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        self.shortest_path_with(source, target, QueuePolicy::default())
    }

    /// [`Self::shortest_path`] driven by an explicit [`QueuePolicy`].
    /// `Auto` resolves against the maximum *received* weight and the
    /// store's node count (the search terminates at `target`, so the
    /// expected settle depth is about half the received nodes). Distances
    /// are identical under every policy.
    pub fn shortest_path_with(
        &self,
        source: NodeId,
        target: NodeId,
        queue: QueuePolicy,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let expected = Some(self.nodes.len().div_ceil(2));
        match queue.resolve_for(self.max_weight, expected) {
            QueuePolicy::Bucket => {
                self.search(source, target, &mut BucketQueue::new(self.max_weight))
            }
            _ => self.search(source, target, &mut spair_roadnet::MinHeap::new()),
        }
    }

    fn search<Q: DijkstraQueue>(
        &self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        use std::collections::HashMap;
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut settled = 0usize;
        dist.insert(source, 0);
        queue.push(0, source);
        while let Some((key, v)) = queue.pop() {
            if dist.get(&v) != Some(&key) {
                continue;
            }
            settled += 1;
            if v == target {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return (Some((key, path)), settled);
            }
            for &(u, w) in self.out_edges(v) {
                let cand = key + w as u64;
                if dist.get(&u).is_none_or(|&d| cand < d) {
                    dist.insert(u, cand);
                    parent.insert(u, v);
                    queue.push(cand, u);
                }
            }
        }
        (None, settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, GraphBuilder};

    #[test]
    fn encode_decode_round_trip() {
        let g = small_grid(6, 6, 1);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let payloads = encode_nodes(&g, &nodes);
        let mut store = ReceivedGraph::new();
        for p in &payloads {
            for rec in decode_payload(p).unwrap() {
                store.ingest(rec);
            }
        }
        assert_eq!(store.num_nodes(), g.num_nodes());
        for v in g.node_ids() {
            let mut want: Vec<_> = g.out_edges(v).collect();
            let mut got = store.out_edges(v).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "node {v}");
            let p = store.point(v).unwrap();
            assert!((p.x - g.point(v).x).abs() < 0.51); // f32 quantization
        }
    }

    #[test]
    fn high_degree_nodes_split_into_chunks() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(Point::new(0.0, 0.0));
        for i in 0..30 {
            let v = b.add_node(Point::new(i as f64, 1.0));
            b.add_edge(hub, v, i + 1);
        }
        let g = b.finish();
        let payloads = encode_nodes(&g, &[hub]);
        let mut recs = Vec::new();
        for p in &payloads {
            recs.extend(decode_payload(p).unwrap());
        }
        assert!(recs.len() >= 3, "30 edges need >= 3 chunks of 13");
        assert!(recs[0].more);
        assert!(!recs.last().unwrap().more);
        let mut store = ReceivedGraph::new();
        for r in recs {
            store.ingest(r);
        }
        assert_eq!(store.out_edges(hub).len(), 30);
    }

    #[test]
    fn isolated_node_still_encoded() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(5.0, 5.0));
        let g = b.finish();
        let payloads = encode_nodes(&g, &[0]);
        let recs = decode_payload(&payloads[0]).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].edges.is_empty());
        assert!(!recs[0].more);
    }

    #[test]
    fn malformed_payload_returns_none() {
        assert!(decode_payload(&[1, 2, 3]).is_none());
        // Valid header claiming more edges than present.
        let mut rec = RecordBuf::new();
        rec.put_u32(0).put_f32(0.0).put_f32(0.0).put_u8(5).put_u8(0);
        assert!(decode_payload(rec.as_slice()).is_none());
    }

    #[test]
    fn received_subgraph_same_distance_under_every_queue_policy() {
        let g = small_grid(8, 8, 3);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for payload in encode_nodes(&g, &nodes) {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(rec);
            }
        }
        assert!(store.max_weight() > 0);
        for (s, t) in [(0u32, 63u32), (7, 56), (12, 50)] {
            let (heap, _) = store.shortest_path_with(s, t, QueuePolicy::Heap);
            let (bucket, _) = store.shortest_path_with(s, t, QueuePolicy::Bucket);
            let (auto, _) = store.shortest_path_with(s, t, QueuePolicy::Auto);
            let want = dijkstra_distance(&g, s, t);
            assert_eq!(heap.as_ref().map(|(d, _)| *d), want);
            assert_eq!(bucket.map(|(d, _)| d), want);
            assert_eq!(auto.map(|(d, _)| d), want);
        }
    }

    #[test]
    fn received_subgraph_shortest_path_matches_full_graph() {
        let g = small_grid(7, 7, 9);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for p in &encode_nodes(&g, &nodes) {
            for rec in decode_payload(p).unwrap() {
                store.ingest(rec);
            }
        }
        for &(s, t) in &[(0u32, 48u32), (3, 40), (10, 10)] {
            let (res, _) = store.shortest_path(s, t);
            assert_eq!(res.map(|(d, _)| d), dijkstra_distance(&g, s, t));
        }
    }

    #[test]
    fn memory_accounting_matches_retained() {
        let g = small_grid(5, 5, 2);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        let mut charged = 0usize;
        for p in &encode_nodes(&g, &nodes) {
            for rec in decode_payload(p).unwrap() {
                charged += store.ingest(rec);
            }
        }
        assert_eq!(charged, store.retained_bytes());
        let freed = store.discard(0);
        assert!(freed > 0);
        assert_eq!(charged - freed, store.retained_bytes());
    }

    #[test]
    fn packet_count_is_encode_length() {
        let g = small_grid(6, 6, 3);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(packet_count(&g, &nodes), encode_nodes(&g, &nodes).len());
    }
}
