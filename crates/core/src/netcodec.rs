//! On-air encoding of road-network data (adjacency lists).
//!
//! One *node record* carries a node's id, coordinates and (a chunk of) its
//! adjacency list: `id:u32, x:f32, y:f32, count:u8, flags:u8,
//! count × (target:u32, weight:u32)`. High-degree nodes split across
//! records (flag bit 0 marks continuation chunks exist), so records always
//! fit a packet and a lost packet costs only the records inside it. Flag
//! bit 1 marks border nodes — the client-side super-edge contraction of
//! §6.1 needs to know a region's border nodes, and the server knows them
//! for free.
//!
//! The decoded in-memory footprint of a record is what the client memory
//! meter charges: the paper's clients keep adjacency lists of every
//! received node for the final Dijkstra.

use crate::query::decoded_node_bytes;
use bytes::Bytes;
use spair_broadcast::codec::{PayloadReader, RecordBuf, RecordWriter};
use spair_roadnet::{BucketQueue, DijkstraQueue, NodeId, Point, QueuePolicy, RoadNetwork, Weight};

/// Maximum adjacency entries per record so the record fits a payload:
/// header 14 bytes + k×8 ≤ 123 → k ≤ 13.
pub const MAX_EDGES_PER_RECORD: usize = 13;

/// A decoded node record (one chunk of a node's adjacency list).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Node id.
    pub id: NodeId,
    /// Node coordinates.
    pub point: Point,
    /// Whether further chunks of this node's adjacency follow.
    pub more: bool,
    /// Whether the node is a border node of its region.
    pub border: bool,
    /// `(target, weight)` adjacency entries in this chunk.
    pub edges: Vec<(NodeId, Weight)>,
}

/// Encodes the adjacency data of `nodes` (in the given order) into packet
/// payloads. No nodes are marked as border nodes; use
/// [`encode_nodes_with_borders`] when the §6.1 contraction matters.
pub fn encode_nodes(g: &RoadNetwork, nodes: &[NodeId]) -> Vec<Bytes> {
    encode_nodes_with_borders(g, nodes, |_| false)
}

/// Encodes adjacency data, flagging border nodes per `is_border`.
pub fn encode_nodes_with_borders(
    g: &RoadNetwork,
    nodes: &[NodeId],
    is_border: impl Fn(NodeId) -> bool,
) -> Vec<Bytes> {
    let mut w = RecordWriter::new();
    let mut rec = RecordBuf::new();
    for &v in nodes {
        let edges: Vec<(NodeId, Weight)> = g.out_edges(v).collect();
        let chunks: Vec<&[(NodeId, Weight)]> = if edges.is_empty() {
            vec![&[][..]]
        } else {
            edges.chunks(MAX_EDGES_PER_RECORD).collect()
        };
        let last = chunks.len() - 1;
        for (ci, chunk) in chunks.iter().enumerate() {
            rec.clear();
            let p = g.point(v);
            let flags = u8::from(ci != last) | (u8::from(is_border(v)) << 1);
            rec.put_u32(v)
                .put_f32(p.x as f32)
                .put_f32(p.y as f32)
                .put_u8(chunk.len() as u8)
                .put_u8(flags);
            for &(t, wt) in chunk.iter() {
                rec.put_u32(t).put_u32(wt);
            }
            w.push_record(rec.as_slice());
        }
    }
    w.finish()
}

/// Decodes all node records in one payload. Returns `None` on a malformed
/// payload (which clients treat like a lost packet).
pub fn decode_payload(payload: &[u8]) -> Option<Vec<NodeRecord>> {
    let mut r = PayloadReader::new(payload);
    let mut out = Vec::new();
    while !r.is_empty() {
        let id = r.read_u32()?;
        let x = r.read_f32()?;
        let y = r.read_f32()?;
        let count = r.read_u8()? as usize;
        let flags = r.read_u8()?;
        let more = flags & 1 != 0;
        let border = flags & 2 != 0;
        if count > MAX_EDGES_PER_RECORD {
            return None;
        }
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let t = r.read_u32()?;
            let w = r.read_u32()?;
            edges.push((t, w));
        }
        out.push(NodeRecord {
            id,
            point: Point::new(x as f64, y as f64),
            more,
            border,
            edges,
        });
    }
    Some(out)
}

/// Packets needed to broadcast the adjacency data of `nodes`.
pub fn packet_count(g: &RoadNetwork, nodes: &[NodeId]) -> usize {
    encode_nodes(g, nodes).len()
}

/// Slot flag: the slot's node was received as a record (not merely
/// referenced as an edge target).
const SLOT_MATERIALIZED: u8 = 1;
/// Slot flag: the node was flagged as a border node of its region.
const SLOT_BORDER: u8 = 2;

/// Sentinel for "no slot" in the search scratch parent array and the
/// direct-index slot table.
const NO_SLOT: u32 = u32::MAX;

/// Largest broadcast id served by the direct-index slot table (16 MiB of
/// table at the cap); ids beyond it go to the spill map.
const DIRECT_ID_CAP: usize = 1 << 22;

/// A client-side store of received adjacency data, with memory accounting
/// hooks. Nodes may arrive in multiple chunks; the store merges them.
///
/// Internally the store is a flat slot arena rather than a per-node map:
/// every broadcast id ever seen (as a record *or* as an edge target) gets
/// a dense `u32` slot, per-slot adjacency lives as a contiguous run inside
/// one shared edge arena, and each edge carries its target's slot next to
/// the broadcast id. The client-side Dijkstra — the hot loop of every
/// whole-cycle method — then runs entirely over flat arrays indexed by
/// slot, with version-stamped scratch that [`Self::clear`] lets sessions
/// reuse without reallocating. The broadcast-facing API (ids, charges,
/// edge order, settle order) is byte-identical to the former map-based
/// store.
#[derive(Debug, Default, Clone)]
pub struct ReceivedGraph {
    /// Broadcast id -> slot for ids below [`DIRECT_ID_CAP`]: a flat
    /// direct-index table (`NO_SLOT` = unseen), grown on demand. Road
    /// networks broadcast dense ids, so in practice every lookup lands
    /// here — one bounds check and one load, no hashing.
    slot_table: Vec<u32>,
    /// Slots of outlandish ids (≥ [`DIRECT_ID_CAP`]), so a hostile id
    /// space cannot balloon the direct table.
    slot_spill: std::collections::HashMap<NodeId, u32>,
    /// Broadcast id per slot.
    ids: Vec<NodeId>,
    /// Coordinates per slot (placeholder until the slot materializes).
    points: Vec<Point>,
    /// `SLOT_*` flags per slot.
    flags: Vec<u8>,
    /// `(start, len)` run of each slot's adjacency inside the arenas.
    runs: Vec<(u32, u32)>,
    /// Edge arena: `(target broadcast id, weight)`, the slice
    /// [`Self::out_edges`] serves.
    edges: Vec<(NodeId, Weight)>,
    /// Edge arena, parallel to `edges`: the target's slot.
    target_slots: Vec<u32>,
    /// Materialized (received) node count.
    live: usize,
    /// Largest edge weight received so far (sizes the bucket queue when a
    /// [`QueuePolicy`] resolves to `Bucket`).
    max_weight: Weight,
    /// Version-stamped search scratch, reused across searches.
    dist: Vec<u64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    cur_stamp: u32,
}

impl ReceivedGraph {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the store to empty, keeping every allocation — the arena
    /// reuse hook for clients that serve many sessions.
    pub fn clear(&mut self) {
        self.slot_table.fill(NO_SLOT);
        self.slot_spill.clear();
        self.ids.clear();
        self.points.clear();
        self.flags.clear();
        self.runs.clear();
        self.edges.clear();
        self.target_slots.clear();
        self.live = 0;
        self.max_weight = 0;
    }

    /// Slot of `v`, if seen.
    #[inline]
    fn slot_lookup(&self, v: NodeId) -> Option<u32> {
        if (v as usize) < self.slot_table.len() {
            let s = self.slot_table[v as usize];
            if s != NO_SLOT {
                Some(s)
            } else {
                None
            }
        } else if (v as usize) < DIRECT_ID_CAP {
            None
        } else {
            self.slot_spill.get(&v).copied()
        }
    }

    /// Slot of `v`, creating an unmaterialized one if unseen.
    fn ensure_slot(&mut self, v: NodeId) -> u32 {
        if let Some(s) = self.slot_lookup(v) {
            return s;
        }
        let s = self.ids.len() as u32;
        if (v as usize) < DIRECT_ID_CAP {
            if (v as usize) >= self.slot_table.len() {
                let new_len = ((v as usize + 1).next_power_of_two()).min(DIRECT_ID_CAP);
                self.slot_table.resize(new_len, NO_SLOT);
            }
            self.slot_table[v as usize] = s;
        } else {
            self.slot_spill.insert(v, s);
        }
        self.ids.push(v);
        self.points.push(Point::new(0.0, 0.0));
        self.flags.push(0);
        self.runs.push((self.edges.len() as u32, 0));
        s
    }

    /// Slot of `v` if it has materialized (received as a record).
    #[inline]
    fn live_slot(&self, v: NodeId) -> Option<u32> {
        self.slot_lookup(v)
            .filter(|&s| self.flags[s as usize] & SLOT_MATERIALIZED != 0)
    }

    /// Ingests one record; returns the bytes newly retained (for the
    /// memory meter).
    pub fn ingest(&mut self, rec: NodeRecord) -> usize {
        let s = self.ensure_slot(rec.id) as usize;
        if self.flags[s] & SLOT_MATERIALIZED == 0 {
            self.flags[s] |= SLOT_MATERIALIZED;
            self.points[s] = rec.point;
            self.live += 1;
        }
        if rec.border {
            self.flags[s] |= SLOT_BORDER;
        }
        let added = rec.edges.len();
        let before = self.runs[s].1 as usize;
        if added > 0 {
            let (start, len) = self.runs[s];
            if len == 0 {
                self.runs[s].0 = self.edges.len() as u32;
            } else if start as usize + len as usize != self.edges.len() {
                // The run is no longer at the arena tail (another node's
                // chunks landed in between — out-of-order re-reception).
                // Relocate it to the tail so it stays one contiguous slice.
                let (lo, hi) = (start as usize, start as usize + len as usize);
                self.runs[s].0 = self.edges.len() as u32;
                for i in lo..hi {
                    let e = self.edges[i];
                    let t = self.target_slots[i];
                    self.edges.push(e);
                    self.target_slots.push(t);
                }
            }
            for &(t, w) in &rec.edges {
                self.max_weight = self.max_weight.max(w);
                let ts = self.ensure_slot(t);
                self.edges.push((t, w));
                self.target_slots.push(ts);
            }
            self.runs[s].1 += added as u32;
        }
        // Charge per decoded edge plus once per fresh node (a node whose
        // adjacency was empty before this record).
        let fresh_node = if before == 0 {
            decoded_node_bytes(0)
        } else {
            0
        };
        fresh_node + added * 8
    }

    /// Ingests every record of one payload straight from the wire bytes —
    /// [`decode_payload`] + [`Self::ingest`] fused, with no intermediate
    /// record allocations. Returns the total bytes newly retained, or
    /// `None` on a malformed payload (in which case, like
    /// [`decode_payload`], nothing is ingested).
    pub fn ingest_payload(&mut self, payload: &[u8]) -> Option<usize> {
        // Validation pass: all-or-nothing, mirroring `decode_payload`.
        let mut r = PayloadReader::new(payload);
        while !r.is_empty() {
            r.read_u32()?;
            r.read_f32()?;
            r.read_f32()?;
            let count = r.read_u8()? as usize;
            r.read_u8()?;
            if count > MAX_EDGES_PER_RECORD {
                return None;
            }
            for _ in 0..count {
                r.read_u32()?;
                r.read_u32()?;
            }
        }
        // Ingest pass: identical to ingesting the decoded records in order.
        let mut r = PayloadReader::new(payload);
        let mut charged = 0usize;
        while !r.is_empty() {
            let id = r.read_u32()?;
            let x = r.read_f32()?;
            let y = r.read_f32()?;
            let count = r.read_u8()? as usize;
            let flags = r.read_u8()?;
            let s = self.ensure_slot(id) as usize;
            if self.flags[s] & SLOT_MATERIALIZED == 0 {
                self.flags[s] |= SLOT_MATERIALIZED;
                self.points[s] = Point::new(x as f64, y as f64);
                self.live += 1;
            }
            if flags & 2 != 0 {
                self.flags[s] |= SLOT_BORDER;
            }
            let before = self.runs[s].1 as usize;
            if count > 0 {
                let (start, len) = self.runs[s];
                if len == 0 {
                    self.runs[s].0 = self.edges.len() as u32;
                } else if start as usize + len as usize != self.edges.len() {
                    let (lo, hi) = (start as usize, start as usize + len as usize);
                    self.runs[s].0 = self.edges.len() as u32;
                    for i in lo..hi {
                        let e = self.edges[i];
                        let t = self.target_slots[i];
                        self.edges.push(e);
                        self.target_slots.push(t);
                    }
                }
                for _ in 0..count {
                    let t = r.read_u32()?;
                    let w = r.read_u32()?;
                    self.max_weight = self.max_weight.max(w);
                    let ts = self.ensure_slot(t);
                    self.edges.push((t, w));
                    self.target_slots.push(ts);
                }
                self.runs[s].1 += count as u32;
            }
            let fresh_node = if before == 0 {
                decoded_node_bytes(0)
            } else {
                0
            };
            charged += fresh_node + count * 8;
        }
        Some(charged)
    }

    /// Number of distinct nodes received.
    pub fn num_nodes(&self) -> usize {
        self.live
    }

    /// Whether `v` was received.
    pub fn contains(&self, v: NodeId) -> bool {
        self.live_slot(v).is_some()
    }

    /// Out-edges of `v` (empty if unknown).
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        match self.slot_lookup(v) {
            Some(s) => {
                let (start, len) = self.runs[s as usize];
                &self.edges[start as usize..start as usize + len as usize]
            }
            None => &[],
        }
    }

    /// Point of `v`, if received.
    pub fn point(&self, v: NodeId) -> Option<Point> {
        self.live_slot(v).map(|s| self.points[s as usize])
    }

    /// Whether `v` was flagged as a border node of its region.
    pub fn is_border(&self, v: NodeId) -> Option<bool> {
        self.live_slot(v)
            .map(|s| self.flags[s as usize] & SLOT_BORDER != 0)
    }

    /// Iterates received node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids
            .iter()
            .zip(&self.flags)
            .filter(|&(_, f)| f & SLOT_MATERIALIZED != 0)
            .map(|(&v, _)| v)
    }

    /// Total retained bytes (consistent with the per-ingest charges).
    pub fn retained_bytes(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.flags)
            .filter(|&(_, f)| f & SLOT_MATERIALIZED != 0)
            .map(|(&(_, len), _)| decoded_node_bytes(0) + len as usize * 8)
            .sum()
    }

    /// Drops a node's adjacency (memory-bound processing discards region
    /// data after contraction); returns bytes released.
    pub fn discard(&mut self, v: NodeId) -> usize {
        match self.live_slot(v) {
            Some(s) => {
                let released = decoded_node_bytes(0) + self.runs[s as usize].1 as usize * 8;
                // The slot survives as an unmaterialized placeholder (its
                // arena run is abandoned); a later re-ingest charges it as
                // fresh, exactly like the former map removal did.
                self.flags[s as usize] &= !(SLOT_MATERIALIZED | SLOT_BORDER);
                self.runs[s as usize].1 = 0;
                self.live -= 1;
                released
            }
            None => 0,
        }
    }

    /// Largest edge weight received so far.
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Applies one delta-broadcast weight update to the received arena.
    ///
    /// Updates **every** stored `(from, to)` entry — §6.2 re-reception can
    /// legitimately duplicate an adjacency entry inside a run, and a patch
    /// must not leave a stale copy behind for the search to pick up.
    /// `max_weight` only ever grows: a lowered weight leaves the bucket
    /// queue oversized, which stays correct.
    pub fn apply_weight(&mut self, from: NodeId, to: NodeId, w: Weight) -> PatchApply {
        let s = match self.live_slot(from) {
            Some(s) => s as usize,
            None => return PatchApply::NotHeld,
        };
        let (start, len) = self.runs[s];
        let (lo, hi) = (start as usize, start as usize + len as usize);
        let mut hit = false;
        for e in &mut self.edges[lo..hi] {
            if e.0 == to {
                e.1 = w;
                hit = true;
            }
        }
        if hit {
            self.max_weight = self.max_weight.max(w);
            PatchApply::Applied
        } else {
            PatchApply::MissingEdge
        }
    }

    /// Dijkstra from `source` to `target` over the received subgraph on
    /// the default queue policy. Returns `(distance, path)` if `target`
    /// is reachable, plus settled node count.
    pub fn shortest_path(
        &mut self,
        source: NodeId,
        target: NodeId,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        self.shortest_path_with(source, target, QueuePolicy::default())
    }

    /// [`Self::shortest_path`] driven by an explicit [`QueuePolicy`].
    /// `Auto` resolves against the maximum *received* weight and the
    /// store's node count (the search terminates at `target`, so the
    /// expected settle depth is about half the received nodes). Distances
    /// are identical under every policy.
    ///
    /// Takes `&mut self` only for the version-stamped scratch arrays the
    /// search runs on; the received data is untouched.
    pub fn shortest_path_with(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: QueuePolicy,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let expected = Some(self.live.div_ceil(2));
        match queue.resolve_for(self.max_weight, expected) {
            QueuePolicy::Bucket => {
                self.search(source, target, &mut BucketQueue::new(self.max_weight))
            }
            _ => self.search(source, target, &mut spair_roadnet::MinHeap::new()),
        }
    }

    /// Bumps the scratch version, sizing the arrays for the current slot
    /// count (and refilling the stamps on the rare wrap-around).
    fn fresh_scratch(&mut self) {
        let n = self.ids.len();
        if self.stamp.len() < n {
            self.dist.resize(n, 0);
            self.parent.resize(n, NO_SLOT);
            self.stamp.resize(n, self.cur_stamp);
        }
        self.cur_stamp = self.cur_stamp.wrapping_add(1);
        if self.cur_stamp == 0 {
            self.stamp.fill(0);
            self.cur_stamp = 1;
        }
    }

    /// The slot-indexed Dijkstra. The queue holds slots; keys, relaxation
    /// order and the lazy stale-pop rule are identical to the former
    /// map-based search, so settle order and counts are preserved under
    /// both queues (heap ties are structural — keys only — and bucket
    /// ties are LIFO).
    fn search<Q: DijkstraQueue>(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let s_slot = self.ensure_slot(source);
        let t_slot = self.slot_lookup(target).unwrap_or(NO_SLOT);
        self.fresh_scratch();
        let stamp = self.cur_stamp;
        let mut settled = 0usize;
        self.dist[s_slot as usize] = 0;
        self.parent[s_slot as usize] = NO_SLOT;
        self.stamp[s_slot as usize] = stamp;
        queue.push(0, s_slot);
        while let Some((key, v)) = queue.pop() {
            let vi = v as usize;
            if self.stamp[vi] != stamp || self.dist[vi] != key {
                continue;
            }
            settled += 1;
            if v == t_slot {
                let mut path = vec![self.ids[vi]];
                let mut cur = vi;
                while self.parent[cur] != NO_SLOT {
                    cur = self.parent[cur] as usize;
                    path.push(self.ids[cur]);
                }
                path.reverse();
                return (Some((key, path)), settled);
            }
            let (start, len) = self.runs[vi];
            let (lo, hi) = (start as usize, start as usize + len as usize);
            for (&(_, w), &u) in self.edges[lo..hi].iter().zip(&self.target_slots[lo..hi]) {
                let cand = key + w as u64;
                let ui = u as usize;
                if self.stamp[ui] != stamp || cand < self.dist[ui] {
                    self.dist[ui] = cand;
                    self.parent[ui] = v;
                    self.stamp[ui] = stamp;
                    queue.push(cand, u);
                }
            }
        }
        (None, settled)
    }

    /// [`Self::shortest_path_with`] plus a certification bit for stores
    /// that hold only *part* of the network (an anchored method's patched
    /// arena). The search may label and pop unmaterialized slots (nodes
    /// referenced as edge targets but never received); such a slot has no
    /// out-edges here, yet in the real network it does. The answer is
    /// **certified** iff no unmaterialized slot validly popped strictly
    /// below the target's distance (pop keys are non-decreasing, so any
    /// shorter true path would have to leave the held subgraph through
    /// such a pop); an unreachable verdict is certified iff no
    /// unmaterialized slot popped at all. An uncertified result tells the
    /// caller to fall back to a full re-tune.
    pub fn shortest_path_checked(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: QueuePolicy,
    ) -> (Option<(u64, Vec<NodeId>)>, usize, bool) {
        let expected = Some(self.live.div_ceil(2));
        match queue.resolve_for(self.max_weight, expected) {
            QueuePolicy::Bucket => {
                self.search_checked(source, target, &mut BucketQueue::new(self.max_weight))
            }
            _ => self.search_checked(source, target, &mut spair_roadnet::MinHeap::new()),
        }
    }

    /// The certified sibling of [`Self::search`]: identical queue
    /// discipline, plus tracking of the first (minimum) valid pop of an
    /// unmaterialized slot.
    fn search_checked<Q: DijkstraQueue>(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (Option<(u64, Vec<NodeId>)>, usize, bool) {
        let s_slot = self.ensure_slot(source);
        let t_slot = self.slot_lookup(target).unwrap_or(NO_SLOT);
        self.fresh_scratch();
        let stamp = self.cur_stamp;
        let mut settled = 0usize;
        let mut min_unmat: Option<u64> = None;
        self.dist[s_slot as usize] = 0;
        self.parent[s_slot as usize] = NO_SLOT;
        self.stamp[s_slot as usize] = stamp;
        queue.push(0, s_slot);
        while let Some((key, v)) = queue.pop() {
            let vi = v as usize;
            if self.stamp[vi] != stamp || self.dist[vi] != key {
                continue;
            }
            settled += 1;
            if v == t_slot {
                let mut path = vec![self.ids[vi]];
                let mut cur = vi;
                while self.parent[cur] != NO_SLOT {
                    cur = self.parent[cur] as usize;
                    path.push(self.ids[cur]);
                }
                path.reverse();
                // A tie (min_unmat == key) cannot hide a shorter path:
                // leaving the held subgraph there costs at least one more
                // positive-weight edge.
                let certified = min_unmat.is_none_or(|m| m >= key);
                return (Some((key, path)), settled, certified);
            }
            if self.flags[vi] & SLOT_MATERIALIZED == 0 && min_unmat.is_none() {
                min_unmat = Some(key);
            }
            let (start, len) = self.runs[vi];
            let (lo, hi) = (start as usize, start as usize + len as usize);
            for (&(_, w), &u) in self.edges[lo..hi].iter().zip(&self.target_slots[lo..hi]) {
                let cand = key + w as u64;
                let ui = u as usize;
                if self.stamp[ui] != stamp || cand < self.dist[ui] {
                    self.dist[ui] = cand;
                    self.parent[ui] = v;
                    self.stamp[ui] = stamp;
                    queue.push(cand, u);
                }
            }
        }
        (None, settled, min_unmat.is_none())
    }
}

/// Outcome of [`ReceivedGraph::apply_weight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchApply {
    /// The edge was held and its weight updated.
    Applied,
    /// The source node was never materialized — the client does not hold
    /// this region, so the delta does not concern it.
    NotHeld,
    /// The source node is held but the edge is absent: the patch stream
    /// disagrees with the arena (a protocol error, not a skippable miss).
    MissingEdge,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, GraphBuilder};

    #[test]
    fn encode_decode_round_trip() {
        let g = small_grid(6, 6, 1);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let payloads = encode_nodes(&g, &nodes);
        let mut store = ReceivedGraph::new();
        for p in &payloads {
            for rec in decode_payload(p).unwrap() {
                store.ingest(rec);
            }
        }
        assert_eq!(store.num_nodes(), g.num_nodes());
        for v in g.node_ids() {
            let mut want: Vec<_> = g.out_edges(v).collect();
            let mut got = store.out_edges(v).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "node {v}");
            let p = store.point(v).unwrap();
            assert!((p.x - g.point(v).x).abs() < 0.51); // f32 quantization
        }
    }

    #[test]
    fn high_degree_nodes_split_into_chunks() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(Point::new(0.0, 0.0));
        for i in 0..30 {
            let v = b.add_node(Point::new(i as f64, 1.0));
            b.add_edge(hub, v, i + 1);
        }
        let g = b.finish();
        let payloads = encode_nodes(&g, &[hub]);
        let mut recs = Vec::new();
        for p in &payloads {
            recs.extend(decode_payload(p).unwrap());
        }
        assert!(recs.len() >= 3, "30 edges need >= 3 chunks of 13");
        assert!(recs[0].more);
        assert!(!recs.last().unwrap().more);
        let mut store = ReceivedGraph::new();
        for r in recs {
            store.ingest(r);
        }
        assert_eq!(store.out_edges(hub).len(), 30);
    }

    #[test]
    fn isolated_node_still_encoded() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(5.0, 5.0));
        let g = b.finish();
        let payloads = encode_nodes(&g, &[0]);
        let recs = decode_payload(&payloads[0]).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].edges.is_empty());
        assert!(!recs[0].more);
    }

    #[test]
    fn malformed_payload_returns_none() {
        assert!(decode_payload(&[1, 2, 3]).is_none());
        // Valid header claiming more edges than present.
        let mut rec = RecordBuf::new();
        rec.put_u32(0).put_f32(0.0).put_f32(0.0).put_u8(5).put_u8(0);
        assert!(decode_payload(rec.as_slice()).is_none());
    }

    #[test]
    fn received_subgraph_same_distance_under_every_queue_policy() {
        let g = small_grid(8, 8, 3);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for payload in encode_nodes(&g, &nodes) {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(rec);
            }
        }
        assert!(store.max_weight() > 0);
        for (s, t) in [(0u32, 63u32), (7, 56), (12, 50)] {
            let (heap, _) = store.shortest_path_with(s, t, QueuePolicy::Heap);
            let (bucket, _) = store.shortest_path_with(s, t, QueuePolicy::Bucket);
            let (auto, _) = store.shortest_path_with(s, t, QueuePolicy::Auto);
            let want = dijkstra_distance(&g, s, t);
            assert_eq!(heap.as_ref().map(|(d, _)| *d), want);
            assert_eq!(bucket.map(|(d, _)| d), want);
            assert_eq!(auto.map(|(d, _)| d), want);
        }
    }

    #[test]
    fn received_subgraph_shortest_path_matches_full_graph() {
        let g = small_grid(7, 7, 9);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for p in &encode_nodes(&g, &nodes) {
            for rec in decode_payload(p).unwrap() {
                store.ingest(rec);
            }
        }
        for &(s, t) in &[(0u32, 48u32), (3, 40), (10, 10)] {
            let (res, _) = store.shortest_path(s, t);
            assert_eq!(res.map(|(d, _)| d), dijkstra_distance(&g, s, t));
        }
    }

    #[test]
    fn memory_accounting_matches_retained() {
        let g = small_grid(5, 5, 2);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        let mut charged = 0usize;
        for p in &encode_nodes(&g, &nodes) {
            for rec in decode_payload(p).unwrap() {
                charged += store.ingest(rec);
            }
        }
        assert_eq!(charged, store.retained_bytes());
        let freed = store.discard(0);
        assert!(freed > 0);
        assert_eq!(charged - freed, store.retained_bytes());
    }

    #[test]
    fn apply_weight_updates_every_duplicate_entry() {
        let mut store = ReceivedGraph::new();
        let rec = NodeRecord {
            id: 0,
            point: Point::new(0.0, 0.0),
            more: false,
            border: false,
            edges: vec![(1, 5), (2, 7)],
        };
        // §6.2 re-reception: the same record ingested twice duplicates the
        // run entries.
        store.ingest(rec.clone());
        store.ingest(rec);
        assert_eq!(store.apply_weight(0, 1, 9), PatchApply::Applied);
        for &(t, w) in store.out_edges(0) {
            if t == 1 {
                assert_eq!(w, 9, "stale duplicate survived the patch");
            }
        }
        assert_eq!(store.apply_weight(0, 3, 1), PatchApply::MissingEdge);
        assert_eq!(store.apply_weight(42, 1, 1), PatchApply::NotHeld);
        assert_eq!(store.max_weight(), 9);
    }

    #[test]
    fn checked_search_certifies_full_store_and_flags_partial_one() {
        let g = small_grid(6, 6, 4);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut full = ReceivedGraph::new();
        for p in &encode_nodes(&g, &nodes) {
            for rec in decode_payload(p).unwrap() {
                full.ingest(rec);
            }
        }
        let (res, _, certified) = full.shortest_path_checked(0, 35, QueuePolicy::Auto);
        assert!(certified);
        assert_eq!(res.map(|(d, _)| d), dijkstra_distance(&g, 0, 35));

        // Hold only the first half of the nodes: paths that would leave
        // the held set must void the certificate.
        let mut part = ReceivedGraph::new();
        let held: Vec<NodeId> = nodes.iter().copied().filter(|&v| v < 18).collect();
        for p in &encode_nodes(&g, &held) {
            for rec in decode_payload(p).unwrap() {
                part.ingest(rec);
            }
        }
        let (_, _, certified) = part.shortest_path_checked(0, 17, QueuePolicy::Auto);
        assert!(!certified, "escape through an unheld node went unnoticed");
    }

    #[test]
    fn checked_search_matches_unchecked_on_full_store() {
        let g = small_grid(7, 7, 11);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for p in &encode_nodes(&g, &nodes) {
            for rec in decode_payload(p).unwrap() {
                store.ingest(rec);
            }
        }
        for &(s, t) in &[(0u32, 48u32), (5, 44), (20, 2)] {
            let (a, sa) = store.shortest_path_with(s, t, QueuePolicy::Heap);
            let (b, sb, cert) = store.shortest_path_checked(s, t, QueuePolicy::Heap);
            assert_eq!(a, b);
            assert_eq!(sa, sb);
            assert!(cert);
        }
    }

    #[test]
    fn packet_count_is_encode_length() {
        let g = small_grid(6, 6, 3);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(packet_count(&g, &nodes), encode_nodes(&g, &nodes).len());
    }
}
