//! Bounded-recovery session supervision.
//!
//! The §6.2 recovery paths inside each client make a session robust to
//! *detectable* erasures (loss, CRC-failed corruption): the client simply
//! re-fetches the missing slots in later cycles. But the fault model of
//! [`spair_broadcast::fault`] also injects faults a position-trusting
//! client cannot detect from one frame: a duplicated or stale-version
//! frame carries plausible bytes at a trusted offset, and a server
//! restart phase-shifts the whole schedule mid-session. A client that
//! lived through one of those may have assembled a *wrong* subgraph —
//! and a wrong answer is the one failure mode a comparative platform
//! must never emit.
//!
//! The [`supervise`] driver enforces the graceful-degradation rule:
//!
//! 1. run the client session; read the channel's
//!    [`FaultTelemetry`](spair_broadcast::FaultTelemetry) afterwards;
//! 2. if any *silently-corrupting* fault occurred
//!    ([`FaultTelemetry::tainted`]), discard the result — answer or not —
//!    and re-tune from scratch on a fresh attempt;
//! 3. give up with a typed [`SessionError`] once the attempt or
//!    packet budget ([`RecoveryBudget`]) is exhausted.
//!
//! An [`SessionOutcome::Answered`] result is therefore *provably clean*:
//! it was produced by a session whose channel reports zero taint, and
//! detectable erasures cannot flip an answer (they only delay it). Every
//! give-up is typed. Never wrong — only late, or typed.

use crate::query::{Query, QueryError, QueryOutcome};
use spair_broadcast::{BroadcastChannel, FaultTelemetry};

use crate::query::AirClient;

/// Typed failure taxonomy of a supervised session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The client gave up because detectably corrupted frames kept it
    /// from ever completing a decode within its own retry budget.
    Corrupted {
        /// CRC-failed frames the attempt saw.
        corrupted: u64,
        /// The client's own abort reason.
        reason: &'static str,
    },
    /// The server truncated the cycle (restart) during the attempt; any
    /// partial decode may span two schedules and is untrusted.
    CycleAborted {
        /// Restarts the attempt lived through.
        restarts: u64,
    },
    /// Frames from a pre-restart schedule leaked into the attempt; the
    /// index the client assembled may describe a stale layout.
    StaleIndex {
        /// Stale frames delivered.
        stale: u64,
    },
    /// Duplicated (stuttered) frames were delivered at trusted
    /// positions during the attempt.
    DuplicateDelivery {
        /// Duplicate frames delivered.
        duplicates: u64,
    },
    /// The client aborted for its own reasons with no channel fault
    /// observed (e.g. a loss retry budget ran dry).
    ClientAborted(&'static str),
    /// The retry/cycle budget ran out before any attempt finished
    /// cleanly — the typed give-up of the graceful-degradation rule.
    BudgetExhausted {
        /// Attempts made.
        attempts: u32,
        /// Total packets elapsed across all attempts.
        elapsed_packets: u64,
        /// The failure class of the last attempt.
        last: Box<SessionError>,
    },
}

impl SessionError {
    /// Short class label for reports (`corrupted`, `cycle_aborted`, ...).
    pub fn class(&self) -> &'static str {
        match self {
            SessionError::Corrupted { .. } => "corrupted",
            SessionError::CycleAborted { .. } => "cycle_aborted",
            SessionError::StaleIndex { .. } => "stale_index",
            SessionError::DuplicateDelivery { .. } => "duplicate_delivery",
            SessionError::ClientAborted(_) => "client_aborted",
            SessionError::BudgetExhausted { .. } => "budget_exhausted",
        }
    }

    /// The innermost (root-cause) class: unwraps `BudgetExhausted`.
    pub fn root_class(&self) -> &'static str {
        match self {
            SessionError::BudgetExhausted { last, .. } => last.root_class(),
            other => other.class(),
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Corrupted { corrupted, reason } => {
                write!(f, "session saw {corrupted} corrupted frames: {reason}")
            }
            SessionError::CycleAborted { restarts } => {
                write!(f, "server restarted {restarts}x mid-session")
            }
            SessionError::StaleIndex { stale } => {
                write!(f, "{stale} stale-version frames delivered")
            }
            SessionError::DuplicateDelivery { duplicates } => {
                write!(f, "{duplicates} duplicated frames delivered")
            }
            SessionError::ClientAborted(why) => write!(f, "client aborted: {why}"),
            SessionError::BudgetExhausted {
                attempts,
                elapsed_packets,
                last,
            } => write!(
                f,
                "recovery budget exhausted after {attempts} attempts / {elapsed_packets} packets (last: {last})"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Hard retry/cycle budget of a supervised session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryBudget {
    /// Maximum re-tune-from-scratch attempts (>= 1).
    pub max_attempts: u32,
    /// Maximum total broadcast cycles across all attempts.
    pub max_cycles: u64,
}

impl RecoveryBudget {
    /// One attempt, no packet ceiling — supervision degenerates to a
    /// transparent pass-through (the fault-free configuration).
    pub const fn single() -> Self {
        Self {
            max_attempts: 1,
            max_cycles: u64::MAX,
        }
    }

    /// The default chaos budget: a handful of re-tunes inside a generous
    /// cycle ceiling.
    pub const fn standard() -> Self {
        Self {
            max_attempts: 4,
            max_cycles: 512,
        }
    }

    /// Total packet ceiling for a given cycle length.
    pub fn packet_budget(&self, cycle_len: usize) -> u64 {
        self.max_cycles.saturating_mul(cycle_len.max(1) as u64)
    }
}

/// What one attempt's channel reported back to the supervisor.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttemptReport {
    /// Fault counters of the attempt's channel session.
    pub faults: FaultTelemetry,
    /// Packets elapsed during the attempt.
    pub elapsed: u64,
    /// Packets received during the attempt.
    pub tuned: u64,
}

impl AttemptReport {
    /// Snapshot of a channel after the attempt ran on it. `before` is
    /// [`BroadcastChannel::elapsed`]/`tuned` deltas when the channel is
    /// reused across attempts; pass `(0, 0)` for a fresh channel.
    pub fn of(ch: &BroadcastChannel<'_>, before: (u64, u64)) -> Self {
        Self {
            faults: ch.fault_telemetry(),
            elapsed: ch.elapsed() - before.0,
            tuned: ch.tuned() - before.1,
        }
    }
}

/// Terminal outcome of a supervised session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome<T> {
    /// A trusted answer: produced by an attempt whose channel reported
    /// zero silently-corrupting faults.
    Answered(T),
    /// A trusted negative: the client determined unreachability on a
    /// taint-free channel.
    Unreachable,
    /// Typed give-up within budget.
    Failed(SessionError),
}

impl<T> SessionOutcome<T> {
    /// The answer, if one was produced.
    pub fn answered(&self) -> Option<&T> {
        match self {
            SessionOutcome::Answered(v) => Some(v),
            _ => None,
        }
    }

    /// The typed failure, if the session gave up.
    pub fn failed(&self) -> Option<&SessionError> {
        match self {
            SessionOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// A supervised session's outcome plus its aggregate cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedSession<T> {
    /// Terminal outcome.
    pub outcome: SessionOutcome<T>,
    /// Attempts made (>= 1 whenever the budget allowed any).
    pub attempts: u32,
    /// Total packets elapsed across every attempt — the recovery
    /// latency a real user would wait.
    pub recovery_packets: u64,
    /// Total packets received across every attempt.
    pub tuned_packets: u64,
}

/// Classifies an attempt's telemetry into the taint that invalidates it,
/// most severe first (a restart invalidates more than a stale frame,
/// which invalidates more than a stutter).
fn taint_of(t: &FaultTelemetry) -> Option<SessionError> {
    if t.restarts > 0 {
        Some(SessionError::CycleAborted {
            restarts: t.restarts,
        })
    } else if t.stale > 0 {
        Some(SessionError::StaleIndex { stale: t.stale })
    } else if t.duplicates > 0 {
        Some(SessionError::DuplicateDelivery {
            duplicates: t.duplicates,
        })
    } else {
        None
    }
}

/// Runs attempts until one finishes on a taint-free channel or the
/// budget runs out. `attempt(k)` runs the `k`-th (0-based) session —
/// opening a fresh channel, or re-tuning a persistent one — and returns
/// the client's result plus the channel's [`AttemptReport`].
///
/// Under [`RecoveryBudget::single`] with a fault-free channel this is a
/// transparent pass-through: one attempt, its result mapped 1:1.
pub fn supervise<T, F>(
    budget: RecoveryBudget,
    cycle_len: usize,
    mut attempt: F,
) -> SupervisedSession<T>
where
    F: FnMut(u32) -> (Result<T, QueryError>, AttemptReport),
{
    assert!(budget.max_attempts >= 1, "budget must allow one attempt");
    let packet_budget = budget.packet_budget(cycle_len);
    let mut recovery_packets = 0u64;
    let mut tuned_packets = 0u64;
    let mut attempts = 0u32;
    let mut last: Option<SessionError> = None;
    while attempts < budget.max_attempts && recovery_packets < packet_budget {
        let (result, report) = attempt(attempts);
        attempts += 1;
        recovery_packets += report.elapsed;
        tuned_packets += report.tuned;
        let taint = taint_of(&report.faults);
        let done = |outcome| SupervisedSession {
            outcome,
            attempts,
            recovery_packets,
            tuned_packets,
        };
        match (result, taint) {
            (Ok(v), None) => return done(SessionOutcome::Answered(v)),
            (Err(QueryError::Unreachable), None) => return done(SessionOutcome::Unreachable),
            (Err(QueryError::Aborted(reason)), None) => {
                last = Some(if report.faults.corrupted > 0 {
                    SessionError::Corrupted {
                        corrupted: report.faults.corrupted,
                        reason,
                    }
                } else {
                    SessionError::ClientAborted(reason)
                });
            }
            // Tainted: discard whatever the client produced — answer,
            // unreachability verdict or abort — and re-tune from scratch.
            (_, Some(taint)) => last = Some(taint),
        }
    }
    SupervisedSession {
        outcome: SessionOutcome::Failed(SessionError::BudgetExhausted {
            attempts,
            elapsed_packets: recovery_packets,
            last: Box::new(
                last.unwrap_or(SessionError::ClientAborted("budget allowed no attempt")),
            ),
        }),
        attempts,
        recovery_packets,
        tuned_packets,
    }
}

/// Supervises an [`AirClient`] point-to-point query: each attempt opens a
/// fresh channel through `open(k)` and runs the client over it.
pub fn supervise_query<'c>(
    budget: RecoveryBudget,
    cycle_len: usize,
    client: &mut dyn AirClient,
    query: &Query,
    mut open: impl FnMut(u32) -> BroadcastChannel<'c>,
) -> SupervisedSession<QueryOutcome> {
    supervise(budget, cycle_len, |k| {
        let mut ch = open(k);
        let result = client.query(&mut ch, query);
        (result, AttemptReport::of(&ch, (0, 0)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::QueryStats;

    fn ok_outcome() -> QueryOutcome {
        QueryOutcome {
            distance: 7,
            path: vec![0, 1],
            stats: QueryStats::default(),
        }
    }

    fn clean(elapsed: u64) -> AttemptReport {
        AttemptReport {
            faults: FaultTelemetry::default(),
            elapsed,
            tuned: elapsed,
        }
    }

    fn tainted(restarts: u64, elapsed: u64) -> AttemptReport {
        AttemptReport {
            faults: FaultTelemetry {
                restarts,
                ..Default::default()
            },
            elapsed,
            tuned: elapsed,
        }
    }

    #[test]
    fn clean_success_passes_through_on_first_attempt() {
        let s = supervise(RecoveryBudget::single(), 100, |_| {
            (Ok(ok_outcome()), clean(42))
        });
        assert_eq!(s.attempts, 1);
        assert_eq!(s.recovery_packets, 42);
        assert_eq!(s.outcome.answered().unwrap().distance, 7);
    }

    #[test]
    fn clean_unreachable_is_a_trusted_negative() {
        let s = supervise::<QueryOutcome, _>(RecoveryBudget::standard(), 100, |_| {
            (Err(QueryError::Unreachable), clean(5))
        });
        assert_eq!(s.attempts, 1, "no retry for a trusted negative");
        assert!(matches!(s.outcome, SessionOutcome::Unreachable));
    }

    #[test]
    fn tainted_answers_are_discarded_and_retried() {
        let s = supervise(RecoveryBudget::standard(), 100, |k| {
            if k == 0 {
                // A plausible-looking answer from a restarted session
                // must NOT be trusted.
                (Ok(ok_outcome()), tainted(1, 30))
            } else {
                (Ok(ok_outcome()), clean(20))
            }
        });
        assert_eq!(s.attempts, 2);
        assert_eq!(s.recovery_packets, 50, "all attempts count toward latency");
        assert!(s.outcome.answered().is_some());
    }

    #[test]
    fn tainted_unreachable_is_also_discarded() {
        let s = supervise::<QueryOutcome, _>(RecoveryBudget::standard(), 100, |k| {
            if k == 0 {
                (Err(QueryError::Unreachable), tainted(2, 10))
            } else {
                (Ok(ok_outcome()), clean(10))
            }
        });
        assert!(s.outcome.answered().is_some());
    }

    #[test]
    fn attempt_budget_exhaustion_is_typed() {
        let s = supervise::<QueryOutcome, _>(
            RecoveryBudget {
                max_attempts: 3,
                max_cycles: u64::MAX,
            },
            100,
            |_| (Ok(ok_outcome()), tainted(1, 10)),
        );
        assert_eq!(s.attempts, 3);
        match s.outcome.failed().unwrap() {
            SessionError::BudgetExhausted { attempts, last, .. } => {
                assert_eq!(*attempts, 3);
                assert!(matches!(**last, SessionError::CycleAborted { .. }));
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn packet_budget_caps_total_recovery_latency() {
        // Cycle 10, 3-cycle budget = 30 packets; each tainted attempt
        // burns 25 — the second attempt must not start.
        let s = supervise::<QueryOutcome, _>(
            RecoveryBudget {
                max_attempts: 100,
                max_cycles: 3,
            },
            10,
            |_| (Ok(ok_outcome()), tainted(1, 25)),
        );
        assert_eq!(s.attempts, 2, "second attempt starts at 25 < 30, third not");
        assert!(matches!(
            s.outcome,
            SessionOutcome::Failed(SessionError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn corruption_aborts_classify_as_corrupted() {
        let report = AttemptReport {
            faults: FaultTelemetry {
                corrupted: 9,
                ..Default::default()
            },
            elapsed: 10,
            tuned: 10,
        };
        let s = supervise::<QueryOutcome, _>(RecoveryBudget::single(), 100, |_| {
            (Err(QueryError::Aborted("decode failed")), report)
        });
        match s.outcome.failed().unwrap() {
            SessionError::BudgetExhausted { last, .. } => {
                assert!(matches!(
                    **last,
                    SessionError::Corrupted { corrupted: 9, .. }
                ));
                assert_eq!(last.root_class(), "corrupted");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_classes_are_stable_labels() {
        let all = [
            SessionError::Corrupted {
                corrupted: 1,
                reason: "x",
            },
            SessionError::CycleAborted { restarts: 1 },
            SessionError::StaleIndex { stale: 1 },
            SessionError::DuplicateDelivery { duplicates: 1 },
            SessionError::ClientAborted("x"),
        ];
        let mut classes: Vec<&str> = all.iter().map(SessionError::class).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), all.len(), "classes must be distinct");
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }
}
