//! Server-side border-pair precomputation (paper §4.1 / §5.1).
//!
//! One full Dijkstra per border node produces everything EB and NR need:
//!
//! * **EB's matrix A** — min/max shortest-path distance between the border
//!   nodes of every region pair (diagonal: same-region border pairs, which
//!   bound how far a path may detour outside its own region);
//! * **NR's traversed-region sets** — the union, over border pairs of
//!   `(Ri, Rj)`, of the regions the canonical (Dijkstra-tree) shortest
//!   path crosses;
//! * **EB's cross-border classification** — nodes lying on at least one
//!   border-pair shortest path (§4.1's region-data split that cuts ~20% of
//!   tuning time).
//!
//! Per source the three are extracted in O(V · n/64) by dynamic programs
//! over the shortest-path tree instead of walking each of the O(B²) pair
//! paths: region sets propagate parent→child in settle order, and the
//! on-a-border-path marks propagate child→parent in reverse settle order.

use crate::regionset::{RegionSet, RegionSetMatrix};
use spair_partition::{BorderInfo, Partitioning, RegionId};
use spair_roadnet::dijkstra::{DijkstraWorkspace, Direction};
use spair_roadnet::parallel;
use spair_roadnet::{Distance, NodeId, RoadNetwork, DIST_INF};
use std::time::Instant;

/// Min/max shortest-path distance between border nodes of a region pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinMax {
    /// Minimum border-pair distance (`DIST_INF` if none reachable).
    pub min: Distance,
    /// Maximum border-pair distance (0 if none reachable).
    pub max: Distance,
}

impl MinMax {
    const EMPTY: MinMax = MinMax {
        min: DIST_INF,
        max: 0,
    };

    /// True if no border pair of this region pair is connected.
    pub fn is_empty(&self) -> bool {
        self.min == DIST_INF
    }
}

/// Output of the precomputation pass, shared by EB and NR (the paper notes
/// their pre-computation cost is identical for the same partitioning).
#[derive(Debug, Clone)]
pub struct BorderPrecomputation {
    num_regions: usize,
    /// Row-major `n × n` min/max matrix. Diagonal `(r, r)`: min = 0 and
    /// max = the longest same-region border-pair distance.
    minmax: Vec<MinMax>,
    /// Regions traversed by canonical border-pair shortest paths.
    traversed: RegionSetMatrix,
    /// Per node: lies on some border-pair shortest path (or is a border
    /// node itself).
    cross_border: Vec<bool>,
    /// Border-node inventory.
    borders: BorderInfo,
    /// Wall-clock cost of the pass (Table 3).
    pub precompute_secs: f64,
}

/// Reusable per-worker buffers for the per-source DP passes.
struct SourceScratch {
    ws: DijkstraWorkspace,
    /// Flat parent→child DP buffer: region set of the tree path to v.
    path_regions: Vec<u64>,
    /// Child→parent marks: v lies on a path towards some border target.
    on_path: Vec<bool>,
}

/// One worker's contribution, merged cell-wise. Every combining
/// operation (min, max, bitset union, bool or) is commutative and
/// associative, and partials additionally merge in fixed chunk order, so
/// the merged tables are bit-identical to the serial fold for any thread
/// count.
struct SourcePartial {
    minmax: Vec<MinMax>,
    traversed: RegionSetMatrix,
    cross_border: Vec<bool>,
}

impl BorderPrecomputation {
    /// Runs the pass — one forward Dijkstra per border node — fanned out
    /// over [`parallel::num_threads`] workers.
    pub fn run(g: &RoadNetwork, part: &(impl Partitioning + Sync)) -> Self {
        Self::run_with_threads(g, part, parallel::num_threads())
    }

    /// Single-threaded reference run (the baseline the parallel pipeline
    /// is verified against and benchmarked over).
    pub fn run_serial(g: &RoadNetwork, part: &(impl Partitioning + Sync)) -> Self {
        Self::run_with_threads(g, part, 1)
    }

    /// Runs the pass on an explicit number of worker threads. Output is
    /// bit-identical for every `threads` value.
    pub fn run_with_threads(
        g: &RoadNetwork,
        part: &(impl Partitioning + Sync),
        threads: usize,
    ) -> Self {
        let start = Instant::now();
        let n = part.num_regions();
        let nn = g.num_nodes();
        let borders = BorderInfo::compute(g, part);
        let region_of: Vec<RegionId> = g.node_ids().map(|v| part.region_of(v)).collect();
        let words = n.div_ceil(64);

        let merged = parallel::map_reduce_chunked(
            borders.all(),
            threads,
            4,
            || SourceScratch {
                ws: DijkstraWorkspace::new(nn),
                path_regions: vec![0u64; nn * words],
                on_path: vec![false; nn],
            },
            || SourcePartial {
                minmax: vec![MinMax::EMPTY; n * n],
                traversed: RegionSetMatrix::new(n),
                cross_border: vec![false; nn],
            },
            |scratch, partial, sources, _base| {
                for &b in sources {
                    process_source(g, part, &borders, &region_of, words, scratch, partial, b);
                }
            },
            |acc, p| {
                for (a, b) in acc.minmax.iter_mut().zip(&p.minmax) {
                    a.min = a.min.min(b.min);
                    a.max = a.max.max(b.max);
                }
                acc.traversed.union_with(&p.traversed);
                for (a, b) in acc.cross_border.iter_mut().zip(&p.cross_border) {
                    *a |= b;
                }
            },
        );

        let (mut minmax, traversed, mut cross_border) = match merged {
            Some(p) => (p.minmax, p.traversed, p.cross_border),
            // A one-region partitioning has no border nodes at all.
            None => (
                vec![MinMax::EMPTY; n * n],
                RegionSetMatrix::new(n),
                vec![false; nn],
            ),
        };
        for r in 0..n {
            minmax[r * n + r].min = 0;
        }
        for &b in borders.all() {
            cross_border[b as usize] = true;
        }

        Self {
            num_regions: n,
            minmax,
            traversed,
            cross_border,
            borders,
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// True when the precomputed tables (min/max matrix, traversed-region
    /// sets, cross-border marks, border inventory) are identical —
    /// the bit-identical check the parallel pipeline is validated with.
    /// Timing is deliberately excluded.
    pub fn same_tables(&self, other: &Self) -> bool {
        self.num_regions == other.num_regions
            && self.minmax == other.minmax
            && self.traversed == other.traversed
            && self.cross_border == other.cross_border
            && self.borders.all() == other.borders.all()
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Min/max border-pair distances for `(from, to)`.
    #[inline]
    pub fn minmax(&self, from: RegionId, to: RegionId) -> MinMax {
        self.minmax[from as usize * self.num_regions + to as usize]
    }

    /// Regions traversed by some border-pair shortest path of `(from, to)`.
    #[inline]
    pub fn traversed(&self, from: RegionId, to: RegionId) -> &RegionSet {
        self.traversed.get(from, to)
    }

    /// The regions a client needs for a query from `rs` to `rt`: the
    /// traversed set plus both terminal regions (which always carry the
    /// intra-region path prefix/suffix).
    pub fn needed_regions(&self, rs: RegionId, rt: RegionId) -> RegionSet {
        let mut set = self.traversed(rs, rt).clone();
        set.insert(rs);
        set.insert(rt);
        set
    }

    /// Whether `v` lies on some inter-region border-pair shortest path.
    #[inline]
    pub fn is_cross_border(&self, v: NodeId) -> bool {
        self.cross_border[v as usize]
    }

    /// Border-node inventory.
    pub fn borders(&self) -> &BorderInfo {
        &self.borders
    }
}

/// Folds one border-node source into a partial: full forward Dijkstra,
/// then the three tree DPs of the module docs. Depends only on `b`'s own
/// search tree, never on other sources' results — the independence the
/// parallel fan-out rests on.
#[allow(clippy::too_many_arguments)]
fn process_source(
    g: &RoadNetwork,
    part: &(impl Partitioning + Sync),
    borders: &BorderInfo,
    region_of: &[RegionId],
    words: usize,
    scratch: &mut SourceScratch,
    partial: &mut SourcePartial,
    b: NodeId,
) {
    let n = part.num_regions();
    let rb = part.region_of(b);
    let SourceScratch {
        ws,
        path_regions,
        on_path,
    } = scratch;
    ws.run(g, b, Direction::Forward);

    // Forward DP: regions of the path b -> v.
    for &v in ws.settle_order() {
        let vi = v as usize * words;
        match ws.parent(v) {
            Some(p) => {
                let pi = p as usize * words;
                for k in 0..words {
                    path_regions[vi + k] = path_regions[pi + k];
                }
            }
            None => path_regions[vi..vi + words].iter_mut().for_each(|w| *w = 0),
        }
        let r = region_of[v as usize] as usize;
        path_regions[vi + r / 64] |= 1u64 << (r % 64);
    }

    // Collect min/max and traversed sets towards every other border node
    // (different *or same* region — the diagonal serves same-region
    // queries).
    for &t in borders.all() {
        if t == b {
            continue;
        }
        let d = ws.distance(t);
        if d == DIST_INF {
            continue;
        }
        let rt = part.region_of(t);
        let cell = &mut partial.minmax[rb as usize * n + rt as usize];
        cell.min = cell.min.min(d);
        cell.max = cell.max.max(d);
        let ti = t as usize * words;
        partial
            .traversed
            .get_mut(rb, rt)
            .union_words(&path_regions[ti..ti + words]);
    }

    // Reverse DP: mark ancestors of all border targets. §4.1 defines
    // cross-border nodes via paths between border nodes of *different*
    // regions, but same-region border pairs must be included too: a query
    // with Rs == Rt whose shortest path detours through a neighbouring
    // region R' travels over nodes of R' that lie only on same-region
    // border-pair paths, and EB ships only the cross-border segment of
    // R'. (Extension of the paper's definition, required for correctness
    // of same-region queries; the diagonal of matrix A is the matching
    // extension on the pruning side.)
    //
    // `on_path` marks from a previous source are only ever read for
    // nodes in the *current* settle order, which is cleared first, so
    // the buffer carries over between sources without a full reset.
    for &v in ws.settle_order() {
        on_path[v as usize] = false;
    }
    for &t in borders.all() {
        if t != b && ws.distance(t) != DIST_INF {
            on_path[t as usize] = true;
        }
    }
    for &v in ws.settle_order().iter().rev() {
        if on_path[v as usize] {
            partial.cross_border[v as usize] = true;
            if let Some(p) = ws.parent(v) {
                on_path[p as usize] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_partition::KdTreePartition;
    use spair_roadnet::dijkstra::{dijkstra_distance, dijkstra_to_target};
    use spair_roadnet::generators::small_grid;

    fn setup(seed: u64, regions: usize) -> (RoadNetwork, KdTreePartition, BorderPrecomputation) {
        let g = small_grid(12, 12, seed);
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        (g, part, pre)
    }

    #[test]
    fn minmax_matches_pairwise_dijkstra() {
        let (g, _part, pre) = setup(3, 4);
        let borders = pre.borders();
        for ri in 0..4u16 {
            for rj in 0..4u16 {
                let mut min = DIST_INF;
                let mut max = 0;
                for &a in borders.of_region(ri) {
                    for &b in borders.of_region(rj) {
                        if a == b {
                            continue;
                        }
                        if let Some(d) = dijkstra_distance(&g, a, b) {
                            min = min.min(d);
                            max = max.max(d);
                        }
                    }
                }
                let cell = pre.minmax(ri, rj);
                if ri == rj {
                    assert_eq!(cell.min, 0);
                    assert_eq!(cell.max, max);
                } else {
                    assert_eq!(cell.min, min, "min({ri},{rj})");
                    assert_eq!(cell.max, max, "max({ri},{rj})");
                }
            }
        }
    }

    #[test]
    fn traversed_covers_actual_path_regions() {
        let (g, part, pre) = setup(5, 8);
        let borders = pre.borders();
        // For a sample of border pairs, the regions of the true shortest
        // path must all appear in the traversed set (ties may differ, but
        // the canonical path has equal length; we check distances instead
        // when the region sets differ).
        let all = borders.all();
        for (i, &a) in all.iter().enumerate().step_by(5) {
            for &b in all.iter().skip(i + 1).step_by(7) {
                let ra = part.region_of(a);
                let rb = part.region_of(b);
                if ra == rb {
                    continue;
                }
                let set = pre.traversed(ra, rb);
                // Restricting Dijkstra to the traversed set must preserve
                // the border-pair distance.
                let (res, _) = spair_roadnet::dijkstra::dijkstra_filtered(&g, a, b, |v| {
                    set.contains(part.region_of(v))
                });
                let want = dijkstra_distance(&g, a, b);
                assert_eq!(res.map(|(d, _)| d), want, "pair {a}->{b}");
            }
        }
    }

    #[test]
    fn needed_regions_contains_terminals() {
        let (_, _, pre) = setup(1, 4);
        for rs in 0..4u16 {
            for rt in 0..4u16 {
                let needed = pre.needed_regions(rs, rt);
                assert!(needed.contains(rs) && needed.contains(rt));
            }
        }
    }

    #[test]
    fn cross_border_nodes_cover_border_pair_paths() {
        let (g, part, pre) = setup(7, 4);
        let borders = pre.borders();
        let all = borders.all();
        for (i, &a) in all.iter().enumerate().step_by(6) {
            for &b in all.iter().skip(i + 1).step_by(9) {
                if part.region_of(a) == part.region_of(b) {
                    continue;
                }
                // A shortest path must exist using only cross-border
                // nodes (the canonical one qualifies).
                let want = dijkstra_distance(&g, a, b);
                let (res, _) = spair_roadnet::dijkstra::dijkstra_filtered(&g, a, b, |v| {
                    pre.is_cross_border(v)
                });
                assert_eq!(res.map(|(d, _)| d), want);
            }
        }
    }

    #[test]
    fn local_nodes_are_never_on_inter_region_paths() {
        let (g, part, pre) = setup(2, 8);
        let borders = pre.borders();
        // Sample a few border pairs, walk the actual path, and confirm
        // every intermediate node is flagged cross-border.
        let all = borders.all();
        for (i, &a) in all.iter().enumerate().step_by(8) {
            for &b in all.iter().skip(i + 1).step_by(11) {
                if part.region_of(a) == part.region_of(b) {
                    continue;
                }
                if let Some((_, path)) = dijkstra_to_target(&g, a, b) {
                    // The canonical tree path is marked; an arbitrary
                    // shortest path may differ under ties, so re-derive
                    // the canonical one via full Dijkstra's parents.
                    let tree = spair_roadnet::dijkstra_full(&g, a);
                    let canon = tree.path_to(b).unwrap();
                    for &v in &canon {
                        assert!(
                            pre.is_cross_border(v),
                            "node {v} on canonical {a}->{b} not marked"
                        );
                    }
                    let _ = path;
                }
            }
        }
    }

    #[test]
    fn diagonal_minmax_bounds_detours() {
        let (_, _, pre) = setup(4, 4);
        for r in 0..4u16 {
            let cell = pre.minmax(r, r);
            assert_eq!(cell.min, 0);
        }
    }

    #[test]
    fn timing_is_recorded() {
        let (_, _, pre) = setup(0, 4);
        assert!(pre.precompute_secs >= 0.0);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        for (seed, regions) in [(1u64, 4usize), (9, 8), (13, 16)] {
            let g = small_grid(14, 14, seed);
            let part = KdTreePartition::build(&g, regions);
            let serial = BorderPrecomputation::run_serial(&g, &part);
            for threads in [2, 3, 5, 8] {
                let par = BorderPrecomputation::run_with_threads(&g, &part, threads);
                assert!(
                    serial.same_tables(&par),
                    "threads={threads} seed={seed} regions={regions}"
                );
            }
        }
    }

    #[test]
    fn single_region_partition_has_empty_tables() {
        let g = small_grid(6, 6, 2);
        let part = spair_partition::GridPartition::build(&g, 1, 1);
        let pre = BorderPrecomputation::run(&g, &part);
        assert_eq!(pre.borders().count(), 0);
        assert_eq!(pre.minmax(0, 0).min, 0);
        assert!(pre.traversed(0, 0).is_empty());
    }
}
