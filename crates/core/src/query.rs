//! Query and result types shared by every broadcast method.

use spair_broadcast::{BroadcastChannel, QueryStats};
use spair_roadnet::{Distance, NodeId, Point, RoadNetwork};

/// A shortest-path query posed at the client.
///
/// The client knows its own coordinates and the destination's coordinates
/// (that is what it feeds the kd locator to find `Rs`/`Rt`), and — per the
/// paper's simplifying assumption in §3.2 — the network nodes they
/// correspond to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Source node `v_s`.
    pub source: NodeId,
    /// Target node `v_t`.
    pub target: NodeId,
    /// Source coordinates.
    pub source_pt: Point,
    /// Target coordinates.
    pub target_pt: Point,
}

impl Query {
    /// Builds a query between two network nodes, taking coordinates from
    /// the network.
    pub fn for_nodes(g: &RoadNetwork, source: NodeId, target: NodeId) -> Self {
        Self {
            source,
            target,
            source_pt: g.point(source),
            target_pt: g.point(target),
        }
    }
}

/// Why a query could not produce a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The target is not reachable from the source.
    Unreachable,
    /// The client aborted: the broadcast program is unusable (e.g. decode
    /// kept failing beyond the retry budget). Indicates a server-side bug
    /// in practice; never expected in the experiments.
    Aborted(&'static str),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Unreachable => write!(f, "target unreachable from source"),
            QueryError::Aborted(why) => write!(f, "client aborted: {why}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A computed shortest path with its measured cost.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Shortest-path distance.
    pub distance: Distance,
    /// Node sequence from source to target.
    pub path: Vec<NodeId>,
    /// Performance measurements (§3.1 factors).
    pub stats: QueryStats,
}

/// In-memory bytes a decoded node costs the client: id + coords +
/// hash-map bookkeeping, with 8 bytes per adjacency entry charged
/// separately. One constant shared by all methods so memory comparisons
/// are apples-to-apples.
#[inline]
pub fn decoded_node_bytes(degree: usize) -> usize {
    16 + 8 * degree
}

/// Uniform interface the experiment harness drives: every method is a
/// client that answers a query over a tuned-in channel session.
pub trait AirClient {
    /// Method name as used in the paper's charts (e.g. "NR", "EB").
    fn method_name(&self) -> &'static str;

    /// Processes one query over `channel`, which is already tuned in at
    /// an arbitrary instant.
    fn query(
        &mut self,
        channel: &mut BroadcastChannel<'_>,
        query: &Query,
    ) -> Result<QueryOutcome, QueryError>;

    /// Hands the last session's received arena (and its coverage) to a
    /// dynamic-world driver, consuming it — the hook delta-broadcast
    /// patching builds on. Methods whose answers cannot be upgraded by
    /// weight patches (index-carrying cycles) keep the default `None`.
    fn export_arena(&mut self) -> Option<crate::patch::ClientArena> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn for_nodes_copies_coordinates() {
        let g = small_grid(4, 4, 0);
        let q = Query::for_nodes(&g, 1, 14);
        assert_eq!(q.source_pt.x, g.point(1).x);
        assert_eq!(q.target_pt.y, g.point(14).y);
    }

    #[test]
    fn decoded_node_bytes_scales_with_degree() {
        assert_eq!(decoded_node_bytes(0), 16);
        assert_eq!(decoded_node_bytes(3), 40);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            QueryError::Unreachable.to_string(),
            "target unreachable from source"
        );
        assert!(QueryError::Aborted("x").to_string().contains('x'));
    }
}
