//! The Next Region (NR) method (paper §5).
//!
//! NR fixes EB's weakness on long paths: instead of an elliptic candidate
//! set derived from distance bounds, the server records — per region pair
//! `(Ri, Rj)` — exactly which regions some border-pair shortest path
//! traverses. Broadcasting that n³ table would dwarf the network, so NR
//! ships no global index at all: each region `Rm` is preceded by a small
//! *local* index `A^m` whose `(Ri, Rj)` cell names only the **next needed
//! region in broadcast order**. The client hops: receive a local index,
//! look up one cell, sleep to the named region, receive it together with
//! the local index that follows it, look up the next cell, ... until the
//! cell points at a region it already holds (Algorithm 2).
//!
//! This is fundamentally different from replicating one global index
//! (1,m)-style: the client starts useful work one local index after tuning
//! in, receives only the tiny slices of indexing information it needs, and
//! the cycle stays barely longer than the raw network data.

mod client;
mod index;
mod server;

pub use client::NrClient;
pub(crate) use index::MAX_WIRE_REGIONS;
pub use index::{NrLocalIndex, NrOffsetEntry};
pub use server::{NrProgram, NrServer, NrSummary};
