//! Server-side NR: next-region table construction and cycle assembly.

use crate::netcodec::encode_nodes_with_borders;
use crate::nr::index::{NrLocalIndex, NrOffsetEntry, NO_NEXT};
use crate::precompute::BorderPrecomputation;
use bytes::Bytes;
use spair_broadcast::codec::EncodeError;
use spair_broadcast::cycle::{CycleBuilder, SegmentKind};
use spair_broadcast::packet::PacketKind;
use spair_broadcast::BroadcastCycle;
use spair_partition::{KdTreePartition, Partitioning, RegionId};
use spair_roadnet::RoadNetwork;

/// Client bootstrap info for NR (recoverable from any packet header).
#[derive(Debug, Clone, Copy)]
pub struct NrSummary {
    /// Number of kd regions.
    pub num_regions: usize,
}

/// A fully assembled NR broadcast program.
#[derive(Debug)]
pub struct NrProgram {
    cycle: BroadcastCycle,
    summary: NrSummary,
    index_packets_per_region: Vec<usize>,
}

impl NrProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Client bootstrap info.
    pub fn summary(&self) -> NrSummary {
        self.summary
    }

    /// Packets of each region's local index.
    pub fn index_packets(&self) -> usize {
        self.index_packets_per_region.iter().sum()
    }
}

/// NR server.
pub struct NrServer<'a> {
    g: &'a RoadNetwork,
    part: &'a KdTreePartition,
    pre: &'a BorderPrecomputation,
}

impl<'a> NrServer<'a> {
    /// Binds the server to its inputs. Precomputation cost is identical to
    /// EB's (the same border-pair shortest paths, §5.2).
    pub fn new(
        g: &'a RoadNetwork,
        part: &'a KdTreePartition,
        pre: &'a BorderPrecomputation,
    ) -> Self {
        assert_eq!(part.num_regions(), pre.num_regions());
        Self { g, part, pre }
    }

    /// Next-region matrix for viewpoint `m`: cell `(i, j)` is the first
    /// region at/after `m` in cyclic broadcast order that is needed for a
    /// shortest path from `Ri` to `Rj`.
    fn next_matrix(&self, m: RegionId, needed_lists: &[Vec<RegionId>]) -> Vec<u16> {
        let n = self.part.num_regions();
        let mut out = vec![NO_NEXT; n * n];
        for i in 0..n {
            for j in 0..n {
                let needed = &needed_lists[i * n + j];
                if needed.is_empty() {
                    continue;
                }
                // First needed >= m, else wrap to the smallest.
                let nxt = match needed.binary_search(&m) {
                    Ok(k) => needed[k],
                    Err(k) if k < needed.len() => needed[k],
                    Err(_) => needed[0],
                };
                out[i * n + j] = nxt;
            }
        }
        out
    }

    /// Assembles the broadcast program: `[A^0][R0][A^1][R1]...`, no (1,m)
    /// replication — the local indexes *are* the replication (§5). Each
    /// region's data is split into its cross-border and local segments
    /// (§4.1), so clients skip the local segments of intermediate regions;
    /// this is what keeps NR's tuning time below EB's in Figure 10a.
    pub fn build_program(&self) -> Result<NrProgram, EncodeError> {
        let n = self.part.num_regions();
        let region_payloads: Vec<(Vec<Bytes>, Vec<Bytes>)> = (0..n)
            .map(|r| {
                let nodes = &self.part.nodes_by_region()[r];
                let (cross, local): (Vec<_>, Vec<_>) = nodes
                    .iter()
                    .copied()
                    .partition(|&v| self.pre.is_cross_border(v));
                let flag = |v| self.pre.borders().is_border(v);
                (
                    encode_nodes_with_borders(self.g, &cross, flag),
                    encode_nodes_with_borders(self.g, &local, flag),
                )
            })
            .collect();

        // Sorted needed-region lists per pair.
        let mut needed_lists: Vec<Vec<RegionId>> = Vec::with_capacity(n * n);
        for i in 0..n as RegionId {
            for j in 0..n as RegionId {
                let set = self.pre.needed_regions(i, j);
                needed_lists.push(set.iter().collect());
            }
        }

        let make_indexes = |offsets: &[NrOffsetEntry]| -> Vec<NrLocalIndex> {
            (0..n as RegionId)
                .map(|m| NrLocalIndex {
                    region: m,
                    num_regions: n,
                    splits: self.part.splits().to_vec(),
                    next: self.next_matrix(m, &needed_lists),
                    offsets: offsets.to_vec(),
                })
                .collect()
        };

        // Pass 1: placeholder offsets to learn the layout.
        let placeholder = vec![
            NrOffsetEntry {
                data_offset: 0,
                cross_packets: 0,
                local_packets: 0,
            };
            n
        ];
        let dry_indexes = make_indexes(&placeholder);
        let mut offset = 0usize;
        let mut entries = Vec::with_capacity(n);
        let mut index_lens = Vec::with_capacity(n);
        for m in 0..n {
            let ilen = dry_indexes[m].encode()?.len();
            index_lens.push(ilen);
            offset += ilen;
            entries.push(NrOffsetEntry {
                data_offset: offset as u32,
                cross_packets: region_payloads[m].0.len() as u16,
                local_packets: region_payloads[m].1.len() as u16,
            });
            offset += region_payloads[m].0.len() + region_payloads[m].1.len();
        }

        // Pass 2: real offsets (identical packet counts by construction).
        let mut builder = CycleBuilder::new();
        for (m, idx) in make_indexes(&entries).into_iter().enumerate() {
            let payloads = idx.encode()?;
            assert_eq!(payloads.len(), index_lens[m], "fixed-width encoding");
            builder.push_segment(
                SegmentKind::LocalIndex(m as u16),
                PacketKind::LocalIndex,
                payloads,
            );
            builder.push_segment(
                SegmentKind::RegionData(m as u16),
                PacketKind::Data,
                region_payloads[m].0.clone(),
            );
            builder.push_segment(
                SegmentKind::RegionLocalData(m as u16),
                PacketKind::Data,
                region_payloads[m].1.clone(),
            );
        }
        Ok(NrProgram {
            cycle: builder.finish(),
            summary: NrSummary { num_regions: n },
            index_packets_per_region: index_lens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nr::index::{NrIndexDecoder, NrSharedState};
    use spair_roadnet::generators::small_grid;

    fn build(seed: u64, regions: usize) -> (RoadNetwork, NrProgram) {
        let g = small_grid(10, 10, seed);
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        let program = NrServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn layout_alternates_index_and_data() {
        let (_, program) = build(1, 8);
        let segs = program.cycle().segments();
        assert_eq!(segs.len(), 24);
        for m in 0..8u16 {
            assert_eq!(segs[3 * m as usize].kind, SegmentKind::LocalIndex(m));
            assert_eq!(segs[3 * m as usize + 1].kind, SegmentKind::RegionData(m));
            assert_eq!(
                segs[3 * m as usize + 2].kind,
                SegmentKind::RegionLocalData(m)
            );
        }
    }

    #[test]
    fn offsets_match_layout() {
        let (_, program) = build(2, 8);
        // Decode local index 0 and verify the offset table against the
        // actual segments.
        let seg = program
            .cycle()
            .find_segment(SegmentKind::LocalIndex(0))
            .unwrap();
        let mut dec = NrIndexDecoder::new();
        let mut shared = NrSharedState::default();
        for off in seg.start..seg.start + seg.len {
            assert!(dec.ingest(program.cycle().packet(off).payload(), &mut shared));
        }
        for r in 0..8u16 {
            let e = shared.offsets[r as usize].unwrap();
            let cross = program
                .cycle()
                .find_segment(SegmentKind::RegionData(r))
                .unwrap();
            let local = program
                .cycle()
                .find_segment(SegmentKind::RegionLocalData(r))
                .unwrap();
            assert_eq!(e.data_offset as usize, cross.start, "region {r}");
            assert_eq!(e.cross_packets as usize, cross.len);
            assert_eq!(e.local_packets as usize, local.len);
            assert_eq!(local.start, cross.start + cross.len, "contiguous");
        }
    }

    #[test]
    fn next_cells_point_to_needed_regions_cyclically() {
        let g = small_grid(10, 10, 5);
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let server = NrServer::new(&g, &part, &pre);
        let mut lists = Vec::new();
        for i in 0..8u16 {
            for j in 0..8u16 {
                lists.push(pre.needed_regions(i, j).iter().collect::<Vec<_>>());
            }
        }
        for m in 0..8u16 {
            let mat = server.next_matrix(m, &lists);
            for i in 0..8usize {
                for j in 0..8usize {
                    let nxt = mat[i * 8 + j];
                    let needed = &lists[i * 8 + j];
                    assert!(!needed.is_empty());
                    assert!(needed.contains(&nxt));
                    // No needed region lies strictly between m and nxt in
                    // cyclic order.
                    for &r in needed {
                        let dr = (r + 8 - m) % 8;
                        let dn = (nxt + 8 - m) % 8;
                        assert!(dr >= dn, "m={m} pair=({i},{j}): {r} precedes {nxt}");
                    }
                }
            }
        }
    }

    #[test]
    fn nr_overhead_is_local_indexes_only() {
        // NR's cycle = raw region data + the per-region local indexes; no
        // (1,m) replication. (The NR < EB cycle-length relation of Table 1
        // emerges at paper scale, where EB's replicated global matrix
        // outweighs NR's fixed local indexes; the Table 1 experiment
        // demonstrates it.)
        let g = small_grid(12, 12, 7);
        let part = KdTreePartition::build(&g, 16);
        let pre = BorderPrecomputation::run(&g, &part);
        let nr = NrServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        let raw: usize = (0..16u16)
            .map(|r| {
                nr.cycle()
                    .find_segment(SegmentKind::RegionData(r))
                    .unwrap()
                    .len
                    + nr.cycle()
                        .find_segment(SegmentKind::RegionLocalData(r))
                        .unwrap()
                        .len
            })
            .sum();
        assert_eq!(nr.cycle().len(), raw + nr.index_packets());
    }
}
