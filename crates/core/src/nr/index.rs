//! On-air encoding of NR's per-region local indexes.
//!
//! A local index `A^m` carries: the kd splitting values (first index
//! component, identical in every copy so a client can start anywhere), the
//! region offset table (where each region's data starts and how long it
//! is), and the n×n next-region matrix with cells relative to position
//! `m`. Cells are one byte when `n <= 255` — next-region values are region
//! *numbers*, and keeping them byte-wide is what keeps NR's cycle within a
//! couple of percent of the raw network (Table 1: 14 260 vs 14 019
//! packets on Germany).
//!
//! Every packet starts with a 9-byte self-describing header (magic, owner
//! region, sequence, copy length, region count).

use bytes::Bytes;
use spair_broadcast::codec::{u16_of, EncodeError, PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::packet::PAYLOAD_CAPACITY;
use spair_partition::RegionId;

const MAGIC: u8 = 0xA2;

/// Upper bound on the region count a decoder will accept from the wire.
/// Far above any real partitioning (the paper tops out at hundreds), but
/// small enough that `n * n` matrix cells stay an ordinary allocation.
pub(crate) const MAX_WIRE_REGIONS: usize = 4096;
const TAG_SPLITS: u8 = 1;
const TAG_NEXT: u8 = 2;
const TAG_OFFSET: u8 = 3;
const HEADER_LEN: usize = 9;

/// Sentinel cell: no next-region information for this pair.
pub const NO_NEXT: u16 = u16::MAX;

/// Per-region entry of the offset table carried in every local index.
///
/// Region data is split into the cross-border segment and the local
/// segment (§4.1); NR clients receive only the former for intermediate
/// regions, which is what keeps NR's tuning time below EB's (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrOffsetEntry {
    /// Cycle offset where the region's cross-border segment starts.
    pub data_offset: u32,
    /// Packets of the cross-border segment.
    pub cross_packets: u16,
    /// Packets of the local segment that follows it (the local index of
    /// the next region is contiguous after both).
    pub local_packets: u16,
}

impl NrOffsetEntry {
    /// Total region-data packets (cross-border + local).
    pub fn data_packets(&self) -> usize {
        self.cross_packets as usize + self.local_packets as usize
    }
}

/// A fully materialized local index (server side).
#[derive(Debug, Clone)]
pub struct NrLocalIndex {
    /// Region this index precedes.
    pub region: RegionId,
    /// Number of regions.
    pub num_regions: usize,
    /// Kd splitting values.
    pub splits: Vec<f64>,
    /// Row-major next-region matrix (`NO_NEXT` = no information).
    pub next: Vec<u16>,
    /// Offset table.
    pub offsets: Vec<NrOffsetEntry>,
}

impl NrLocalIndex {
    /// Encodes into packet payloads. Fixed width given `num_regions`, so
    /// packet counts never change when offsets are patched.
    ///
    /// Fails with a typed [`EncodeError`] when the index exceeds a wire
    /// field (chunk starts, row ids, the u16 seq/total header) instead
    /// of silently truncating a counter.
    pub fn encode(&self) -> Result<Vec<Bytes>, EncodeError> {
        let n = self.num_regions;
        assert_eq!(self.splits.len(), n - 1);
        assert_eq!(self.next.len(), n * n);
        assert_eq!(self.offsets.len(), n);
        let wide = n > 255;

        let body = |total: u16| -> Result<Vec<Bytes>, EncodeError> {
            let mut w = RecordWriter::with_capacity(PAYLOAD_CAPACITY - HEADER_LEN);
            let mut rec = RecordBuf::new();

            // Splits travel as full f64: they are exact node coordinates
            // (kd medians), and the client's `locate` uses `>=` against
            // them — any rounding would flip boundary nodes into the wrong
            // region, making the client fetch data that lacks the query
            // endpoints.
            for (ci, chunk) in self.splits.chunks(12).enumerate() {
                rec.clear();
                rec.put_u8(TAG_SPLITS)
                    .put_u16(u16_of(ci * 12, "nr splits chunk start")?)
                    .put_u8(chunk.len() as u8);
                for &s in chunk {
                    rec.put_f64(s);
                }
                w.push_record(rec.as_slice());
            }

            for (r, e) in self.offsets.iter().enumerate() {
                rec.clear();
                rec.put_u8(TAG_OFFSET)
                    .put_u16(u16_of(r, "nr offset region id")?)
                    .put_u32(e.data_offset)
                    .put_u16(e.cross_packets)
                    .put_u16(e.local_packets);
                w.push_record(rec.as_slice());
            }

            // Next-region rows in chunks that fit a record.
            let per_chunk = if wide { 48 } else { 96 };
            for i in 0..n {
                let row = &self.next[i * n..(i + 1) * n];
                for (ci, chunk) in row.chunks(per_chunk).enumerate() {
                    rec.clear();
                    rec.put_u8(TAG_NEXT)
                        .put_u16(u16_of(i, "nr next-row region")?)
                        .put_u16(u16_of(ci * per_chunk, "nr next-row chunk start")?)
                        .put_u8(chunk.len() as u8);
                    for &c in chunk {
                        if wide {
                            rec.put_u16(c);
                        } else {
                            rec.put_u8(if c == NO_NEXT { 255 } else { c as u8 });
                        }
                    }
                    w.push_record(rec.as_slice());
                }
            }

            w.finish()
                .into_iter()
                .enumerate()
                .map(|(seq, body)| {
                    let mut h = RecordBuf::new();
                    h.put_u8(MAGIC)
                        .put_u16(self.region)
                        .put_u16(u16_of(seq, "nr index seq")?)
                        .put_u16(total)
                        .put_u16(u16_of(n, "nr region count")?);
                    let mut v = h.as_slice().to_vec();
                    v.extend_from_slice(&body);
                    Ok(Bytes::from(v))
                })
                .collect()
        };

        let count = u16_of(body(0)?.len(), "nr index total packets")?;
        body(count)
    }
}

/// Parsed per-packet header of a local-index packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrHeader {
    /// Owner region of the copy.
    pub region: RegionId,
    /// Packet's position within the copy.
    pub seq: u16,
    /// Copy length in packets (0 only in the server's sizing pass).
    pub total: u16,
    /// Region count.
    pub num_regions: u16,
}

/// Parses just the 9-byte header (used by clients that tuned in mid-copy
/// to learn how many packets of the copy remain).
pub fn parse_header(payload: &[u8]) -> Option<NrHeader> {
    let mut r = PayloadReader::new(payload);
    if r.read_u8()? != MAGIC {
        return None;
    }
    Some(NrHeader {
        region: r.read_u16()?,
        seq: r.read_u16()?,
        total: r.read_u16()?,
        num_regions: r.read_u16()?,
    })
}

/// Loss-tolerant decoder for one local-index copy, with shared state for
/// the structures that are identical across copies (splits, offsets).
#[derive(Debug)]
pub struct NrIndexDecoder {
    /// Owner region of the copy being decoded.
    pub region: Option<RegionId>,
    /// Copy length, once any packet arrived.
    pub total_packets: Option<u16>,
    /// Region count.
    pub num_regions: Option<usize>,
    /// The query's cell, if its packet arrived (set via [`Self::cell`]).
    next_cells: Vec<Option<u16>>,
}

impl Default for NrIndexDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl NrIndexDecoder {
    /// Fresh decoder for one copy.
    pub fn new() -> Self {
        Self {
            region: None,
            total_packets: None,
            num_regions: None,
            next_cells: Vec::new(),
        }
    }

    /// Ingests one packet payload, merging splits/offsets into `shared`.
    /// Returns `false` for payloads that are not NR local-index packets.
    pub fn ingest(&mut self, payload: &[u8], shared: &mut NrSharedState) -> bool {
        let mut r = PayloadReader::new(payload);
        let Some(MAGIC) = r.read_u8() else {
            return false;
        };
        let (Some(region), Some(_seq), Some(total), Some(n)) =
            (r.read_u16(), r.read_u16(), r.read_u16(), r.read_u16())
        else {
            return false;
        };
        let n = n as usize;
        // A bit-flipped header must yield a typed reject, never a panic:
        // n == 0 would underflow the shared `n - 1` split store, and an
        // implausibly large n would turn `n * n` cells into an allocation
        // bomb before any real payload is inspected.
        if n == 0 || n > MAX_WIRE_REGIONS {
            return false;
        }
        self.region = Some(region);
        if total > 0 {
            self.total_packets = Some(total);
        }
        if self.num_regions.is_none() {
            self.num_regions = Some(n);
            self.next_cells = vec![None; n * n];
        }
        shared.ensure(n);
        let wide = n > 255;
        while let Some(tag) = r.read_u8() {
            match tag {
                TAG_SPLITS => {
                    let (Some(start), Some(count)) = (r.read_u16(), r.read_u8()) else {
                        return false;
                    };
                    for k in 0..count as usize {
                        let Some(v) = r.read_f64() else { return false };
                        if let Some(slot) = shared.splits.get_mut(start as usize + k) {
                            *slot = Some(v);
                        }
                    }
                }
                TAG_OFFSET => {
                    let (Some(reg), Some(off), Some(cross), Some(local)) =
                        (r.read_u16(), r.read_u32(), r.read_u16(), r.read_u16())
                    else {
                        return false;
                    };
                    if let Some(slot) = shared.offsets.get_mut(reg as usize) {
                        *slot = Some(NrOffsetEntry {
                            data_offset: off,
                            cross_packets: cross,
                            local_packets: local,
                        });
                    }
                }
                TAG_NEXT => {
                    let (Some(i), Some(j0), Some(count)) =
                        (r.read_u16(), r.read_u16(), r.read_u8())
                    else {
                        return false;
                    };
                    for k in 0..count as usize {
                        let v = if wide {
                            let Some(v) = r.read_u16() else { return false };
                            v
                        } else {
                            let Some(v) = r.read_u8() else { return false };
                            if v == 255 {
                                NO_NEXT
                            } else {
                                v as u16
                            }
                        };
                        let idx = i as usize * n + j0 as usize + k;
                        if let Some(slot) = self.next_cells.get_mut(idx) {
                            *slot = Some(v);
                        }
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// The `(from, to)` cell of this copy, if its packet arrived.
    pub fn cell(&self, from: RegionId, to: RegionId) -> Option<u16> {
        let n = self.num_regions?;
        self.next_cells[from as usize * n + to as usize]
    }
}

/// The structures identical in every local index: accumulated across
/// copies so losses heal as the client hops.
#[derive(Debug, Default)]
pub struct NrSharedState {
    /// Kd splitting values with holes.
    pub splits: Vec<Option<f64>>,
    /// Offset table with holes.
    pub offsets: Vec<Option<NrOffsetEntry>>,
}

impl NrSharedState {
    fn ensure(&mut self, n: usize) {
        if self.splits.is_empty() {
            self.splits = vec![None; n - 1];
            self.offsets = vec![None; n];
        }
    }

    /// Complete splits, if all arrived.
    pub fn complete_splits(&self) -> Option<Vec<f64>> {
        if self.splits.is_empty() {
            return None;
        }
        self.splits.iter().copied().collect()
    }

    /// Decoded footprint charged to the client: splits + offsets + one
    /// cached cell row.
    pub fn retained_bytes(&self) -> usize {
        self.splits.len() * 8 + self.offsets.len() * 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(region: RegionId, n: usize) -> NrLocalIndex {
        NrLocalIndex {
            region,
            num_regions: n,
            splits: (0..n - 1).map(|i| i as f64 + 0.5).collect(),
            next: (0..n * n)
                .map(|k| ((k + region as usize) % n) as u16)
                .collect(),
            offsets: (0..n)
                .map(|r| NrOffsetEntry {
                    data_offset: 10 * r as u32,
                    cross_packets: r as u16,
                    local_packets: (r / 2) as u16,
                })
                .collect(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let idx = sample(3, 16);
        let payloads = idx.encode().unwrap();
        let mut dec = NrIndexDecoder::new();
        let mut shared = NrSharedState::default();
        for p in &payloads {
            assert!(dec.ingest(p, &mut shared));
        }
        assert_eq!(dec.region, Some(3));
        assert_eq!(dec.total_packets, Some(payloads.len() as u16));
        assert_eq!(shared.complete_splits().unwrap(), idx.splits);
        for i in 0..16u16 {
            for j in 0..16u16 {
                assert_eq!(dec.cell(i, j), Some(idx.next[i as usize * 16 + j as usize]));
            }
        }
        for r in 0..16 {
            assert_eq!(shared.offsets[r].unwrap(), idx.offsets[r]);
        }
    }

    #[test]
    fn sentinel_cells_survive_narrow_encoding() {
        let mut idx = sample(0, 8);
        idx.next[5] = NO_NEXT;
        let mut dec = NrIndexDecoder::new();
        let mut shared = NrSharedState::default();
        for p in &idx.encode().unwrap() {
            dec.ingest(p, &mut shared);
        }
        assert_eq!(dec.cell(0, 5), Some(NO_NEXT));
    }

    #[test]
    fn wide_encoding_for_many_regions() {
        let idx = sample(1, 512);
        let mut dec = NrIndexDecoder::new();
        let mut shared = NrSharedState::default();
        for p in &idx.encode().unwrap() {
            assert!(dec.ingest(p, &mut shared));
        }
        assert_eq!(dec.cell(511, 511), Some(idx.next[512 * 512 - 1]));
    }

    #[test]
    fn packet_count_fixed_for_offset_values() {
        let mut a = sample(2, 32);
        let b = a.encode().unwrap().len();
        for e in &mut a.offsets {
            e.data_offset = u32::MAX / 2;
            e.cross_packets = 60_000;
            e.local_packets = 5_000;
        }
        assert_eq!(a.encode().unwrap().len(), b);
    }

    #[test]
    fn shared_state_heals_across_copies() {
        let idx0 = sample(0, 8);
        let idx1 = sample(1, 8);
        let mut shared = NrSharedState::default();
        let p0 = idx0.encode().unwrap();
        let p1 = idx1.encode().unwrap();
        // Lose packet 0 of copy 0, ingest the rest; then copy 1 complete.
        let mut d0 = NrIndexDecoder::new();
        for p in p0.iter().skip(1) {
            d0.ingest(p, &mut shared);
        }
        let incomplete =
            shared.complete_splits().is_none() || shared.offsets.iter().any(Option::is_none);
        let mut d1 = NrIndexDecoder::new();
        for p in &p1 {
            d1.ingest(p, &mut shared);
        }
        assert!(shared.complete_splits().is_some());
        assert!(shared.offsets.iter().all(Option::is_some));
        let _ = incomplete;
    }

    #[test]
    fn small_cycle_overhead_versus_matrix_size() {
        // 32 regions: one local index must stay within ~20 packets
        // (32*32 bytes of cells + 31 f64 splits + 32*11 offset table).
        let idx = sample(0, 32);
        let count = idx.encode().unwrap().len();
        assert!(count <= 20, "local index unexpectedly large: {count}");
    }

    /// Decoder panic audit: every payload — random, truncated, or
    /// bit-flipped — must yield a typed reject or a partial decode,
    /// never a panic.
    mod panic_audit {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            #[test]
            fn arbitrary_payloads_never_panic(
                payload in proptest::collection::vec(any::<u8>(), 0..220),
            ) {
                let mut dec = NrIndexDecoder::new();
                let mut shared = NrSharedState::default();
                let _ = dec.ingest(&payload, &mut shared);
                let _ = shared.complete_splits();
            }

            #[test]
            fn corrupted_real_payloads_never_panic(
                cut in 0usize..256,
                bit in 0usize..(1 << 11),
            ) {
                for payload in sample(3, 16).encode().unwrap() {
                    let mut dec = NrIndexDecoder::new();
                    let mut shared = NrSharedState::default();
                    let _ = dec.ingest(&payload[..cut.min(payload.len())], &mut shared);
                    let mut flipped = payload.to_vec();
                    let b = bit % (flipped.len() * 8);
                    flipped[b / 8] ^= 1 << (b % 8);
                    let mut dec = NrIndexDecoder::new();
                    let mut shared = NrSharedState::default();
                    let _ = dec.ingest(&flipped, &mut shared);
                    let _ = shared.complete_splits();
                }
            }
        }

        /// Hostile header region counts: zero (would underflow the
        /// shared `n - 1` split store) and u16::MAX (would blow up the
        /// `n * n` next-cell matrix) must be typed rejects.
        #[test]
        fn hostile_region_counts_are_rejected() {
            let payload = sample(3, 16).encode().unwrap().remove(0);
            for n in [0u16, u16::MAX] {
                let mut hostile = payload.to_vec();
                hostile[7..9].copy_from_slice(&n.to_le_bytes());
                let mut dec = NrIndexDecoder::new();
                let mut shared = NrSharedState::default();
                assert!(!dec.ingest(&hostile, &mut shared), "n={n}");
                assert!(shared.splits.is_empty(), "n={n}: no allocation");
            }
        }
    }
}
