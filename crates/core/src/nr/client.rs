//! Client-side NR query processing (§5.2, Algorithm 2) with the §6.2 loss
//! recovery rules.

use crate::client_common::{find_next_index, MAX_RETRY_CYCLES};
use crate::netcodec::{decode_payload, ReceivedGraph};
use crate::nr::index::{parse_header, NrIndexDecoder, NrSharedState, NO_NEXT};
use crate::nr::server::NrSummary;
use crate::patch::{ClientArena, Coverage};
use crate::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, CpuMeter, MemoryMeter, QueryStats, Received};
use spair_partition::{KdLocator, RegionId};
use spair_roadnet::QueuePolicy;

/// The NR client.
#[derive(Debug, Clone)]
pub struct NrClient {
    summary: NrSummary,
    queue: QueuePolicy,
    /// Last session's received arena, retained for [`AirClient::export_arena`]
    /// (dynamic worlds patch it in place instead of re-tuning).
    store: ReceivedGraph,
    /// Regions the last session received data from, ascending.
    held: Vec<u16>,
}

/// What [`NrClient::receive_local_index`] ran into after the copy.
enum Overrun {
    /// Copy fully consumed; positioned at the packet after it.
    None,
    /// Consumed one packet past the copy (a data packet): its cycle offset
    /// and payload, if it arrived intact.
    DataPacket(usize, Option<bytes::Bytes>),
    /// Could not even establish the copy extent (heavy loss).
    Unknown,
}

impl NrClient {
    /// New client for an NR broadcast program.
    pub fn new(summary: NrSummary) -> Self {
        Self {
            summary,
            queue: QueuePolicy::default(),
            store: ReceivedGraph::new(),
            held: Vec::new(),
        }
    }

    /// Selects the queue driving the final client-side Dijkstra over the
    /// received regions. Distances are identical under every policy.
    pub fn with_queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    /// Receives one local-index copy starting at (or inside) the current
    /// offset. Uses the per-packet `seq`/`total` header to know when the
    /// copy ends even when tuning in mid-copy or losing packets.
    fn receive_local_index(
        &self,
        ch: &mut BroadcastChannel<'_>,
        shared: &mut NrSharedState,
        missing: &mut Vec<usize>,
    ) -> (NrIndexDecoder, Overrun) {
        let mut dec = NrIndexDecoder::new();
        let mut remaining: Option<usize> = None;
        let mut blind = 0usize;
        loop {
            if remaining == Some(0) {
                return (dec, Overrun::None);
            }
            let off = ch.offset();
            match ch.receive() {
                Received::Packet(p) => {
                    if p.kind() == PacketKind::LocalIndex {
                        if let Some(h) = parse_header(p.payload()) {
                            dec.ingest(p.payload(), shared);
                            remaining = Some((h.total as usize).saturating_sub(h.seq as usize + 1));
                            continue;
                        }
                    }
                    // Ran past the index into region data.
                    return (dec, Overrun::DataPacket(off, Some(p.payload().clone())));
                }
                Received::Lost | Received::Corrupted => {
                    match remaining.as_mut() {
                        Some(r) => *r -= 1,
                        None => {
                            // The lost packet may have been region data;
                            // schedule it for recovery (the recovery loop
                            // drops offsets that turn out to be index
                            // packets).
                            missing.push(off);
                            blind += 1;
                            if blind > 32 {
                                return (dec, Overrun::Unknown);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Loss fallback: listen packet-by-packet (ingesting any intact data
    /// records on the way) until a local-index packet starts, then receive
    /// that index.
    fn crawl_to_next_index(
        &self,
        ch: &mut BroadcastChannel<'_>,
        store: &mut ReceivedGraph,
        shared: &mut NrSharedState,
        mem: &mut MemoryMeter,
        missing: &mut Vec<usize>,
    ) -> Option<NrIndexDecoder> {
        for _ in 0..2 * ch.cycle_len().max(64) {
            let off = ch.offset();
            match ch.receive() {
                Received::Packet(p) if p.kind() == PacketKind::LocalIndex => {
                    let mut dec = NrIndexDecoder::new();
                    let mut remaining = match parse_header(p.payload()) {
                        Some(h) => {
                            dec.ingest(p.payload(), shared);
                            (h.total as usize).saturating_sub(h.seq as usize + 1)
                        }
                        None => 0,
                    };
                    while remaining > 0 {
                        if let Received::Packet(q) = ch.receive() {
                            if q.kind() == PacketKind::LocalIndex {
                                if let Some(h) = parse_header(q.payload()) {
                                    dec.ingest(q.payload(), shared);
                                    remaining =
                                        (h.total as usize).saturating_sub(h.seq as usize + 1);
                                    continue;
                                }
                            }
                            break;
                        }
                        remaining -= 1;
                    }
                    return Some(dec);
                }
                Received::Packet(p) if p.kind() == PacketKind::Data => {
                    if let Some(records) = decode_payload(p.payload()) {
                        for rec in records {
                            mem.alloc(store.ingest(rec));
                        }
                    }
                }
                Received::Lost | Received::Corrupted => missing.push(off),
                _ => {}
            }
        }
        None
    }

    /// Receives region `r`'s data given its offset entry; lost packets are
    /// appended to `missing` as absolute cycle offsets. `pre_consumed` is
    /// the offset of a data packet an index overrun already consumed (and
    /// already ingested/recorded): if it was this region's first packet,
    /// reception starts one packet later instead of wrapping a full cycle.
    ///
    /// The cross-border segment is always received; the local segment only
    /// when `include_local` (terminal regions, §4.1) — otherwise the
    /// client sleeps over it and wakes at the next local index. Either
    /// way the channel ends positioned at the local index that follows.
    #[allow(clippy::too_many_arguments)]
    fn receive_region_data(
        &self,
        ch: &mut BroadcastChannel<'_>,
        entry: &crate::nr::index::NrOffsetEntry,
        include_local: bool,
        pre_consumed: Option<usize>,
        store: &mut ReceivedGraph,
        mem: &mut MemoryMeter,
        missing: &mut Vec<usize>,
    ) {
        let len = ch.cycle_len();
        let offset = entry.data_offset as usize;
        let packets = if include_local {
            entry.data_packets()
        } else {
            entry.cross_packets as usize
        };
        let mut start = offset;
        let mut count = packets;
        if pre_consumed == Some(offset) {
            start = (offset + 1) % len;
            count = packets.saturating_sub(1);
        }
        ch.sleep_to_offset(start);
        for i in 0..count {
            match ch.receive().ok().and_then(|p| decode_payload(p.payload())) {
                Some(records) => {
                    for rec in records {
                        mem.alloc(store.ingest(rec));
                    }
                }
                None => missing.push((start + i) % len),
            }
        }
        if !include_local {
            ch.sleep_to_offset((offset + entry.data_packets()) % len);
        }
    }
}

/// Ingests (or records as missing) a data packet that an index reception
/// overran into, returning its offset for start-adjustment.
fn drain_overrun(
    overrun: &mut Overrun,
    store: &mut ReceivedGraph,
    mem: &mut MemoryMeter,
    missing: &mut Vec<usize>,
) -> Option<usize> {
    match std::mem::replace(overrun, Overrun::None) {
        Overrun::DataPacket(off, payload) => {
            match payload.and_then(|p| decode_payload(&p)) {
                Some(records) => {
                    for rec in records {
                        mem.alloc(store.ingest(rec));
                    }
                }
                None => missing.push(off),
            }
            Some(off)
        }
        _ => None,
    }
}

impl AirClient for NrClient {
    fn method_name(&self) -> &'static str {
        "NR"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }

        let n = self.summary.num_regions as RegionId;
        let mut shared = NrSharedState::default();
        let mut store = std::mem::take(&mut self.store);
        store.clear();
        let mut received = vec![false; n as usize];
        let mut missing: Vec<usize> = Vec::new();
        let mut rs_rt: Option<(RegionId, RegionId)> = None;
        let mut charged_index = false;

        // Step 1 (Algorithm 2, lines 1-7): current packet -> pointer ->
        // first local index.
        let Some(first_off) = find_next_index(ch, 10_000) else {
            return Err(QueryError::Aborted("no index on channel"));
        };
        ch.sleep_to_offset(first_off);
        let (mut current, mut overrun) = self.receive_local_index(ch, &mut shared, &mut missing);

        // First region the cell chain named (Algorithm 2's `first_region`).
        let mut chain_first: Option<RegionId> = None;
        let mut hops = 0usize;
        loop {
            hops += 1;
            if hops > 8 * n as usize + MAX_RETRY_CYCLES {
                return Err(QueryError::Aborted("NR hop budget exhausted"));
            }

            if rs_rt.is_none() {
                if let Some(splits) = shared.complete_splits() {
                    let locator = cpu.time(|| KdLocator::from_splits(splits));
                    rs_rt = Some((locator.locate(q.source_pt), locator.locate(q.target_pt)));
                    if !charged_index {
                        mem.alloc(shared.retained_bytes() + 2 * n as usize);
                        charged_index = true;
                    }
                }
            }

            // Decide the next region from this index's (Rs, Rt) cell.
            let cell = rs_rt.and_then(|(rs, rt)| current.cell(rs, rt));
            let cur_region = current.region;

            match cell {
                Some(next) if next != NO_NEXT => {
                    // Algorithm 2's stop condition: the hop chain wraps
                    // back to its first region. Stopping at *any* already
                    // received region would be wrong — a §6.2 fallback may
                    // have pre-received a region mid-chain, and breaking
                    // there would skip the needed regions after it.
                    match chain_first {
                        None => chain_first = Some(next),
                        Some(first) if first == next && received[next as usize] => break,
                        _ => {}
                    }
                    match shared.offsets.get(next as usize).copied().flatten() {
                        Some(e) => {
                            let pre =
                                drain_overrun(&mut overrun, &mut store, &mut mem, &mut missing);
                            if !received[next as usize] {
                                // §4.1 split: only terminal regions need
                                // their local segment.
                                let terminal =
                                    rs_rt.is_none_or(|(rs, rt)| next == rs || next == rt);
                                self.receive_region_data(
                                    ch,
                                    &e,
                                    terminal,
                                    pre,
                                    &mut store,
                                    &mut mem,
                                    &mut missing,
                                );
                                received[next as usize] = true;
                            } else {
                                // Already held (pre-received by a loss
                                // fallback): skip its data, wake up at the
                                // local index that follows it.
                                ch.sleep_to_offset(
                                    (e.data_offset as usize + e.data_packets()) % ch.cycle_len(),
                                );
                            }
                            // The next local index follows contiguously.
                            let (dec, ovr) =
                                self.receive_local_index(ch, &mut shared, &mut missing);
                            current = dec;
                            overrun = ovr;
                        }
                        None => {
                            // Offset entry lost: crawl to the next index,
                            // healing the table from its copy.
                            drain_overrun(&mut overrun, &mut store, &mut mem, &mut missing);
                            match self.crawl_to_next_index(
                                ch,
                                &mut store,
                                &mut shared,
                                &mut mem,
                                &mut missing,
                            ) {
                                Some(dec) => {
                                    current = dec;
                                    overrun = Overrun::None;
                                }
                                None => {
                                    return Err(QueryError::Aborted("NR crawl failed"));
                                }
                            }
                        }
                    }
                }
                _ => {
                    // Cell lost / splits incomplete / sentinel: §6.2 —
                    // receive the current index's own region anyway and
                    // continue with the following index.
                    let fallback = cur_region.and_then(|m| {
                        shared
                            .offsets
                            .get(m as usize)
                            .copied()
                            .flatten()
                            .map(|e| (m, e))
                    });
                    match fallback {
                        Some((m, e)) => {
                            let pre =
                                drain_overrun(&mut overrun, &mut store, &mut mem, &mut missing);
                            // Conservative under loss: take the local
                            // segment too (the region might be terminal).
                            self.receive_region_data(
                                ch,
                                &e,
                                true,
                                pre,
                                &mut store,
                                &mut mem,
                                &mut missing,
                            );
                            received[m as usize] = true;
                            let (dec, ovr) =
                                self.receive_local_index(ch, &mut shared, &mut missing);
                            current = dec;
                            overrun = ovr;
                        }
                        None => {
                            drain_overrun(&mut overrun, &mut store, &mut mem, &mut missing);
                            match self.crawl_to_next_index(
                                ch,
                                &mut store,
                                &mut shared,
                                &mut mem,
                                &mut missing,
                            ) {
                                Some(dec) => {
                                    current = dec;
                                    overrun = Overrun::None;
                                }
                                None => return Err(QueryError::Aborted("NR crawl failed")),
                            }
                        }
                    }
                }
            }
        }

        // §6.2: lost region-data packets are re-received in later cycles.
        let len = ch.cycle_len();
        let mut rounds = 0;
        while !missing.is_empty() {
            rounds += 1;
            if rounds > MAX_RETRY_CYCLES {
                return Err(QueryError::Aborted("NR region data never completed"));
            }
            missing.sort_by_key(|&off| (off + len - ch.offset()) % len);
            let mut still = Vec::new();
            for off in missing {
                ch.sleep_to_offset(off);
                match ch.receive() {
                    Received::Packet(p) if p.kind() == PacketKind::Data => {
                        if let Some(records) = decode_payload(p.payload()) {
                            for rec in records {
                                mem.alloc(store.ingest(rec));
                            }
                        }
                    }
                    // Turned out to be an index packet: nothing to recover.
                    Received::Packet(_) => {}
                    Received::Lost | Received::Corrupted => still.push(off),
                }
            }
            missing = still;
        }

        mem.alloc(store.num_nodes() * 24);
        let (res, settled) = cpu.time(|| store.shortest_path_with(q.source, q.target, self.queue));
        self.held = received
            .iter()
            .enumerate()
            .filter_map(|(r, &got)| got.then_some(r as u16))
            .collect();
        self.store = store;
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }

    fn export_arena(&mut self) -> Option<ClientArena> {
        Some(ClientArena {
            store: std::mem::take(&mut self.store),
            coverage: Coverage::Regions(std::mem::take(&mut self.held)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nr::server::NrServer;
    use crate::precompute::BorderPrecomputation;
    use spair_broadcast::LossModel;
    use spair_partition::KdTreePartition;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{dijkstra_distance, RoadNetwork};

    fn setup(seed: u64, regions: usize) -> (RoadNetwork, crate::nr::NrProgram) {
        let g = small_grid(12, 12, seed);
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        let program = NrServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn matches_dijkstra_on_many_queries() {
        let (g, program) = setup(21, 8);
        let mut client = NrClient::new(program.summary());
        for (i, &(s, t)) in [(0u32, 143u32), (5, 77), (130, 2), (60, 61), (1, 0)]
            .iter()
            .enumerate()
        {
            let mut ch = BroadcastChannel::tune_in(program.cycle(), i * 53, LossModel::Lossless);
            let q = Query::for_nodes(&g, s, t);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t), "{s}->{t}");
            assert_eq!(out.path.first(), Some(&s));
            assert_eq!(out.path.last(), Some(&t));
        }
    }

    #[test]
    fn tunes_fewer_packets_than_eb_on_short_paths() {
        let g = small_grid(14, 14, 31);
        let part = KdTreePartition::build(&g, 16);
        let pre = BorderPrecomputation::run(&g, &part);
        let nr_program = NrServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        let eb_program = crate::eb::EbServer::new(&g, &part, &pre)
            .build_program()
            .expect("encode");
        let q = Query::for_nodes(&g, 0, 17);
        let mut nr = NrClient::new(nr_program.summary());
        let mut eb = crate::eb::EbClient::new(eb_program.summary());
        let mut ch_nr = BroadcastChannel::lossless(nr_program.cycle());
        let mut ch_eb = BroadcastChannel::lossless(eb_program.cycle());
        let a = nr.query(&mut ch_nr, &q).unwrap();
        let b = eb.query(&mut ch_eb, &q).unwrap();
        assert_eq!(a.distance, b.distance);
        assert!(
            a.stats.tuning_packets <= b.stats.tuning_packets + 40,
            "NR {} vs EB {}",
            a.stats.tuning_packets,
            b.stats.tuning_packets
        );
    }

    #[test]
    fn latency_within_two_cycles_lossless() {
        let (g, program) = setup(5, 8);
        let mut client = NrClient::new(program.summary());
        let mut ch = BroadcastChannel::tune_in(program.cycle(), 311, LossModel::Lossless);
        let q = Query::for_nodes(&g, 7, 140);
        let out = client.query(&mut ch, &q).unwrap();
        assert!(
            (out.stats.latency_packets as usize) <= 2 * program.cycle().len(),
            "latency {} vs cycle {}",
            out.stats.latency_packets,
            program.cycle().len()
        );
    }

    #[test]
    fn correct_under_packet_loss() {
        let (g, program) = setup(7, 8);
        let mut client = NrClient::new(program.summary());
        for seed in 0..6 {
            let mut ch = BroadcastChannel::tune_in(
                program.cycle(),
                29 * seed as usize,
                LossModel::bernoulli(0.05, seed),
            );
            let q = Query::for_nodes(&g, 3, 137);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(
                Some(out.distance),
                dijkstra_distance(&g, 3, 137),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn correct_under_heavy_loss() {
        let (g, program) = setup(17, 4);
        let mut client = NrClient::new(program.summary());
        let q = Query::for_nodes(&g, 10, 120);
        for seed in 0..4 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 0, LossModel::bernoulli(0.10, seed));
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, 10, 120));
        }
    }

    #[test]
    fn trivial_same_node_query() {
        let (g, program) = setup(2, 8);
        let mut client = NrClient::new(program.summary());
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let q = Query::for_nodes(&g, 9, 9);
        let out = client.query(&mut ch, &q).unwrap();
        assert_eq!(out.distance, 0);
    }

    #[test]
    fn every_tune_in_offset_works() {
        let (g, program) = setup(9, 8);
        let mut client = NrClient::new(program.summary());
        let q = Query::for_nodes(&g, 20, 100);
        let want = dijkstra_distance(&g, 20, 100);
        let len = program.cycle().len();
        for k in 0..12 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), k * len / 12, LossModel::Lossless);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), want, "offset {}", k * len / 12);
        }
    }
}
