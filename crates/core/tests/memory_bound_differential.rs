//! Differential certification of the flattened slot-arena
//! [`MemoryBoundProcessor`] against the original HashMap-per-node
//! contractor, reimplemented here verbatim as the test oracle.
//!
//! The rewrite claims: identical distances for every query and queue
//! policy (the super-edge *set* is unchanged; only the emission order
//! became deterministic), identical memory charges at every step (the
//! §6.1 saving is the observable being measured, so the accounting must
//! not drift), and valid full-node expansion paths in `keep_paths` mode.
//! Checked on kd-partitioned grid worlds, on zero-weight-tie lattices,
//! and on spill-range node ids beyond the direct-index table cap.

use proptest::prelude::*;
use spair_broadcast::{CpuMeter, MemoryMeter};
use spair_core::netcodec::{decode_payload, encode_nodes_with_borders, NodeRecord, ReceivedGraph};
use spair_core::precompute::BorderPrecomputation;
use spair_core::query::decoded_node_bytes;
use spair_core::MemoryBoundProcessor;
use spair_partition::{KdTreePartition, Partitioning};
use spair_roadnet::bucket_queue::AUTO_BUCKET_MAX_WEIGHT;
use spair_roadnet::generators::small_grid;
use spair_roadnet::{
    BucketQueue, DijkstraQueue, Distance, MinHeap, NodeId, Point, QueuePolicy, RoadNetwork, Weight,
};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------
// The pre-arena contractor, copied from the original implementation:
// HashMap adjacency for G', HashSet region membership, map-backed
// Dijkstras. This is the behavioral oracle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum GEdge {
    Raw(Weight),
    Super(Distance, usize),
}

#[derive(Debug, Default)]
struct LegacyProcessor {
    gprime: HashMap<NodeId, Vec<(NodeId, GEdge)>>,
    paths: Vec<Vec<NodeId>>,
    keep_paths: bool,
    queue: QueuePolicy,
    max_cost: Distance,
    mem: MemoryMeter,
    cpu: CpuMeter,
}

impl LegacyProcessor {
    fn with_paths() -> Self {
        Self {
            keep_paths: true,
            ..Self::default()
        }
    }

    fn with_queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    fn add_region(&mut self, store: &ReceivedGraph, region_nodes: &[NodeId], terminals: &[NodeId]) {
        let raw_bytes: usize = region_nodes
            .iter()
            .map(|&v| decoded_node_bytes(store.out_edges(v).len()))
            .sum();
        self.mem.alloc(raw_bytes);

        let inside: HashSet<NodeId> = region_nodes.iter().copied().collect();
        let mut anchors: Vec<NodeId> = region_nodes
            .iter()
            .copied()
            .filter(|&v| store.is_border(v).unwrap_or(false))
            .collect();
        for &t in terminals {
            if inside.contains(&t) && !anchors.contains(&t) {
                anchors.push(t);
            }
        }

        let anchor_set: HashSet<NodeId> = anchors.iter().copied().collect();
        let mut new_edges: Vec<(NodeId, NodeId, GEdge)> = Vec::new();
        let mut path_bytes = 0usize;
        let keep_paths = self.keep_paths;
        self.cpu.time(|| {
            for &a in &anchors {
                path_bytes += legacy_contract_from(
                    store,
                    a,
                    &inside,
                    &anchor_set,
                    keep_paths,
                    &mut self.paths,
                    &mut new_edges,
                );
            }
            for &v in &anchors {
                for &(u, w) in store.out_edges(v) {
                    if !inside.contains(&u) {
                        new_edges.push((v, u, GEdge::Raw(w)));
                    }
                }
            }
        });
        self.mem.alloc(path_bytes + new_edges.len() * 16);
        for (from, to, e) in new_edges {
            self.max_cost = self.max_cost.max(match &e {
                GEdge::Raw(w) => *w as Distance,
                GEdge::Super(d, _) => *d,
            });
            self.gprime.entry(from).or_default().push((to, e));
        }
        self.mem.free(raw_bytes);
    }

    fn shortest_path(&mut self, source: NodeId, target: NodeId) -> Option<(Distance, Vec<NodeId>)> {
        let bucket_ok = self.max_cost <= AUTO_BUCKET_MAX_WEIGHT as Distance;
        let resolved = if bucket_ok {
            let expected = Some(self.gprime.len().div_ceil(2));
            self.queue.resolve_for(self.max_cost as Weight, expected)
        } else {
            QueuePolicy::Heap
        };
        let (dist, parent) = match resolved {
            QueuePolicy::Bucket => self.gprime_search(
                source,
                target,
                &mut BucketQueue::new(self.max_cost as Weight),
            ),
            _ => self.gprime_search(source, target, &mut MinHeap::new()),
        };
        let d = *dist.get(&target)?;
        let mut path = vec![target];
        let mut cur = target;
        while cur != source {
            let &(p, pidx) = parent.get(&cur)?;
            match pidx {
                None | Some(usize::MAX) => path.push(p),
                Some(i) => {
                    let sp = &self.paths[i];
                    for &node in sp.iter().rev().skip(1) {
                        path.push(node);
                    }
                }
            }
            cur = p;
        }
        path.reverse();
        Some((d, path))
    }

    #[allow(clippy::type_complexity)]
    fn gprime_search<Q: DijkstraQueue>(
        &mut self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (
        HashMap<NodeId, Distance>,
        HashMap<NodeId, (NodeId, Option<usize>)>,
    ) {
        let gprime = std::mem::take(&mut self.gprime);
        let result = self.cpu.time(|| {
            let mut dist: HashMap<NodeId, Distance> = HashMap::new();
            let mut parent: HashMap<NodeId, (NodeId, Option<usize>)> = HashMap::new();
            dist.insert(source, 0);
            queue.push(0, source);
            while let Some((key, v)) = queue.pop() {
                if dist.get(&v) != Some(&key) {
                    continue;
                }
                if v == target {
                    break;
                }
                for (u, edge) in gprime.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                    let (cost, pidx) = match edge {
                        GEdge::Raw(w) => (*w as Distance, None),
                        GEdge::Super(d, i) => (*d, Some(*i)),
                    };
                    let cand = key + cost;
                    if dist.get(u).is_none_or(|&d| cand < d) {
                        dist.insert(*u, cand);
                        parent.insert(*u, (v, pidx));
                        queue.push(cand, *u);
                    }
                }
            }
            (dist, parent)
        });
        self.gprime = gprime;
        result
    }
}

fn legacy_contract_from(
    store: &ReceivedGraph,
    a: NodeId,
    inside: &HashSet<NodeId>,
    anchors: &HashSet<NodeId>,
    keep_paths: bool,
    paths: &mut Vec<Vec<NodeId>>,
    out: &mut Vec<(NodeId, NodeId, GEdge)>,
) -> usize {
    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = MinHeap::new();
    dist.insert(a, 0);
    heap.push(0, a);
    while let Some(e) = heap.pop() {
        let v = e.item;
        if dist.get(&v) != Some(&e.key) {
            continue;
        }
        for &(u, w) in store.out_edges(v) {
            if !inside.contains(&u) {
                continue;
            }
            let cand = e.key + w as Distance;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                parent.insert(u, v);
                heap.push(cand, u);
            }
        }
    }
    let mut bytes = 0usize;
    for (&b, &d) in &dist {
        if b == a || !anchors.contains(&b) {
            continue;
        }
        let idx = if keep_paths {
            let mut path = vec![b];
            let mut cur = b;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            bytes += 4 * path.len();
            paths.push(path);
            paths.len() - 1
        } else {
            usize::MAX
        };
        out.push((a, b, GEdge::Super(d, idx)));
    }
    bytes
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Builds a ReceivedGraph holding the whole network with true border
/// flags, plus the per-region node lists, with every node id shifted by
/// `id_shift` (0 = dense ids; `1 << 23` exercises the spill map).
fn received_world(
    g: &RoadNetwork,
    regions: usize,
    id_shift: u32,
) -> (ReceivedGraph, Vec<Vec<NodeId>>) {
    let part = KdTreePartition::build(g, regions);
    let pre = BorderPrecomputation::run(g, &part);
    let mut store = ReceivedGraph::new();
    let mut region_nodes = Vec::new();
    for r in 0..regions {
        let nodes = &part.nodes_by_region()[r];
        for payload in encode_nodes_with_borders(g, nodes, |v| pre.borders().is_border(v)) {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(NodeRecord {
                    id: rec.id + id_shift,
                    edges: rec.edges.iter().map(|&(u, w)| (u + id_shift, w)).collect(),
                    ..rec
                });
            }
        }
        region_nodes.push(nodes.iter().map(|&v| v + id_shift).collect::<Vec<NodeId>>());
    }
    (store, region_nodes)
}

/// Asserts `path` is a real walk from `s` to `t` in `store` whose
/// minimum-weight hop sum equals `d` — which pins it as a shortest path
/// (the min-weight sum can never be below the true distance, nor above
/// the cost of the walk itself).
fn assert_valid_shortest_walk(
    store: &ReceivedGraph,
    s: NodeId,
    t: NodeId,
    d: Distance,
    path: &[NodeId],
) {
    assert_eq!(path.first(), Some(&s));
    assert_eq!(path.last(), Some(&t));
    let mut total: Distance = 0;
    for hop in path.windows(2) {
        let w = store
            .out_edges(hop[0])
            .iter()
            .filter(|&&(u, _)| u == hop[1])
            .map(|&(_, w)| w)
            .min()
            .unwrap_or_else(|| panic!("missing edge {} -> {}", hop[0], hop[1]));
        total += w as Distance;
    }
    assert_eq!(total, d, "walk cost");
}

const POLICIES: [QueuePolicy; 3] = [QueuePolicy::Auto, QueuePolicy::Heap, QueuePolicy::Bucket];

/// Feeds the same region stream to the oracle and the flat processor,
/// checking memory charges after every region and distances (plus
/// expansion-path validity in `keep_paths` mode) for the `(s, t)` query.
fn run_differential(store: &ReceivedGraph, region_nodes: &[Vec<NodeId>], s: NodeId, t: NodeId) {
    for policy in POLICIES {
        for keep_paths in [false, true] {
            let mut legacy = if keep_paths {
                LegacyProcessor::with_paths()
            } else {
                LegacyProcessor::default()
            }
            .with_queue_policy(policy);
            let mut flat = if keep_paths {
                MemoryBoundProcessor::with_paths()
            } else {
                MemoryBoundProcessor::new()
            }
            .with_queue_policy(policy);
            for nodes in region_nodes {
                legacy.add_region(store, nodes, &[s, t]);
                flat.add_region(store, nodes, &[s, t]);
                assert_eq!(
                    legacy.mem.current(),
                    flat.mem.current(),
                    "retained bytes after a region ({policy:?}, keep_paths={keep_paths})"
                );
                assert_eq!(
                    legacy.mem.peak(),
                    flat.mem.peak(),
                    "peak bytes after a region ({policy:?}, keep_paths={keep_paths})"
                );
            }
            let want = legacy.shortest_path(s, t);
            let got = flat.shortest_path(s, t);
            assert_eq!(
                want.as_ref().map(|(d, _)| *d),
                got.as_ref().map(|(d, _)| *d),
                "distance {s}->{t} ({policy:?}, keep_paths={keep_paths})"
            );
            if keep_paths {
                // Hash-ordered legacy emission and ascending flat emission
                // may pick different — equally short — expansions under
                // ties, so pin each path to validity, not to the other.
                if let Some((d, path)) = &want {
                    assert_valid_shortest_walk(store, s, t, *d, path);
                }
                if let Some((d, path)) = &got {
                    assert_valid_shortest_walk(store, s, t, *d, path);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kd-partitioned grid worlds, dense ids.
    #[test]
    fn kd_region_worlds_match_legacy(seed in 0u64..500, regions_log2 in 1u32..4) {
        let g = small_grid(7, 7, seed);
        let (store, region_nodes) = received_world(&g, 1 << regions_log2, 0);
        let n = g.num_nodes() as u32;
        run_differential(&store, &region_nodes, 0, n - 1);
        run_differential(&store, &region_nodes, n / 3, n / 2);
    }

    /// Same worlds with every id shifted beyond the direct-index table
    /// cap: the spill map must behave identically to dense ids.
    #[test]
    fn spill_range_ids_match_legacy(seed in 0u64..200) {
        const SPILL_BASE: u32 = 1 << 23;
        let g = small_grid(6, 6, seed);
        let (store, region_nodes) = received_world(&g, 4, SPILL_BASE);
        let n = g.num_nodes() as u32;
        run_differential(&store, &region_nodes, SPILL_BASE, SPILL_BASE + n - 1);
    }
}

/// A lattice where most edges weigh zero: the G' search and every
/// region-restricted contraction are tie-saturated.
#[test]
fn zero_weight_ties_match_legacy() {
    let k = 8usize;
    let mut points = Vec::with_capacity(k * k);
    for y in 0..k {
        for x in 0..k {
            points.push(Point::new(x as f64, y as f64));
        }
    }
    let mut offsets = vec![0u32];
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for y in 0..k {
        for x in 0..k {
            let v = (y * k + x) as NodeId;
            let mut push = |u: NodeId| {
                targets.push(u);
                weights.push(if (v as usize + targets.len()).is_multiple_of(3) {
                    1
                } else {
                    0
                });
            };
            if x + 1 < k {
                push(v + 1);
            }
            if x > 0 {
                push(v - 1);
            }
            if y + 1 < k {
                push(v + k as NodeId);
            }
            if y > 0 {
                push(v - k as NodeId);
            }
            offsets.push(targets.len() as u32);
        }
    }
    let g = RoadNetwork::from_csr(points, offsets, targets, weights);
    let (store, region_nodes) = received_world(&g, 4, 0);
    let n = g.num_nodes() as u32;
    run_differential(&store, &region_nodes, 0, n - 1);
    run_differential(&store, &region_nodes, 9, 54);
}
