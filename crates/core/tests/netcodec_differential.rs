//! Differential certification of the flat slot-arena [`ReceivedGraph`]
//! against the original HashMap-per-node store, reimplemented here
//! verbatim as the test oracle.
//!
//! The CSR rewrite claims byte-identical observable behavior: same
//! per-ingest memory charges, same accessor results, same search results
//! — distances, **paths** (which pin the settle order through zero-weight
//! and equal-key ties) and settled-node counts — under every
//! [`QueuePolicy`]. These tests check that claim on random record
//! streams (dense and spill-range ids, duplicate chunks, zero weights),
//! on encoded payload streams from grid and germany-class preset
//! networks, and on the fused [`ReceivedGraph::ingest_payload`] path
//! against decode-then-ingest.

use proptest::prelude::*;
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::{BroadcastChannel, LossModel};
use spair_core::netcodec::{decode_payload, encode_nodes, NodeRecord, ReceivedGraph};
use spair_core::patch::{
    build_patch_cycle, decode_patch_payload, dir_packet_count, receive_patch, Coverage,
    PatchDecoder, PatchError, WeightDelta,
};
use spair_core::query::decoded_node_bytes;
use spair_roadnet::generators::{small_grid, NetworkPreset};
use spair_roadnet::{
    BucketQueue, DijkstraQueue, MinHeap, NodeId, Point, QueuePolicy, RoadNetwork, Weight,
};
use std::collections::HashMap;

/// The pre-CSR store, copied from the original implementation: one
/// `HashMap` entry per received node, per-node edge `Vec`s, and a
/// map-backed Dijkstra. This is the behavioral oracle.
type LegacyNode = (Point, bool, Vec<(NodeId, Weight)>);

#[derive(Default)]
struct LegacyStore {
    nodes: HashMap<NodeId, LegacyNode>,
    max_weight: Weight,
}

impl LegacyStore {
    fn ingest(&mut self, rec: NodeRecord) -> usize {
        let entry = self
            .nodes
            .entry(rec.id)
            .or_insert_with(|| (rec.point, rec.border, Vec::new()));
        entry.1 |= rec.border;
        let added = rec.edges.len();
        for &(_, w) in &rec.edges {
            self.max_weight = self.max_weight.max(w);
        }
        entry.2.extend(rec.edges);
        let fresh_node = if entry.2.len() == added {
            decoded_node_bytes(0)
        } else {
            0
        };
        fresh_node + added * 8
    }

    fn out_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        self.nodes
            .get(&v)
            .map(|(_, _, e)| e.as_slice())
            .unwrap_or(&[])
    }

    fn retained_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|(_, _, e)| decoded_node_bytes(0) + e.len() * 8)
            .sum()
    }

    fn discard(&mut self, v: NodeId) -> usize {
        match self.nodes.remove(&v) {
            Some((_, _, e)) => decoded_node_bytes(0) + e.len() * 8,
            None => 0,
        }
    }

    fn shortest_path_with(
        &self,
        source: NodeId,
        target: NodeId,
        queue: QueuePolicy,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let expected = Some(self.nodes.len().div_ceil(2));
        match queue.resolve_for(self.max_weight, expected) {
            QueuePolicy::Bucket => {
                self.search(source, target, &mut BucketQueue::new(self.max_weight))
            }
            _ => self.search(source, target, &mut MinHeap::new()),
        }
    }

    fn search<Q: DijkstraQueue>(
        &self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut settled = 0usize;
        dist.insert(source, 0);
        queue.push(0, source);
        while let Some((key, v)) = queue.pop() {
            if dist.get(&v) != Some(&key) {
                continue;
            }
            settled += 1;
            if v == target {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return (Some((key, path)), settled);
            }
            for &(u, w) in self.out_edges(v) {
                let cand = key + w as u64;
                if dist.get(&u).is_none_or(|&d| cand < d) {
                    dist.insert(u, cand);
                    parent.insert(u, v);
                    queue.push(cand, u);
                }
            }
        }
        (None, settled)
    }
}

const POLICIES: [QueuePolicy; 3] = [QueuePolicy::Auto, QueuePolicy::Heap, QueuePolicy::Bucket];

/// Asserts every observable accessor of the new store matches the oracle.
fn assert_state_matches(legacy: &LegacyStore, new: &ReceivedGraph) {
    assert_eq!(legacy.nodes.len(), new.num_nodes(), "num_nodes");
    assert_eq!(legacy.max_weight, new.max_weight(), "max_weight");
    assert_eq!(legacy.retained_bytes(), new.retained_bytes(), "retained");
    let mut legacy_ids: Vec<NodeId> = legacy.nodes.keys().copied().collect();
    legacy_ids.sort_unstable();
    let mut new_ids: Vec<NodeId> = new.node_ids().collect();
    new_ids.sort_unstable();
    assert_eq!(legacy_ids, new_ids, "node id set");
    for &v in &legacy_ids {
        assert!(new.contains(v));
        let (p, b, e) = &legacy.nodes[&v];
        assert_eq!(new.point(v), Some(*p), "point of {v}");
        assert_eq!(new.is_border(v), Some(*b), "border of {v}");
        assert_eq!(new.out_edges(v), e.as_slice(), "edges of {v}");
    }
}

/// Asserts search equality for every policy and (source, target) pair —
/// distance, full path (the settle-order witness) and settled count.
fn assert_searches_match(legacy: &LegacyStore, new: &mut ReceivedGraph, pairs: &[(u32, u32)]) {
    for &(s, t) in pairs {
        for policy in POLICIES {
            let want = legacy.shortest_path_with(s, t, policy);
            let got = new.shortest_path_with(s, t, policy);
            assert_eq!(want, got, "search {s}->{t} under {policy:?}");
        }
    }
}

/// One proptest-generated record: `(id, point, border, edges)`.
type RawRecord = (u32, (f32, f32), bool, Vec<(u32, u32)>);

fn to_record(raw: &RawRecord) -> NodeRecord {
    NodeRecord {
        id: raw.0,
        point: Point::new(raw.1 .0 as f64, raw.1 .1 as f64),
        more: false,
        border: raw.2,
        edges: raw
            .3
            .iter()
            .map(|&(t, w)| (t as NodeId, w as Weight))
            .collect(),
    }
}

/// Record streams over a dense id range, with duplicate chunks (the same
/// node arriving more than once models §6.2 re-reception) and weights
/// down to zero (tie-heavy searches).
fn record_stream(max_id: u32, max_weight: u32) -> impl Strategy<Value = Vec<RawRecord>> {
    let record = (
        0..max_id,
        (-100.0f32..100.0, -100.0f32..100.0),
        any::<bool>(),
        proptest::collection::vec((0..max_id, 0..=max_weight), 0..6),
    );
    proptest::collection::vec(record, 1..40)
}

fn run_differential(records: &[RawRecord], pairs: &[(u32, u32)]) {
    let mut legacy = LegacyStore::default();
    let mut new = ReceivedGraph::new();
    for raw in records {
        let rec = to_record(raw);
        assert_eq!(
            legacy.ingest(rec.clone()),
            new.ingest(rec),
            "ingest charge for node {}",
            raw.0
        );
    }
    assert_state_matches(&legacy, &new);
    assert_searches_match(&legacy, &mut new, pairs);
    // Discards must release identical charges and leave identical state.
    for &(v, _) in pairs.iter().take(2) {
        assert_eq!(legacy.discard(v), new.discard(v), "discard charge of {v}");
    }
    assert_state_matches(&legacy, &new);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense-id record streams: charges, accessors, searches, discards.
    #[test]
    fn dense_record_streams_match_legacy(records in record_stream(24, 50)) {
        let pairs: Vec<(u32, u32)> = vec![(0, 23), (5, 12), (7, 7), (3, 22)];
        run_differential(&records, &pairs);
    }

    /// Zero-weight-heavy streams: equal keys everywhere, so paths and
    /// settle counts pin the queues' tie-breaking exactly.
    #[test]
    fn zero_weight_ties_match_legacy(records in record_stream(12, 1)) {
        let pairs: Vec<(u32, u32)> = vec![(0, 11), (4, 9), (1, 10)];
        run_differential(&records, &pairs);
    }

    /// Spill-range ids (beyond the direct-index table cap) must behave
    /// identically to dense ids.
    #[test]
    fn spill_range_ids_match_legacy(records in record_stream(16, 20)) {
        const SPILL_BASE: u32 = 1 << 23;
        let shifted: Vec<RawRecord> = records
            .iter()
            .map(|(id, p, b, e)| {
                (
                    id + SPILL_BASE,
                    *p,
                    *b,
                    e.iter().map(|&(t, w)| (t + SPILL_BASE, w)).collect(),
                )
            })
            .collect();
        let pairs: Vec<(u32, u32)> =
            vec![(SPILL_BASE, SPILL_BASE + 15), (SPILL_BASE + 3, SPILL_BASE + 9)];
        run_differential(&shifted, &pairs);
    }
}

/// Feeds a network's encoded payloads to (a) the oracle via
/// decode-then-ingest and (b) the new store via the fused
/// [`ReceivedGraph::ingest_payload`], then cross-checks state, charges
/// and searches.
fn run_payload_differential(g: &RoadNetwork, pairs: &[(u32, u32)]) {
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let mut legacy = LegacyStore::default();
    let mut fused = ReceivedGraph::new();
    let mut stepwise = ReceivedGraph::new();
    for payload in encode_nodes(g, &nodes) {
        let mut legacy_charge = 0;
        let mut stepwise_charge = 0;
        for rec in decode_payload(&payload).expect("well-formed payload") {
            legacy_charge += legacy.ingest(rec.clone());
            stepwise_charge += stepwise.ingest(rec);
        }
        let fused_charge = fused.ingest_payload(&payload).expect("well-formed payload");
        assert_eq!(legacy_charge, fused_charge, "per-payload charge");
        assert_eq!(stepwise_charge, fused_charge, "fused == decode+ingest");
    }
    assert_state_matches(&legacy, &fused);
    assert_state_matches(&legacy, &stepwise);
    assert_searches_match(&legacy, &mut fused, pairs);
    assert_searches_match(&legacy, &mut stepwise, pairs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Grid-preset networks through the real encode → payload path.
    #[test]
    fn grid_preset_payload_streams_match_legacy(seed in 0u64..500) {
        let g = small_grid(9, 9, seed);
        let n = g.num_nodes() as u32;
        run_payload_differential(&g, &[(0, n - 1), (n / 3, n / 2)]);
    }

    /// Germany-class topology (the load harness's paper-scale class) at
    /// test-tractable size, same differential.
    #[test]
    fn germany_class_payload_streams_match_legacy(seed in 0u64..500) {
        let g = NetworkPreset::Germany.config_for_nodes(seed, 320).generate();
        let n = g.num_nodes() as u32;
        run_payload_differential(&g, &[(0, n - 1), (n / 4, 3 * n / 4)]);
    }
}

/// Rebuilds a full-coverage store from every encoded payload of `g`.
fn full_store(g: &RoadNetwork) -> ReceivedGraph {
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let mut store = ReceivedGraph::new();
    for p in encode_nodes(g, &nodes) {
        store.ingest_payload(&p).expect("well-formed payload");
    }
    store
}

/// Snapshot of every observable edge in a store, for unchanged-state
/// assertions.
fn edge_snapshot(store: &ReceivedGraph) -> Vec<(NodeId, Vec<(NodeId, Weight)>)> {
    let mut ids: Vec<NodeId> = store.node_ids().collect();
    ids.sort_unstable();
    ids.into_iter()
        .map(|v| (v, store.out_edges(v).to_vec()))
        .collect()
}

/// One proptest-generated patch: distinct regions, each with a non-empty
/// delta list.
fn patch_groups() -> impl Strategy<Value = Vec<(u16, Vec<WeightDelta>)>> {
    let delta = (0u32..50, 0u32..50, 1u32..10_000).prop_map(|(from, to, weight)| WeightDelta {
        from,
        to,
        weight,
    });
    proptest::collection::vec((0u16..40, proptest::collection::vec(delta, 1..8)), 0..12).prop_map(
        |pairs| {
            // Last write per region wins: the builder expects distinct
            // region keys.
            let dedup: std::collections::BTreeMap<u16, Vec<WeightDelta>> =
                pairs.into_iter().collect();
            dedup.into_iter().collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Patch-packet codec round trip: every region group sent through
    /// `build_patch_cycle` decodes — directory packets in any order,
    /// then per-region data segments — to exactly the input deltas and
    /// version stamps.
    #[test]
    fn patch_cycle_round_trips(groups in patch_groups(), base in 0u32..1000) {
        let version = base + 1;
        let cycle = build_patch_cycle(version, base, &groups);
        let dir = cycle.find_segment(SegmentKind::PatchIndex).expect("directory");
        prop_assert_eq!(dir.len, dir_packet_count(groups.len()));
        let mut dec = PatchDecoder::new();
        for i in (0..dir.len).rev() {
            dec.ingest_directory_payload(cycle.packet(dir.start + i).payload())
                .expect("consistent directory");
        }
        prop_assert!(dec.is_complete());
        let h = dec.header().expect("complete directory has a header");
        prop_assert_eq!(
            (h.version, h.base_version, h.region_count as usize),
            (version, base, groups.len())
        );
        prop_assert_eq!(dec.regions().len(), groups.len());
        for (r, deltas) in &groups {
            let entry = dec.regions().get(r).expect("listed region");
            prop_assert_eq!(entry.entries as usize, deltas.len());
            let seg = cycle
                .find_segment(SegmentKind::PatchData(*r))
                .expect("data segment");
            let mut got = Vec::new();
            for p in 0..seg.len {
                got.extend(
                    decode_patch_payload(cycle.packet(seg.start + p).payload())
                        .expect("well-formed patch payload"),
                );
            }
            prop_assert_eq!(&got, deltas);
        }
    }
}

/// Per-version perturbation: for each edge index selected, the new
/// weight. Applied modulo the graph's edge count.
type RawChain = Vec<Vec<(usize, u32)>>;

fn version_chain() -> impl Strategy<Value = RawChain> {
    let step = proptest::collection::vec((0usize..4096, 1u32..5_000), 0..30);
    proptest::collection::vec(step, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A full-coverage arena patched through an arbitrary chain of
    /// versions must equal a `ReceivedGraph` rebuilt from scratch off
    /// the final-version network — node set, points, borders, every
    /// adjacency list, and searches under each explicit queue policy.
    #[test]
    fn patched_arena_equals_rebuilt_store(seed in 0u64..500, chain in version_chain(), offset in 0usize..64) {
        let g = small_grid(7, 7, seed);
        let mut patched = full_store(&g);
        // CSR-ordered edge list doubles as the weights model.
        let mut edges: Vec<(NodeId, NodeId, Weight)> = g
            .node_ids()
            .flat_map(|v| g.out_edges(v).map(move |(u, w)| (v, u, w)))
            .collect();
        for (step, touched) in chain.iter().enumerate() {
            let version = step as u32 + 1;
            let mut groups: std::collections::BTreeMap<u16, Vec<WeightDelta>> =
                std::collections::BTreeMap::new();
            let edge_count = edges.len();
            for &(idx, weight) in touched {
                let e = &mut edges[idx % edge_count];
                e.2 = weight;
                groups.entry((e.0 % 3) as u16).or_default().push(WeightDelta {
                    from: e.0,
                    to: e.1,
                    weight,
                });
            }
            let groups: Vec<(u16, Vec<WeightDelta>)> = groups.into_iter().collect();
            let cycle = build_patch_cycle(version, version - 1, &groups);
            let mut ch =
                BroadcastChannel::tune_in(&cycle, offset % cycle.len(), LossModel::Lossless);
            let rep = receive_patch(&mut ch, version - 1, &Coverage::Whole, &mut patched)
                .expect("lossless whole-coverage patch applies");
            prop_assert_eq!(rep.version, version);
            prop_assert_eq!(rep.skipped_not_held, 0);
        }
        // Rebuild from scratch off the final network.
        let final_net = {
            let mut offsets = vec![0u32];
            let mut targets = Vec::new();
            let mut weights = Vec::new();
            let mut it = edges.iter().peekable();
            for v in g.node_ids() {
                while let Some(&&(from, to, w)) = it.peek() {
                    if from != v {
                        break;
                    }
                    targets.push(to);
                    weights.push(w);
                    it.next();
                }
                offsets.push(targets.len() as u32);
            }
            RoadNetwork::from_csr(g.points().to_vec(), offsets, targets, weights)
        };
        let mut rebuilt = full_store(&final_net);
        prop_assert_eq!(edge_snapshot(&patched), edge_snapshot(&rebuilt));
        for v in g.node_ids() {
            prop_assert_eq!(patched.point(v), rebuilt.point(v));
            prop_assert_eq!(patched.is_border(v), rebuilt.is_border(v));
        }
        // Explicit policies only: the stores may disagree on max_weight
        // (patching never lowers the running maximum), which Auto uses
        // to pick a queue — results must match under a pinned queue.
        let n = g.num_nodes() as u32;
        for (s, t) in [(0, n - 1), (n / 3, n / 2)] {
            for policy in [QueuePolicy::Heap, QueuePolicy::Bucket] {
                prop_assert_eq!(
                    patched.shortest_path_with(s, t, policy),
                    rebuilt.shortest_path_with(s, t, policy),
                    "search {}->{} under {:?}", s, t, policy
                );
            }
        }
    }

    /// Version monotonicity: a patch whose base version is not exactly
    /// the arena's version — behind it, ahead of it, or equal to its
    /// future target — must be refused with a typed `Stale` error and
    /// leave the arena byte-identical. A stale patch never silently
    /// applies.
    #[test]
    fn stale_patch_never_silently_applies(seed in 0u64..500, have in 0u32..50, base in 0u32..50) {
        prop_assume!(have != base);
        let g = small_grid(6, 6, seed);
        let mut store = full_store(&g);
        let before = edge_snapshot(&store);
        let (from, to, _) = {
            let v = g.node_ids().next().unwrap();
            let (u, w) = g.out_edges(v).next().unwrap();
            (v, u, w)
        };
        let cycle = build_patch_cycle(
            base + 1,
            base,
            &[(0, vec![WeightDelta { from, to, weight: 77_777 }])],
        );
        let mut ch = BroadcastChannel::tune_in(&cycle, 0, LossModel::Lossless);
        match receive_patch(&mut ch, have, &Coverage::Whole, &mut store) {
            Err(PatchError::Stale { have: h, base: b }) => {
                prop_assert_eq!((h, b), (have, base));
            }
            other => prop_assert!(false, "expected Stale, got {:?}", other),
        }
        prop_assert_eq!(edge_snapshot(&store), before, "arena untouched");
    }
}

#[test]
fn malformed_payload_is_all_or_nothing() {
    let g = small_grid(6, 6, 3);
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let payloads = encode_nodes(&g, &nodes);
    let mut store = ReceivedGraph::new();
    let charged = store.ingest_payload(&payloads[0]).expect("well-formed");
    assert!(charged > 0);
    let before_nodes: Vec<NodeId> = {
        let mut ids: Vec<NodeId> = store.node_ids().collect();
        ids.sort_unstable();
        ids
    };
    let before_bytes = store.retained_bytes();
    // Truncating mid-record makes the payload malformed; like
    // decode_payload, the fused path must reject it without any partial
    // mutation or charge.
    let cut = payloads[1].clone();
    let truncated = &cut[..cut.len() - 3];
    assert_eq!(decode_payload(truncated), None, "oracle rejects");
    assert_eq!(store.ingest_payload(truncated), None, "fused rejects");
    let mut after_nodes: Vec<NodeId> = store.node_ids().collect();
    after_nodes.sort_unstable();
    assert_eq!(before_nodes, after_nodes, "no partial node ingest");
    assert_eq!(before_bytes, store.retained_bytes(), "no partial charge");
}
