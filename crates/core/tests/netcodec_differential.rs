//! Differential certification of the flat slot-arena [`ReceivedGraph`]
//! against the original HashMap-per-node store, reimplemented here
//! verbatim as the test oracle.
//!
//! The CSR rewrite claims byte-identical observable behavior: same
//! per-ingest memory charges, same accessor results, same search results
//! — distances, **paths** (which pin the settle order through zero-weight
//! and equal-key ties) and settled-node counts — under every
//! [`QueuePolicy`]. These tests check that claim on random record
//! streams (dense and spill-range ids, duplicate chunks, zero weights),
//! on encoded payload streams from grid and germany-class preset
//! networks, and on the fused [`ReceivedGraph::ingest_payload`] path
//! against decode-then-ingest.

use proptest::prelude::*;
use spair_core::netcodec::{decode_payload, encode_nodes, NodeRecord, ReceivedGraph};
use spair_core::query::decoded_node_bytes;
use spair_roadnet::generators::{small_grid, NetworkPreset};
use spair_roadnet::{
    BucketQueue, DijkstraQueue, MinHeap, NodeId, Point, QueuePolicy, RoadNetwork, Weight,
};
use std::collections::HashMap;

/// The pre-CSR store, copied from the original implementation: one
/// `HashMap` entry per received node, per-node edge `Vec`s, and a
/// map-backed Dijkstra. This is the behavioral oracle.
type LegacyNode = (Point, bool, Vec<(NodeId, Weight)>);

#[derive(Default)]
struct LegacyStore {
    nodes: HashMap<NodeId, LegacyNode>,
    max_weight: Weight,
}

impl LegacyStore {
    fn ingest(&mut self, rec: NodeRecord) -> usize {
        let entry = self
            .nodes
            .entry(rec.id)
            .or_insert_with(|| (rec.point, rec.border, Vec::new()));
        entry.1 |= rec.border;
        let added = rec.edges.len();
        for &(_, w) in &rec.edges {
            self.max_weight = self.max_weight.max(w);
        }
        entry.2.extend(rec.edges);
        let fresh_node = if entry.2.len() == added {
            decoded_node_bytes(0)
        } else {
            0
        };
        fresh_node + added * 8
    }

    fn out_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        self.nodes
            .get(&v)
            .map(|(_, _, e)| e.as_slice())
            .unwrap_or(&[])
    }

    fn retained_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|(_, _, e)| decoded_node_bytes(0) + e.len() * 8)
            .sum()
    }

    fn discard(&mut self, v: NodeId) -> usize {
        match self.nodes.remove(&v) {
            Some((_, _, e)) => decoded_node_bytes(0) + e.len() * 8,
            None => 0,
        }
    }

    fn shortest_path_with(
        &self,
        source: NodeId,
        target: NodeId,
        queue: QueuePolicy,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let expected = Some(self.nodes.len().div_ceil(2));
        match queue.resolve_for(self.max_weight, expected) {
            QueuePolicy::Bucket => {
                self.search(source, target, &mut BucketQueue::new(self.max_weight))
            }
            _ => self.search(source, target, &mut MinHeap::new()),
        }
    }

    fn search<Q: DijkstraQueue>(
        &self,
        source: NodeId,
        target: NodeId,
        queue: &mut Q,
    ) -> (Option<(u64, Vec<NodeId>)>, usize) {
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut settled = 0usize;
        dist.insert(source, 0);
        queue.push(0, source);
        while let Some((key, v)) = queue.pop() {
            if dist.get(&v) != Some(&key) {
                continue;
            }
            settled += 1;
            if v == target {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return (Some((key, path)), settled);
            }
            for &(u, w) in self.out_edges(v) {
                let cand = key + w as u64;
                if dist.get(&u).is_none_or(|&d| cand < d) {
                    dist.insert(u, cand);
                    parent.insert(u, v);
                    queue.push(cand, u);
                }
            }
        }
        (None, settled)
    }
}

const POLICIES: [QueuePolicy; 3] = [QueuePolicy::Auto, QueuePolicy::Heap, QueuePolicy::Bucket];

/// Asserts every observable accessor of the new store matches the oracle.
fn assert_state_matches(legacy: &LegacyStore, new: &ReceivedGraph) {
    assert_eq!(legacy.nodes.len(), new.num_nodes(), "num_nodes");
    assert_eq!(legacy.max_weight, new.max_weight(), "max_weight");
    assert_eq!(legacy.retained_bytes(), new.retained_bytes(), "retained");
    let mut legacy_ids: Vec<NodeId> = legacy.nodes.keys().copied().collect();
    legacy_ids.sort_unstable();
    let mut new_ids: Vec<NodeId> = new.node_ids().collect();
    new_ids.sort_unstable();
    assert_eq!(legacy_ids, new_ids, "node id set");
    for &v in &legacy_ids {
        assert!(new.contains(v));
        let (p, b, e) = &legacy.nodes[&v];
        assert_eq!(new.point(v), Some(*p), "point of {v}");
        assert_eq!(new.is_border(v), Some(*b), "border of {v}");
        assert_eq!(new.out_edges(v), e.as_slice(), "edges of {v}");
    }
}

/// Asserts search equality for every policy and (source, target) pair —
/// distance, full path (the settle-order witness) and settled count.
fn assert_searches_match(legacy: &LegacyStore, new: &mut ReceivedGraph, pairs: &[(u32, u32)]) {
    for &(s, t) in pairs {
        for policy in POLICIES {
            let want = legacy.shortest_path_with(s, t, policy);
            let got = new.shortest_path_with(s, t, policy);
            assert_eq!(want, got, "search {s}->{t} under {policy:?}");
        }
    }
}

/// One proptest-generated record: `(id, point, border, edges)`.
type RawRecord = (u32, (f32, f32), bool, Vec<(u32, u32)>);

fn to_record(raw: &RawRecord) -> NodeRecord {
    NodeRecord {
        id: raw.0,
        point: Point::new(raw.1 .0 as f64, raw.1 .1 as f64),
        more: false,
        border: raw.2,
        edges: raw
            .3
            .iter()
            .map(|&(t, w)| (t as NodeId, w as Weight))
            .collect(),
    }
}

/// Record streams over a dense id range, with duplicate chunks (the same
/// node arriving more than once models §6.2 re-reception) and weights
/// down to zero (tie-heavy searches).
fn record_stream(max_id: u32, max_weight: u32) -> impl Strategy<Value = Vec<RawRecord>> {
    let record = (
        0..max_id,
        (-100.0f32..100.0, -100.0f32..100.0),
        any::<bool>(),
        proptest::collection::vec((0..max_id, 0..=max_weight), 0..6),
    );
    proptest::collection::vec(record, 1..40)
}

fn run_differential(records: &[RawRecord], pairs: &[(u32, u32)]) {
    let mut legacy = LegacyStore::default();
    let mut new = ReceivedGraph::new();
    for raw in records {
        let rec = to_record(raw);
        assert_eq!(
            legacy.ingest(rec.clone()),
            new.ingest(rec),
            "ingest charge for node {}",
            raw.0
        );
    }
    assert_state_matches(&legacy, &new);
    assert_searches_match(&legacy, &mut new, pairs);
    // Discards must release identical charges and leave identical state.
    for &(v, _) in pairs.iter().take(2) {
        assert_eq!(legacy.discard(v), new.discard(v), "discard charge of {v}");
    }
    assert_state_matches(&legacy, &new);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense-id record streams: charges, accessors, searches, discards.
    #[test]
    fn dense_record_streams_match_legacy(records in record_stream(24, 50)) {
        let pairs: Vec<(u32, u32)> = vec![(0, 23), (5, 12), (7, 7), (3, 22)];
        run_differential(&records, &pairs);
    }

    /// Zero-weight-heavy streams: equal keys everywhere, so paths and
    /// settle counts pin the queues' tie-breaking exactly.
    #[test]
    fn zero_weight_ties_match_legacy(records in record_stream(12, 1)) {
        let pairs: Vec<(u32, u32)> = vec![(0, 11), (4, 9), (1, 10)];
        run_differential(&records, &pairs);
    }

    /// Spill-range ids (beyond the direct-index table cap) must behave
    /// identically to dense ids.
    #[test]
    fn spill_range_ids_match_legacy(records in record_stream(16, 20)) {
        const SPILL_BASE: u32 = 1 << 23;
        let shifted: Vec<RawRecord> = records
            .iter()
            .map(|(id, p, b, e)| {
                (
                    id + SPILL_BASE,
                    *p,
                    *b,
                    e.iter().map(|&(t, w)| (t + SPILL_BASE, w)).collect(),
                )
            })
            .collect();
        let pairs: Vec<(u32, u32)> =
            vec![(SPILL_BASE, SPILL_BASE + 15), (SPILL_BASE + 3, SPILL_BASE + 9)];
        run_differential(&shifted, &pairs);
    }
}

/// Feeds a network's encoded payloads to (a) the oracle via
/// decode-then-ingest and (b) the new store via the fused
/// [`ReceivedGraph::ingest_payload`], then cross-checks state, charges
/// and searches.
fn run_payload_differential(g: &RoadNetwork, pairs: &[(u32, u32)]) {
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let mut legacy = LegacyStore::default();
    let mut fused = ReceivedGraph::new();
    let mut stepwise = ReceivedGraph::new();
    for payload in encode_nodes(g, &nodes) {
        let mut legacy_charge = 0;
        let mut stepwise_charge = 0;
        for rec in decode_payload(&payload).expect("well-formed payload") {
            legacy_charge += legacy.ingest(rec.clone());
            stepwise_charge += stepwise.ingest(rec);
        }
        let fused_charge = fused.ingest_payload(&payload).expect("well-formed payload");
        assert_eq!(legacy_charge, fused_charge, "per-payload charge");
        assert_eq!(stepwise_charge, fused_charge, "fused == decode+ingest");
    }
    assert_state_matches(&legacy, &fused);
    assert_state_matches(&legacy, &stepwise);
    assert_searches_match(&legacy, &mut fused, pairs);
    assert_searches_match(&legacy, &mut stepwise, pairs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Grid-preset networks through the real encode → payload path.
    #[test]
    fn grid_preset_payload_streams_match_legacy(seed in 0u64..500) {
        let g = small_grid(9, 9, seed);
        let n = g.num_nodes() as u32;
        run_payload_differential(&g, &[(0, n - 1), (n / 3, n / 2)]);
    }

    /// Germany-class topology (the load harness's paper-scale class) at
    /// test-tractable size, same differential.
    #[test]
    fn germany_class_payload_streams_match_legacy(seed in 0u64..500) {
        let g = NetworkPreset::Germany.config_for_nodes(seed, 320).generate();
        let n = g.num_nodes() as u32;
        run_payload_differential(&g, &[(0, n - 1), (n / 4, 3 * n / 4)]);
    }
}

#[test]
fn malformed_payload_is_all_or_nothing() {
    let g = small_grid(6, 6, 3);
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let payloads = encode_nodes(&g, &nodes);
    let mut store = ReceivedGraph::new();
    let charged = store.ingest_payload(&payloads[0]).expect("well-formed");
    assert!(charged > 0);
    let before_nodes: Vec<NodeId> = {
        let mut ids: Vec<NodeId> = store.node_ids().collect();
        ids.sort_unstable();
        ids
    };
    let before_bytes = store.retained_bytes();
    // Truncating mid-record makes the payload malformed; like
    // decode_payload, the fused path must reject it without any partial
    // mutation or charge.
    let cut = payloads[1].clone();
    let truncated = &cut[..cut.len() - 3];
    assert_eq!(decode_payload(truncated), None, "oracle rejects");
    assert_eq!(store.ingest_payload(truncated), None, "fused rejects");
    let mut after_nodes: Vec<NodeId> = store.node_ids().collect();
    after_nodes.sort_unstable();
    assert_eq!(before_nodes, after_nodes, "no partial node ingest");
    assert_eq!(before_bytes, store.retained_bytes(), "no partial charge");
}
