//! Property-based tests on the road-network substrate: every search
//! algorithm agrees with plain Dijkstra, the generators produce usable
//! networks, and the serializers round-trip.

use proptest::prelude::*;
use spair_roadnet::generators::GeneratorConfig;
use spair_roadnet::{
    astar_distance, bidirectional_distance, dijkstra_distance, dijkstra_full, dijkstra_to_target,
    insert_positions, io, EdgePosition, NodeId, NodeLocator, Point, RoadNetwork, ZeroBound,
};

fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (20usize..200, 0u64..1000, 0.0f64..0.8).prop_map(|(nodes, seed, extra)| {
        GeneratorConfig {
            nodes,
            undirected_edges: nodes - 1 + (nodes as f64 * extra) as usize,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Point-to-point Dijkstra agrees with the full-tree distance.
    #[test]
    fn p2p_matches_full_tree(g in arb_network(), pair in (0usize..10_000, 0usize..10_000)) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let tree = dijkstra_full(&g, s);
        let want = tree.reachable(t).then(|| tree.distance(t));
        prop_assert_eq!(dijkstra_distance(&g, s, t), want);
    }

    /// Bidirectional search returns the Dijkstra distance.
    #[test]
    fn bidirectional_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assert_eq!(bidirectional_distance(&g, s, t), dijkstra_distance(&g, s, t));
    }

    /// A* with the zero bound degenerates to Dijkstra.
    #[test]
    fn astar_zero_bound_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assert_eq!(astar_distance(&g, s, t, &ZeroBound), dijkstra_distance(&g, s, t));
    }

    /// Returned paths are real paths: consecutive edges exist and their
    /// weights sum to the reported distance.
    #[test]
    fn paths_are_consistent(g in arb_network(), pair in (0usize..10_000, 0usize..10_000)) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        if let Some((d, path)) = dijkstra_to_target(&g, s, t) {
            prop_assert_eq!(path.first(), Some(&s));
            prop_assert_eq!(path.last(), Some(&t));
            let mut acc = 0u64;
            for w in path.windows(2) {
                let Some(wt) = g.weight_between(w[0], w[1]) else {
                    return Err(TestCaseError::fail(format!("missing edge {}->{}", w[0], w[1])));
                };
                acc += wt as u64;
            }
            prop_assert_eq!(acc, d);
        }
    }

    /// Generated networks are connected (every node reachable from 0) —
    /// the MST backbone guarantees it.
    #[test]
    fn generated_networks_are_connected(g in arb_network()) {
        let tree = dijkstra_full(&g, 0);
        for v in g.node_ids() {
            prop_assert!(tree.reachable(v), "node {v} unreachable");
        }
    }

    /// The text serializer round-trips every generated network exactly.
    #[test]
    fn io_round_trips(g in arb_network()) {
        let mut buf = Vec::new();
        io::write_text(&g, &mut buf).unwrap();
        let g2 = io::read_text(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.node_ids() {
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            prop_assert_eq!(a, b, "adjacency of {}", v);
            prop_assert_eq!(g.point(v).x, g2.point(v).x);
            prop_assert_eq!(g.point(v).y, g2.point(v).y);
        }
    }

    /// The grid-bucketed nearest-node locator agrees with brute force.
    #[test]
    fn snap_matches_brute_force(
        g in arb_network(),
        q in ((-100.0f64..3000.0), (-100.0f64..3000.0)),
    ) {
        let locator = NodeLocator::build(&g);
        let p = Point::new(q.0, q.1);
        let got = locator.nearest(p);
        let best = g
            .node_ids()
            .map(|v| (g.point(v).euclidean(&p), v))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        // Ties may resolve to a different node at the same distance.
        prop_assert_eq!(g.point(got).euclidean(&p), best.0);
    }

    /// Splitting an edge never changes distances between original nodes.
    #[test]
    fn edge_split_preserves_metric(
        g in arb_network(),
        pick in 0usize..10_000,
        frac in 1u32..100,
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        // Find a splittable arc deterministically from the pick.
        let n = g.num_nodes() as NodeId;
        let start = (pick % g.num_nodes()) as NodeId;
        let mut arc = None;
        'outer: for v in (start..n).chain(0..start) {
            for (u, w) in g.out_edges(v) {
                if w >= 2 && g.weight_between(u, v) == Some(w) {
                    arc = Some((v, u, w));
                    break 'outer;
                }
            }
        }
        let Some((u, v, w)) = arc else { return Ok(()) };
        let along = 1 + (frac % (w - 1).max(1));
        let (g2, _) = insert_positions(&g, &[EdgePosition { from: u, to: v, along }]);
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assert_eq!(dijkstra_distance(&g2, s, t), dijkstra_distance(&g, s, t));
    }
}
