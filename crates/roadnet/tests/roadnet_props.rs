//! Property-based tests on the road-network substrate: every search
//! algorithm agrees with plain Dijkstra, the generators produce usable
//! networks, and the serializers round-trip.

use proptest::prelude::*;
use spair_roadnet::generators::GeneratorConfig;
use spair_roadnet::{
    astar_distance, bidirectional_distance, dijkstra_distance, dijkstra_full, dijkstra_to_target,
    insert_positions, io, EdgePosition, NodeId, NodeLocator, Point, RoadNetwork, ZeroBound,
};

fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (20usize..200, 0u64..1000, 0.0f64..0.8).prop_map(|(nodes, seed, extra)| {
        GeneratorConfig {
            nodes,
            undirected_edges: nodes - 1 + (nodes as f64 * extra) as usize,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Point-to-point Dijkstra agrees with the full-tree distance.
    #[test]
    fn p2p_matches_full_tree(g in arb_network(), pair in (0usize..10_000, 0usize..10_000)) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let tree = dijkstra_full(&g, s);
        let want = tree.reachable(t).then(|| tree.distance(t));
        prop_assert_eq!(dijkstra_distance(&g, s, t), want);
    }

    /// Bidirectional search returns the Dijkstra distance.
    #[test]
    fn bidirectional_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assert_eq!(bidirectional_distance(&g, s, t), dijkstra_distance(&g, s, t));
    }

    /// A* with the zero bound degenerates to Dijkstra.
    #[test]
    fn astar_zero_bound_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assert_eq!(astar_distance(&g, s, t, &ZeroBound), dijkstra_distance(&g, s, t));
    }

    /// Returned paths are real paths: consecutive edges exist and their
    /// weights sum to the reported distance.
    #[test]
    fn paths_are_consistent(g in arb_network(), pair in (0usize..10_000, 0usize..10_000)) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        if let Some((d, path)) = dijkstra_to_target(&g, s, t) {
            prop_assert_eq!(path.first(), Some(&s));
            prop_assert_eq!(path.last(), Some(&t));
            let mut acc = 0u64;
            for w in path.windows(2) {
                let Some(wt) = g.weight_between(w[0], w[1]) else {
                    return Err(TestCaseError::fail(format!("missing edge {}->{}", w[0], w[1])));
                };
                acc += wt as u64;
            }
            prop_assert_eq!(acc, d);
        }
    }

    /// Generated networks are connected (every node reachable from 0) —
    /// the MST backbone guarantees it.
    #[test]
    fn generated_networks_are_connected(g in arb_network()) {
        let tree = dijkstra_full(&g, 0);
        for v in g.node_ids() {
            prop_assert!(tree.reachable(v), "node {v} unreachable");
        }
    }

    /// The text serializer round-trips every generated network exactly.
    #[test]
    fn io_round_trips(g in arb_network()) {
        let mut buf = Vec::new();
        io::write_text(&g, &mut buf).unwrap();
        let g2 = io::read_text(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.node_ids() {
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            prop_assert_eq!(a, b, "adjacency of {}", v);
            prop_assert_eq!(g.point(v).x, g2.point(v).x);
            prop_assert_eq!(g.point(v).y, g2.point(v).y);
        }
    }

    /// The grid-bucketed nearest-node locator agrees with brute force.
    #[test]
    fn snap_matches_brute_force(
        g in arb_network(),
        q in ((-100.0f64..3000.0), (-100.0f64..3000.0)),
    ) {
        let locator = NodeLocator::build(&g);
        let p = Point::new(q.0, q.1);
        let got = locator.nearest(p);
        let best = g
            .node_ids()
            .map(|v| (g.point(v).euclidean(&p), v))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        // Ties may resolve to a different node at the same distance.
        prop_assert_eq!(g.point(got).euclidean(&p), best.0);
    }

    /// Splitting an edge never changes distances between original nodes.
    #[test]
    fn edge_split_preserves_metric(
        g in arb_network(),
        pick in 0usize..10_000,
        frac in 1u32..100,
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        // Find a splittable arc deterministically from the pick.
        let n = g.num_nodes() as NodeId;
        let start = (pick % g.num_nodes()) as NodeId;
        let mut arc = None;
        'outer: for v in (start..n).chain(0..start) {
            for (u, w) in g.out_edges(v) {
                if w >= 2 && g.weight_between(u, v) == Some(w) {
                    arc = Some((v, u, w));
                    break 'outer;
                }
            }
        }
        let Some((u, v, w)) = arc else { return Ok(()) };
        let along = 1 + (frac % (w - 1).max(1));
        let (g2, _) = insert_positions(&g, &[EdgePosition { from: u, to: v, along }]);
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assert_eq!(dijkstra_distance(&g2, s, t), dijkstra_distance(&g, s, t));
    }
}

/// Feeds a network's own CSR arrays back through
/// [`RoadNetwork::from_csr`]. With edges fed in source-major order the
/// rebuild must be indistinguishable from a `GraphBuilder` fed the same
/// sequence — the `receive_network` fast path depends on exactly that
/// equivalence (its predecessor built the received graph through
/// `GraphBuilder` in source-major dense order).
fn rebuild_via_csr(g: &RoadNetwork) -> RoadNetwork {
    let mut out_offsets: Vec<u32> = Vec::with_capacity(g.num_nodes() + 1);
    let mut out_targets: Vec<NodeId> = Vec::with_capacity(g.num_edges());
    let mut out_weights = Vec::with_capacity(g.num_edges());
    out_offsets.push(0);
    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            out_targets.push(u);
            out_weights.push(w);
        }
        out_offsets.push(out_targets.len() as u32);
    }
    RoadNetwork::from_csr(g.points().to_vec(), out_offsets, out_targets, out_weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `from_csr` reproduces the builder graph exactly: adjacency in both
    /// directions, then — the behavioral part — identical settle order,
    /// distances, parents and first-hop colors under every queue policy.
    #[test]
    fn from_csr_is_indistinguishable_from_builder(
        g in arb_network(),
        pick in 0usize..10_000,
    ) {
        use spair_roadnet::dijkstra::{DijkstraWorkspace, Direction};
        use spair_roadnet::QueuePolicy;

        // Reference: a builder fed the same edges in source-major order
        // (the order `receive_network` feeds `from_csr`). The original
        // generated graph's own insertion order is NOT source-major, so
        // its reverse adjacency ordering is not part of the claim.
        let g = {
            let mut b = spair_roadnet::GraphBuilder::new();
            for v in g.node_ids() {
                b.add_node(g.point(v));
            }
            for v in g.node_ids() {
                for (u, w) in g.out_edges(v) {
                    b.add_edge(v, u, w);
                }
            }
            b.finish()
        };
        let c = rebuild_via_csr(&g);
        prop_assert_eq!(g.num_nodes(), c.num_nodes());
        prop_assert_eq!(g.num_edges(), c.num_edges());
        prop_assert_eq!(g.max_weight(), c.max_weight());
        for v in g.node_ids() {
            prop_assert_eq!(g.point(v).x, c.point(v).x);
            prop_assert_eq!(g.point(v).y, c.point(v).y);
            let go: Vec<_> = g.out_edges(v).collect();
            let co: Vec<_> = c.out_edges(v).collect();
            prop_assert_eq!(go, co, "out edges of {}", v);
            let gi: Vec<_> = g.in_edges(v).collect();
            let ci: Vec<_> = c.in_edges(v).collect();
            prop_assert_eq!(gi, ci, "in edges of {}", v);
        }

        let s = (pick % g.num_nodes()) as NodeId;
        for policy in [QueuePolicy::Auto, QueuePolicy::Heap, QueuePolicy::Bucket] {
            for dir in [Direction::Forward, Direction::Reverse] {
                let mut wg = DijkstraWorkspace::for_graph(&g, policy);
                let mut wc = DijkstraWorkspace::for_graph(&c, policy);
                wg.run(&g, s, dir);
                wc.run(&c, s, dir);
                prop_assert_eq!(
                    wg.settle_order(),
                    wc.settle_order(),
                    "settle order from {} under {:?}/{:?}", s, policy, dir
                );
                for v in g.node_ids() {
                    prop_assert_eq!(wg.distance(v), wc.distance(v));
                    prop_assert_eq!(wg.parent(v), wc.parent(v));
                }
                if dir == Direction::Forward {
                    let mut hops_g = vec![0u8; g.num_nodes()];
                    let mut hops_c = vec![0u8; c.num_nodes()];
                    spair_roadnet::first_hops_from_workspace(&g, &wg, &mut hops_g);
                    spair_roadnet::first_hops_from_workspace(&c, &wc, &mut hops_c);
                    prop_assert_eq!(
                        &hops_g, &hops_c,
                        "first-hop colors from {} under {:?}", s, policy
                    );
                }
            }
        }
    }

    /// Zero-weight edges create equal-key ties; the CSR rebuild must
    /// break them exactly like the builder graph under every policy.
    #[test]
    fn from_csr_preserves_zero_weight_tie_breaks(
        edges in proptest::collection::vec((0u32..14, 0u32..14, 0u32..3u32), 1..60),
        source in 0u32..14,
    ) {
        use spair_roadnet::dijkstra::{DijkstraWorkspace, Direction};
        use spair_roadnet::{GraphBuilder, QueuePolicy};

        let mut b = GraphBuilder::new();
        for i in 0..14u32 {
            b.add_node(Point::new(f64::from(i % 4), f64::from(i / 4)));
        }
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.finish();
        let c = rebuild_via_csr(&g);
        for policy in [QueuePolicy::Auto, QueuePolicy::Heap, QueuePolicy::Bucket] {
            let mut wg = DijkstraWorkspace::for_graph(&g, policy);
            let mut wc = DijkstraWorkspace::for_graph(&c, policy);
            wg.run(&g, source, Direction::Forward);
            wc.run(&c, source, Direction::Forward);
            prop_assert_eq!(wg.settle_order(), wc.settle_order(), "{:?}", policy);
            for v in g.node_ids() {
                prop_assert_eq!(wg.distance(v), wc.distance(v));
                prop_assert_eq!(wg.parent(v), wc.parent(v));
            }
        }
    }
}
