//! A 4-ary min-heap keyed by `u64` priorities.
//!
//! Dijkstra dominates both server-side precomputation (thousands of full
//! searches) and the simulated client CPU time, so the priority queue is
//! worth owning: a 4-ary heap halves the tree height versus a binary heap
//! and keeps sift-down children on one cache line. The heap is *lazy* —
//! Dijkstra pushes duplicates instead of decreasing keys and skips stale
//! pops — which benchmarks faster than an indexed heap on sparse road
//! graphs.

/// Entry pairing a priority with an opaque payload (usually a node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapEntry<T> {
    /// Sort key (smaller pops first).
    pub key: u64,
    /// Payload.
    pub item: T,
}

/// A 4-ary min-heap.
#[derive(Debug, Clone)]
pub struct MinHeap<T> {
    slots: Vec<HeapEntry<T>>,
}

impl<T: Copy> Default for MinHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> MinHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Creates an empty heap with capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
        }
    }

    /// Number of entries (including stale duplicates).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no entries are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Removes all entries, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Smallest key currently queued.
    #[inline]
    pub fn peek_key(&self) -> Option<u64> {
        self.slots.first().map(|e| e.key)
    }

    /// Pushes an entry.
    #[inline]
    pub fn push(&mut self, key: u64, item: T) {
        self.slots.push(HeapEntry { key, item });
        self.sift_up(self.slots.len() - 1);
    }

    /// Pops the entry with the smallest key.
    #[inline]
    pub fn pop(&mut self) -> Option<HeapEntry<T>> {
        let len = self.slots.len();
        match len {
            0 => None,
            1 => self.slots.pop(),
            _ => {
                self.slots.swap(0, len - 1);
                let top = self.slots.pop();
                self.sift_down(0);
                top
            }
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.slots[i].key < self.slots[parent].key {
                self.slots.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.slots.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + 4).min(len);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if self.slots[c].key < self.slots[best].key {
                    best = c;
                }
            }
            if self.slots[best].key < self.slots[i].key {
                self.slots.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_key_order() {
        let mut h = MinHeap::new();
        for &k in &[5u64, 3, 9, 1, 7] {
            h.push(k, k as u32);
        }
        let mut keys = Vec::new();
        while let Some(e) = h.pop() {
            keys.push(e.key);
        }
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut h: MinHeap<u32> = MinHeap::new();
        assert!(h.pop().is_none());
        assert!(h.is_empty());
        assert_eq!(h.peek_key(), None);
    }

    #[test]
    fn duplicates_are_preserved() {
        let mut h = MinHeap::new();
        h.push(2, 0u32);
        h.push(2, 1u32);
        h.push(1, 2u32);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop().unwrap().item, 2);
        let mut rest: Vec<u32> = [h.pop().unwrap().item, h.pop().unwrap().item].to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 1]);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut h = MinHeap::new();
        h.push(10, 0u32);
        h.push(4, 1u32);
        assert_eq!(h.peek_key(), Some(4));
        assert_eq!(h.pop().unwrap().key, 4);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut h = MinHeap::new();
        for k in 0..100u64 {
            h.push(k, k as u32);
        }
        h.clear();
        assert!(h.is_empty());
        h.push(1, 1);
        assert_eq!(h.pop().unwrap().key, 1);
    }

    #[test]
    fn randomized_against_sorted_reference() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let mut h = MinHeap::new();
            for (i, &k) in keys.iter().enumerate() {
                h.push(k, i as u32);
            }
            let mut popped = Vec::new();
            while let Some(e) = h.pop() {
                popped.push(e.key);
            }
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(popped, expect);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = MinHeap::new();
        let mut reference = std::collections::BinaryHeap::new();
        for _ in 0..2000 {
            if rng.gen_bool(0.6) || reference.is_empty() {
                let k = rng.gen_range(0..10_000u64);
                h.push(k, 0u8);
                reference.push(std::cmp::Reverse(k));
            } else {
                assert_eq!(h.pop().unwrap().key, reference.pop().unwrap().0);
            }
        }
    }
}
