//! Compact CSR road-network representation.
//!
//! Node ids are dense `u32` indices. The graph is directed; undirected road
//! segments are stored as two directed edges. Both forward and reverse
//! adjacency are materialized because several index builders (ArcFlag, EB/NR
//! border precomputation) need backward searches.

use serde::{Deserialize, Serialize};

/// Dense node identifier (index into the node arrays).
pub type NodeId = u32;

/// Dense edge identifier (index into the forward edge arrays).
pub type EdgeId = u32;

/// Edge weight. Quantized length / travel time / toll (paper §2.1).
pub type Weight = u32;

/// Planar node coordinates.
///
/// The paper assumes no relation between Euclidean and network distance
/// (§4 footnote 1); coordinates are used only for partitioning and
/// generation, never as a search heuristic, except in the Landmark baseline
/// where bounds come from precomputed graph distances anyway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn euclidean(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A directed weighted road network in CSR form.
///
/// Construction goes through [`GraphBuilder`]; the finished graph is
/// immutable, which lets every consumer share it freely (`&RoadNetwork`)
/// during precomputation and simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    points: Vec<Point>,
    // Forward CSR.
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<Weight>,
    // Reverse CSR (edges flipped).
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<Weight>,
    /// Largest edge weight (0 for edgeless graphs). Cached at build time
    /// so queue selection (`QueuePolicy::Auto`) is O(1).
    max_weight: Weight,
}

impl RoadNetwork {
    /// Builds a network directly from forward-CSR parts, computing the
    /// reverse adjacency and cached maximum weight here. Produces exactly
    /// the graph [`GraphBuilder::finish`] would for the same edges fed in
    /// source-major CSR order — per-node edge order is preserved, and
    /// reverse edges are laid out in global (source-major) order — but
    /// without the builder's intermediate edge list and hash set. The
    /// client-side per-session rebuild of received networks runs on this.
    pub fn from_csr(
        points: Vec<Point>,
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<Weight>,
    ) -> Self {
        let n = points.len();
        let m = out_targets.len();
        assert_eq!(out_offsets.len(), n + 1, "offsets must have n + 1 entries");
        assert_eq!(out_weights.len(), m, "weights must match targets");
        assert_eq!(out_offsets[0], 0, "offsets must start at 0");
        assert_eq!(out_offsets[n] as usize, m, "offsets must end at edge count");
        debug_assert!(out_offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(out_targets.iter().all(|&t| (t as usize) < n));

        let mut in_offsets = vec![0u32; n + 1];
        for &to in &out_targets {
            in_offsets[to as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_weights = vec![0 as Weight; m];
        let mut cursor = in_offsets.clone();
        for from in 0..n {
            let (lo, hi) = (out_offsets[from] as usize, out_offsets[from + 1] as usize);
            for e in lo..hi {
                let to = out_targets[e] as usize;
                let slot = cursor[to] as usize;
                in_sources[slot] = from as NodeId;
                in_weights[slot] = out_weights[e];
                cursor[to] += 1;
            }
        }

        let max_weight = out_weights.iter().copied().max().unwrap_or(0);
        Self {
            points,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            max_weight,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Coordinates of `v`.
    #[inline]
    pub fn point(&self, v: NodeId) -> Point {
        self.points[v as usize]
    }

    /// All node coordinates.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Outgoing `(target, weight)` pairs of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        self.out_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.out_weights[lo..hi].iter().copied())
    }

    /// Incoming `(source, weight)` pairs of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        self.in_sources[lo..hi]
            .iter()
            .copied()
            .zip(self.in_weights[lo..hi].iter().copied())
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Dense edge id range `[lo, hi)` of `v`'s outgoing edges.
    #[inline]
    pub fn out_edge_ids(&self, v: NodeId) -> std::ops::Range<EdgeId> {
        self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]
    }

    /// Target node of forward edge `e`.
    #[inline]
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        self.out_targets[e as usize]
    }

    /// Weight of forward edge `e`.
    #[inline]
    pub fn edge_weight(&self, e: EdgeId) -> Weight {
        self.out_weights[e as usize]
    }

    /// Iterator over all node ids.
    #[inline]
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Largest edge weight in the graph (0 if there are no edges).
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Looks up the weight of edge `(u, v)`, if present.
    pub fn weight_between(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.out_edges(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// Bounding box `(min, max)` over all node coordinates.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (min, max)
    }

    /// Approximate in-memory footprint of the adjacency representation in
    /// bytes. Used by the device-memory accounting of the client simulators.
    pub fn adjacency_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<Point>()
            + self.out_offsets.len() * 4
            + self.out_targets.len() * 4
            + self.out_weights.len() * 4
    }
}

/// Incremental builder for [`RoadNetwork`].
///
/// Edges may be added in any order; `finish` sorts them into CSR form and
/// constructs the reverse adjacency.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    points: Vec<Point>,
    edges: Vec<(NodeId, NodeId, Weight)>,
    /// Endpoint pairs already added, so `has_edge` is O(1). Generators
    /// dedupe candidate edges through it, which was quadratic when it
    /// scanned the edge list.
    edge_set: std::collections::HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            points: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_set: std::collections::HashSet::with_capacity(edges),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = self.points.len() as NodeId;
        self.points.push(p);
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge. Panics if either endpoint is unknown.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, w: Weight) {
        assert!((from as usize) < self.points.len(), "unknown source node");
        assert!((to as usize) < self.points.len(), "unknown target node");
        self.edges.push((from, to, w));
        self.edge_set.insert((from, to));
    }

    /// Adds a pair of directed edges modelling an undirected road segment.
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, w: Weight) {
        self.add_edge(a, b, w);
        self.add_edge(b, a, w);
    }

    /// Crate-internal view of the points added so far (used by generators).
    pub(crate) fn points_internal(&self) -> &[Point] {
        &self.points
    }

    /// Returns `true` if a directed edge `(from, to)` was already added.
    /// O(1) via the endpoint-pair set maintained by `add_edge`.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_set.contains(&(from, to))
    }

    /// Finalizes the CSR representation.
    pub fn finish(self) -> RoadNetwork {
        let n = self.points.len();
        let m = self.edges.len();

        let mut out_offsets = vec![0u32; n + 1];
        for &(from, _, _) in &self.edges {
            out_offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0 as NodeId; m];
        let mut out_weights = vec![0 as Weight; m];
        let mut cursor = out_offsets.clone();
        for &(from, to, w) in &self.edges {
            let slot = cursor[from as usize] as usize;
            out_targets[slot] = to;
            out_weights[slot] = w;
            cursor[from as usize] += 1;
        }

        let mut in_offsets = vec![0u32; n + 1];
        for &(_, to, _) in &self.edges {
            in_offsets[to as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_weights = vec![0 as Weight; m];
        let mut cursor = in_offsets.clone();
        for &(from, to, w) in &self.edges {
            let slot = cursor[to as usize] as usize;
            in_sources[slot] = from;
            in_weights[slot] = w;
            cursor[to as usize] += 1;
        }

        let max_weight = self.edges.iter().map(|&(_, _, w)| w).max().unwrap_or(0);
        RoadNetwork {
            points: self.points,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            max_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> RoadNetwork {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 with different weights.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 2);
        b.add_edge(1, 3, 5);
        b.add_edge(2, 3, 1);
        b.finish()
    }

    #[test]
    fn csr_basic_shape() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn out_edges_match_inserted() {
        let g = diamond();
        let mut outs: Vec<_> = g.out_edges(0).collect();
        outs.sort_unstable();
        assert_eq!(outs, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn in_edges_are_reversed_out_edges() {
        let g = diamond();
        let mut ins: Vec<_> = g.in_edges(3).collect();
        ins.sort_unstable();
        assert_eq!(ins, vec![(1, 5), (2, 1)]);
    }

    #[test]
    fn undirected_edge_adds_both_directions() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_undirected_edge(0, 1, 7);
        let g = b.finish();
        assert_eq!(g.weight_between(0, 1), Some(7));
        assert_eq!(g.weight_between(1, 0), Some(7));
    }

    #[test]
    fn weight_between_absent_edge() {
        let g = diamond();
        assert_eq!(g.weight_between(1, 2), None);
        assert_eq!(g.weight_between(3, 0), None);
    }

    #[test]
    fn edge_id_accessors_consistent_with_iterator() {
        let g = diamond();
        for v in g.node_ids() {
            let via_ids: Vec<_> = g
                .out_edge_ids(v)
                .map(|e| (g.edge_target(e), g.edge_weight(e)))
                .collect();
            let via_iter: Vec<_> = g.out_edges(v).collect();
            assert_eq!(via_ids, via_iter);
        }
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let g = diamond();
        let (min, max) = g.bounding_box();
        assert_eq!(min.x, 0.0);
        assert_eq!(max.x, 3.0);
        assert_eq!(min.y, 0.0);
        assert_eq!(max.y, 0.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().finish();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown target node")]
    fn edge_to_unknown_node_panics() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_edge(0, 1, 1);
    }

    #[test]
    fn point_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
    }
}
