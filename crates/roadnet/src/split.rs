//! Edge splitting: materialize arbitrary on-edge positions as real graph
//! nodes.
//!
//! The paper's §5 closing remark allows the source/destination to sit "at
//! arbitrary locations on the network" rather than on nodes. The air
//! methods handle that client-side (see `spair-core`'s `onedge` module);
//! this utility builds the *reference* answer by physically inserting the
//! positions into the graph and running ordinary Dijkstra, which the
//! property tests compare against.
//!
//! Assumes at most one arc per direction between any node pair (true for
//! all generators and loaders in this crate).

use crate::graph::{GraphBuilder, NodeId, Point, RoadNetwork, Weight};
use std::collections::HashMap;

/// A position on an arc `(from, to)`, `along` weight units after `from`
/// (`0 < along < weight(from, to)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePosition {
    /// Arc tail.
    pub from: NodeId,
    /// Arc head.
    pub to: NodeId,
    /// Distance from `from` in weight units.
    pub along: Weight,
}

/// Inserts every position as a new node, splitting the arcs it lies on
/// (and their reverse arcs, if present, at the mirrored offset). Returns
/// the rebuilt network and the node id assigned to each position, in
/// input order.
///
/// Panics if a position's arc does not exist or `along` is not strictly
/// inside it.
pub fn insert_positions(g: &RoadNetwork, positions: &[EdgePosition]) -> (RoadNetwork, Vec<NodeId>) {
    // Normalize to undirected keys (min, max) with alongs measured from
    // the key's smaller endpoint.
    let mut by_key: HashMap<(NodeId, NodeId), Vec<(usize, Weight)>> = HashMap::new();
    for (i, p) in positions.iter().enumerate() {
        let w = g
            .weight_between(p.from, p.to)
            .unwrap_or_else(|| panic!("no arc {} -> {}", p.from, p.to));
        assert!(
            p.along > 0 && p.along < w,
            "position must be strictly inside the arc"
        );
        let (key, along) = if p.from <= p.to {
            ((p.from, p.to), p.along)
        } else {
            ((p.to, p.from), w - p.along)
        };
        by_key.entry(key).or_default().push((i, along));
    }
    for list in by_key.values_mut() {
        list.sort_by_key(|&(_, a)| a);
    }

    let mut b = GraphBuilder::with_capacity(g.num_nodes() + positions.len(), g.num_edges());
    for v in g.node_ids() {
        b.add_node(g.point(v));
    }
    // Allocate the split nodes (interpolated coordinates).
    let mut ids = vec![NodeId::MAX; positions.len()];
    for (&(a, c), list) in &by_key {
        let w = g
            .weight_between(a, c)
            .or_else(|| g.weight_between(c, a))
            .expect("validated above");
        let (pa, pc) = (g.point(a), g.point(c));
        for &(i, along) in list {
            let t = along as f64 / w as f64;
            ids[i] = b.add_node(Point::new(
                pa.x + t * (pc.x - pa.x),
                pa.y + t * (pc.y - pa.y),
            ));
        }
    }

    // Re-add arcs, splitting the affected ones into chains.
    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            let key = if v <= u { (v, u) } else { (u, v) };
            match by_key.get(&key) {
                None => b.add_edge(v, u, w),
                Some(list) => {
                    // Chain from v to u through the split nodes. `list` is
                    // sorted by distance from the key's smaller endpoint;
                    // walking v -> u traverses it forward iff v is that
                    // endpoint.
                    let forward = v == key.0;
                    let mut prev = v;
                    let mut prev_along = if forward { 0 } else { w };
                    let iter: Vec<(usize, Weight)> = if forward {
                        list.clone()
                    } else {
                        list.iter().rev().copied().collect()
                    };
                    for (i, along) in iter {
                        let seg = if forward {
                            along - prev_along
                        } else {
                            prev_along - along
                        };
                        b.add_edge(prev, ids[i], seg);
                        prev = ids[i];
                        prev_along = along;
                    }
                    let last = if forward { w - prev_along } else { prev_along };
                    b.add_edge(prev, u, last);
                }
            }
        }
    }
    (b.finish(), ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_distance;
    use crate::generators::small_grid;

    fn first_arc(g: &RoadNetwork) -> (NodeId, NodeId, Weight) {
        for v in g.node_ids() {
            if let Some((u, w)) = g.out_edges(v).next() {
                if w >= 2 {
                    return (v, u, w);
                }
            }
        }
        panic!("no splittable arc");
    }

    #[test]
    fn split_preserves_distances_between_original_nodes() {
        let g = small_grid(6, 6, 1);
        let (u, v, w) = first_arc(&g);
        let (g2, ids) = insert_positions(
            &g,
            &[EdgePosition {
                from: u,
                to: v,
                along: w / 2,
            }],
        );
        assert_eq!(g2.num_nodes(), g.num_nodes() + 1);
        assert_eq!(ids.len(), 1);
        for &(s, t) in &[(0u32, 35u32), (7, 28), (v, u)] {
            assert_eq!(
                dijkstra_distance(&g2, s, t),
                dijkstra_distance(&g, s, t),
                "{s}->{t}"
            );
        }
    }

    #[test]
    fn split_node_distances_are_partial_weights() {
        let g = small_grid(5, 5, 3);
        let (u, v, w) = first_arc(&g);
        let along = 1.max(w / 3);
        let (g2, ids) = insert_positions(
            &g,
            &[EdgePosition {
                from: u,
                to: v,
                along,
            }],
        );
        let s = ids[0];
        assert_eq!(dijkstra_distance(&g2, u, s), Some(along as u64));
        assert_eq!(dijkstra_distance(&g2, s, v), Some((w - along) as u64));
    }

    #[test]
    fn two_positions_on_the_same_edge_chain_correctly() {
        let g = small_grid(4, 4, 2);
        let (u, v, w) = {
            // Need an arc with weight >= 3 for two interior points.
            let mut found = None;
            'outer: for x in g.node_ids() {
                for (y, wt) in g.out_edges(x) {
                    if wt >= 3 {
                        found = Some((x, y, wt));
                        break 'outer;
                    }
                }
            }
            found.expect("weight >= 3 arc")
        };
        let a1 = 1;
        let a2 = w - 1;
        let (g2, ids) = insert_positions(
            &g,
            &[
                EdgePosition {
                    from: u,
                    to: v,
                    along: a2,
                },
                EdgePosition {
                    from: u,
                    to: v,
                    along: a1,
                },
            ],
        );
        // ids follow input order regardless of along order.
        assert_eq!(dijkstra_distance(&g2, u, ids[1]), Some(a1 as u64));
        assert_eq!(
            dijkstra_distance(&g2, ids[1], ids[0]),
            Some((a2 - a1) as u64)
        );
        assert_eq!(dijkstra_distance(&g2, ids[0], v), Some(1));
        // Distances between original nodes unchanged.
        assert_eq!(dijkstra_distance(&g2, u, v), dijkstra_distance(&g, u, v));
    }

    #[test]
    fn reverse_arc_splits_at_the_mirrored_offset() {
        let g = small_grid(5, 5, 7);
        let (u, v, w) = first_arc(&g);
        let along = 1;
        let (g2, ids) = insert_positions(
            &g,
            &[EdgePosition {
                from: u,
                to: v,
                along,
            }],
        );
        // Travelling v -> u passes the split node after w - along units.
        assert_eq!(dijkstra_distance(&g2, v, ids[0]), Some((w - along) as u64));
        assert_eq!(dijkstra_distance(&g2, ids[0], u), Some(along as u64));
    }

    #[test]
    fn interpolated_coordinates_lie_between_endpoints() {
        let g = small_grid(4, 4, 9);
        let (u, v, w) = first_arc(&g);
        let (g2, ids) = insert_positions(
            &g,
            &[EdgePosition {
                from: u,
                to: v,
                along: w / 2,
            }],
        );
        let p = g2.point(ids[0]);
        let (pu, pv) = (g.point(u), g.point(v));
        let minx = pu.x.min(pv.x) - 1e-9;
        let maxx = pu.x.max(pv.x) + 1e-9;
        assert!(p.x >= minx && p.x <= maxx);
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn zero_along_rejected() {
        let g = small_grid(3, 3, 0);
        let (u, v, _) = first_arc(&g);
        insert_positions(
            &g,
            &[EdgePosition {
                from: u,
                to: v,
                along: 0,
            }],
        );
    }
}
