//! Bidirectional Dijkstra.
//!
//! Not part of the paper's method set, but a natural extension users of
//! the library expect for local (non-broadcast) point-to-point queries:
//! two simultaneous searches — forward from the source, backward from the
//! target — meet in the middle and settle roughly half the nodes of a
//! unidirectional run on road networks. The server-side precomputation can
//! use it wherever a plain point-to-point distance is needed.

use crate::dijkstra::SearchStats;
use crate::graph::{NodeId, RoadNetwork};
use crate::heap::MinHeap;
use crate::sptree::NO_PARENT;
use crate::{Distance, DIST_INF};

/// Point-to-point distance via bidirectional search, or `None` if the
/// target is unreachable.
pub fn bidirectional_distance(g: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Distance> {
    bidirectional_search(g, source, target).0
}

/// Bidirectional search returning `(distance, path)` plus work counters.
///
/// Both frontiers track tentative parents; whenever the best meeting
/// distance improves, the meeting node is recorded. Any later improvement
/// of either tentative distance at the meeting node re-evaluates `best`
/// (the relaxation that improves it sees the other side's finite
/// distance), so at termination `dist_f[meet] + dist_b[meet] == best` and
/// the two parent chains through `meet` concatenate into a shortest
/// `source -> target` walk.
pub fn bidirectional_search_paths(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
) -> (Option<(Distance, Vec<NodeId>)>, SearchStats) {
    if source == target {
        return (Some((0, vec![source])), SearchStats::default());
    }
    let n = g.num_nodes();
    let mut dist_f = vec![DIST_INF; n];
    let mut dist_b = vec![DIST_INF; n];
    let mut parent_f = vec![NO_PARENT; n];
    let mut parent_b = vec![NO_PARENT; n];
    let mut heap_f = MinHeap::with_capacity(64);
    let mut heap_b = MinHeap::with_capacity(64);
    let mut stats = SearchStats::default();
    let mut best = DIST_INF;
    let mut meet: NodeId = NO_PARENT;

    dist_f[source as usize] = 0;
    dist_b[target as usize] = 0;
    heap_f.push(0, source);
    heap_b.push(0, target);

    loop {
        let tf = heap_f.peek_key();
        let tb = heap_b.peek_key();
        let (Some(tf), Some(tb)) = (tf, tb) else {
            break; // one frontier exhausted: no more meetings possible
        };
        if best != DIST_INF && tf + tb >= best {
            break;
        }
        if tf <= tb {
            let e = heap_f.pop().expect("peeked");
            let v = e.item;
            if e.key != dist_f[v as usize] {
                continue;
            }
            stats.settled += 1;
            for (u, w) in g.out_edges(v) {
                stats.relaxed += 1;
                let cand = e.key + w as Distance;
                if cand < dist_f[u as usize] {
                    dist_f[u as usize] = cand;
                    parent_f[u as usize] = v;
                    heap_f.push(cand, u);
                }
                if dist_b[u as usize] != DIST_INF && cand + dist_b[u as usize] < best {
                    best = cand + dist_b[u as usize];
                    meet = u;
                }
            }
        } else {
            let e = heap_b.pop().expect("peeked");
            let v = e.item;
            if e.key != dist_b[v as usize] {
                continue;
            }
            stats.settled += 1;
            for (u, w) in g.in_edges(v) {
                stats.relaxed += 1;
                let cand = e.key + w as Distance;
                if cand < dist_b[u as usize] {
                    dist_b[u as usize] = cand;
                    parent_b[u as usize] = v;
                    heap_b.push(cand, u);
                }
                if dist_f[u as usize] != DIST_INF && dist_f[u as usize] + cand < best {
                    best = dist_f[u as usize] + cand;
                    meet = u;
                }
            }
        }
    }
    if best == DIST_INF {
        return (None, stats);
    }
    let mut path = vec![meet];
    let mut cur = meet;
    while parent_f[cur as usize] != NO_PARENT {
        cur = parent_f[cur as usize];
        path.push(cur);
    }
    path.reverse();
    cur = meet;
    while parent_b[cur as usize] != NO_PARENT {
        cur = parent_b[cur as usize];
        path.push(cur);
    }
    (Some((best, path)), stats)
}

/// Bidirectional search returning the distance plus work counters.
///
/// Invariant used for termination: once `top(forward) + top(backward)`
/// is at least the best meeting distance seen, no shorter path can still
/// be discovered (every undiscovered path's two halves are bounded below
/// by the respective heap tops).
pub fn bidirectional_search(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
) -> (Option<Distance>, SearchStats) {
    if source == target {
        return (Some(0), SearchStats::default());
    }
    let n = g.num_nodes();
    let mut dist_f = vec![DIST_INF; n];
    let mut dist_b = vec![DIST_INF; n];
    let mut heap_f = MinHeap::with_capacity(64);
    let mut heap_b = MinHeap::with_capacity(64);
    let mut stats = SearchStats::default();
    let mut best = DIST_INF;

    dist_f[source as usize] = 0;
    dist_b[target as usize] = 0;
    heap_f.push(0, source);
    heap_b.push(0, target);

    loop {
        let tf = heap_f.peek_key();
        let tb = heap_b.peek_key();
        let (Some(tf), Some(tb)) = (tf, tb) else {
            break; // one frontier exhausted: no more meetings possible
        };
        if best != DIST_INF && tf + tb >= best {
            break;
        }
        // Expand the smaller frontier.
        if tf <= tb {
            let e = heap_f.pop().expect("peeked");
            let v = e.item;
            if e.key != dist_f[v as usize] {
                continue;
            }
            stats.settled += 1;
            for (u, w) in g.out_edges(v) {
                stats.relaxed += 1;
                let cand = e.key + w as Distance;
                if cand < dist_f[u as usize] {
                    dist_f[u as usize] = cand;
                    heap_f.push(cand, u);
                }
                if dist_b[u as usize] != DIST_INF {
                    best = best.min(cand + dist_b[u as usize]);
                }
            }
        } else {
            let e = heap_b.pop().expect("peeked");
            let v = e.item;
            if e.key != dist_b[v as usize] {
                continue;
            }
            stats.settled += 1;
            for (u, w) in g.in_edges(v) {
                stats.relaxed += 1;
                let cand = e.key + w as Distance;
                if cand < dist_b[u as usize] {
                    dist_b[u as usize] = cand;
                    heap_b.push(cand, u);
                }
                if dist_f[u as usize] != DIST_INF {
                    best = best.min(cand + dist_f[u as usize]);
                }
            }
        }
    }
    if best == DIST_INF {
        (None, stats)
    } else {
        (Some(best), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_queue::QueuePolicy;
    use crate::dijkstra::{dijkstra_distance, dijkstra_with_options, DijkstraOptions};
    use crate::generators::{small_grid, GeneratorConfig};
    use crate::graph::{GraphBuilder, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_unidirectional_on_random_queries() {
        let g = small_grid(15, 15, 9);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = rng.gen_range(0..g.num_nodes()) as NodeId;
            let t = rng.gen_range(0..g.num_nodes()) as NodeId;
            assert_eq!(
                bidirectional_distance(&g, s, t),
                dijkstra_distance(&g, s, t),
                "{s}->{t}"
            );
        }
    }

    #[test]
    fn works_on_directed_asymmetric_graphs() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 0, 10); // cycle back, asymmetric weights
        let g = b.finish();
        assert_eq!(bidirectional_distance(&g, 0, 3), Some(3));
        assert_eq!(bidirectional_distance(&g, 3, 0), Some(10));
    }

    #[test]
    fn settles_fewer_nodes_than_unidirectional_on_long_paths() {
        let cfg = GeneratorConfig {
            nodes: 2000,
            undirected_edges: 2600,
            seed: 5,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let (s, t) = (0, 1999);
        let (_, bi) = bidirectional_search(&g, s, t);
        let (_, uni) = dijkstra_with_options(
            &g,
            s,
            DijkstraOptions {
                target: Some(t),
                bound: None,
                queue: QueuePolicy::default(),
            },
        );
        assert!(
            bi.settled < uni.settled,
            "bidirectional {} vs unidirectional {}",
            bi.settled,
            uni.settled
        );
    }

    #[test]
    fn paths_variant_matches_distances_and_returns_valid_walks() {
        let g = small_grid(12, 12, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let s = rng.gen_range(0..g.num_nodes()) as NodeId;
            let t = rng.gen_range(0..g.num_nodes()) as NodeId;
            let (res, _) = bidirectional_search_paths(&g, s, t);
            assert_eq!(
                res.as_ref().map(|(d, _)| *d),
                dijkstra_distance(&g, s, t),
                "{s}->{t}"
            );
            let Some((d, path)) = res else { continue };
            assert_eq!(path.first(), Some(&s));
            assert_eq!(path.last(), Some(&t));
            let mut acc: Distance = 0;
            for w in path.windows(2) {
                acc += g.weight_between(w[0], w[1]).expect("edge on path") as Distance;
            }
            assert_eq!(acc, d, "path weights must sum to the claimed distance");
        }
    }

    #[test]
    fn paths_variant_on_directed_asymmetric_graphs() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 0, 10);
        let g = b.finish();
        let (res, _) = bidirectional_search_paths(&g, 0, 3);
        assert_eq!(res, Some((3, vec![0, 1, 2, 3])));
        let (res, _) = bidirectional_search_paths(&g, 3, 0);
        assert_eq!(res, Some((10, vec![3, 0])));
        let (res, _) = bidirectional_search_paths(&g, 2, 2);
        assert_eq!(res, Some((0, vec![2])));
    }

    #[test]
    fn unreachable_and_trivial_cases() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        assert_eq!(bidirectional_distance(&g, 0, 1), None);
        assert_eq!(bidirectional_distance(&g, 0, 0), Some(0));
    }
}
