//! Scoped-thread fan-out helpers for server-side precomputation.
//!
//! Border-pair precomputation, ArcFlag construction, Landmark distance
//! vectors and HiTi level building all share one shape: thousands of
//! independent single-source searches whose results merge into one
//! aggregate. This module provides the shared machinery:
//!
//! * [`num_threads`] — worker count (`SPAIR_THREADS` overrides the
//!   detected parallelism, which matters for benchmarking and CI);
//! * [`map_reduce_chunked`] — deterministic chunked map-reduce over a
//!   work list: items are split into index-ordered chunks, workers claim
//!   chunks dynamically (work stealing via an atomic cursor), and the
//!   per-chunk partials merge **in chunk order** at an eagerly advanced
//!   merge frontier, so the result is independent of thread scheduling
//!   even for non-commutative merges and at most the in-flight chunks'
//!   partials are alive at once;
//! * [`join`] — two-way fork-join for naturally paired work (e.g. the
//!   forward and reverse Dijkstra of one landmark).
//!
//! Per-worker state (a `DijkstraWorkspace` plus DP buffers) is supplied
//! by the `make_scratch` closure of [`map_reduce_chunked`]: each worker
//! builds its scratch once and reuses it across every chunk it claims,
//! so the per-source loops allocate nothing — the per-thread workspace
//! pool of the precompute pipeline.
//!
//! Everything is plain `std::thread::scope` — the build environment is
//! offline, so this stands in for a rayon pool with the same fan-out /
//! deterministic-reduce discipline (and no extra dependency).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads parallel passes use: the `SPAIR_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// detected available parallelism (1 if detection fails).
pub fn num_threads() -> usize {
    resolve_threads(None)
}

/// Resolves a worker count under the precedence rule shared by every
/// bench binary (`bench_precompute`, `bench_scenarios`, `bench_load`):
/// an explicit `--threads` flag wins over `SPAIR_THREADS`, which wins
/// over the detected available parallelism. A flag value of 0 counts as
/// "not given" — binaries reject it at parse time.
pub fn resolve_threads(flag: Option<usize>) -> usize {
    resolve_threads_from(
        flag,
        std::env::var("SPAIR_THREADS").ok().as_deref(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Pure core of [`resolve_threads`], separated so the precedence rule is
/// unit-testable without touching the process environment: a positive
/// `flag` beats a positive-integer `env` string, which beats `detected`
/// (clamped to at least 1). Non-numeric or non-positive `env` values are
/// ignored.
pub fn resolve_threads_from(flag: Option<usize>, env: Option<&str>, detected: usize) -> usize {
    if let Some(n) = flag {
        if n >= 1 {
            return n;
        }
    }
    if let Some(s) = env {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    detected.max(1)
}

/// Runs two closures concurrently and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("parallel::join worker panicked");
        (ra, rb)
    })
}

/// Chunk-ordered merge frontier shared by the workers.
struct MergeFrontier<P> {
    next: usize,
    acc: Option<P>,
}

/// Deterministic chunked map-reduce over `items`.
///
/// The item list is split into at most `threads * chunks_per_thread`
/// contiguous chunks. Each worker owns one `scratch` (built once per
/// worker by `make_scratch`) and repeatedly claims the next unprocessed
/// chunk, folding its items into a fresh partial from `make_partial` via
/// `fold_chunk(scratch, partial, chunk_items, base_index)`.
///
/// Completed partials merge **in chunk order**: after finishing a chunk
/// a worker advances the shared merge frontier over every consecutively
/// completed chunk, so (a) the output never depends on thread
/// scheduling, even for non-commutative merges, and (b) at any moment
/// only the out-of-order-completed partials — bounded by the chunks in
/// flight, ≈ `threads` — are alive, not one per chunk.
///
/// Returns `None` for an empty item list. With `threads <= 1`
/// everything runs inline on the caller's thread (no spawn overhead),
/// which is also the reference order the chunk-ordered merge reproduces.
pub fn map_reduce_chunked<T, S, P>(
    items: &[T],
    threads: usize,
    chunks_per_thread: usize,
    make_scratch: impl Fn() -> S + Sync,
    make_partial: impl Fn() -> P + Sync,
    fold_chunk: impl Fn(&mut S, &mut P, &[T], usize) + Sync,
    merge: impl Fn(&mut P, P) + Sync,
) -> Option<P>
where
    T: Sync,
    P: Send,
{
    if items.is_empty() {
        return None;
    }
    let threads = threads.max(1);
    if threads == 1 {
        let mut scratch = make_scratch();
        let mut partial = make_partial();
        fold_chunk(&mut scratch, &mut partial, items, 0);
        return Some(partial);
    }

    let chunk_count = (threads * chunks_per_thread.max(1)).min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<P>>> = (0..chunk_count).map(|_| Mutex::new(None)).collect();
    let frontier = Mutex::new(MergeFrontier { next: 0, acc: None });

    // Chunk c covers [bounds(c), bounds(c + 1)): even split with the
    // remainder spread over the leading chunks.
    let bounds = |c: usize| -> usize {
        let n = items.len();
        (n * c) / chunk_count
    };

    std::thread::scope(|s| {
        for _ in 0..threads.min(chunk_count) {
            s.spawn(|| {
                let mut scratch = make_scratch();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= chunk_count {
                        break;
                    }
                    let (lo, hi) = (bounds(c), bounds(c + 1));
                    let mut partial = make_partial();
                    fold_chunk(&mut scratch, &mut partial, &items[lo..hi], lo);
                    *slots[c].lock().expect("partial slot poisoned") = Some(partial);
                    // Advance the merge frontier over every consecutive
                    // completed chunk. Each store is followed by a drain
                    // attempt, so the frontier always reaches chunk_count
                    // once all workers are done.
                    let mut f = frontier.lock().expect("merge frontier poisoned");
                    while f.next < chunk_count {
                        let Some(p) = slots[f.next].lock().expect("partial slot poisoned").take()
                        else {
                            break;
                        };
                        match &mut f.acc {
                            None => f.acc = Some(p),
                            Some(acc) => merge(acc, p),
                        }
                        f.next += 1;
                    }
                }
            });
        }
    });

    let f = frontier.into_inner().expect("merge frontier poisoned");
    assert_eq!(f.next, chunk_count, "merge frontier did not drain");
    f.acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let out = map_reduce_chunked(
            &[] as &[u32],
            4,
            4,
            || (),
            Vec::<u32>::new,
            |_, p, items, _| p.extend_from_slice(items),
            |a, b| a.extend(b),
        );
        assert!(out.is_none());
    }

    #[test]
    fn map_reduce_preserves_item_order() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = map_reduce_chunked(
                &items,
                threads,
                4,
                || (),
                Vec::<u32>::new,
                |_, p, chunk, base| {
                    assert_eq!(chunk[0] as usize, base);
                    p.extend_from_slice(chunk);
                },
                |a, b| a.extend(b),
            )
            .unwrap();
            assert_eq!(out, items, "threads={threads}");
        }
    }

    #[test]
    fn map_reduce_base_index_matches_slices() {
        let items: Vec<usize> = (0..97).collect();
        let out = map_reduce_chunked(
            &items,
            5,
            3,
            || (),
            || 0usize,
            |_, p, chunk, base| {
                for (i, &v) in chunk.iter().enumerate() {
                    assert_eq!(v, base + i);
                }
                *p += chunk.len();
            },
            |a, b| *a += b,
        )
        .unwrap();
        assert_eq!(out, items.len());
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Each worker builds exactly one scratch regardless of how many
        // chunks it claims.
        let items: Vec<u32> = (0..256).collect();
        let scratches = AtomicUsize::new(0);
        let out = map_reduce_chunked(
            &items,
            3,
            8,
            || scratches.fetch_add(1, Ordering::Relaxed),
            || 0usize,
            |_, p, chunk, _| *p += chunk.len(),
            |a, b| *a += b,
        )
        .unwrap();
        assert_eq!(out, items.len());
        assert!(scratches.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn thread_precedence_flag_beats_env_beats_detected() {
        assert_eq!(resolve_threads_from(Some(3), Some("8"), 16), 3);
        assert_eq!(resolve_threads_from(None, Some("8"), 16), 8);
        assert_eq!(resolve_threads_from(None, None, 16), 16);
    }

    #[test]
    fn thread_precedence_ignores_invalid_values() {
        // A zero flag counts as "not given" (binaries reject it earlier).
        assert_eq!(resolve_threads_from(Some(0), Some("8"), 16), 8);
        // Garbage / non-positive env values fall through to detection.
        assert_eq!(resolve_threads_from(None, Some("zero"), 4), 4);
        assert_eq!(resolve_threads_from(None, Some("0"), 4), 4);
        assert_eq!(resolve_threads_from(None, Some(" 2 "), 4), 2);
        // Detection failure clamps to one worker.
        assert_eq!(resolve_threads_from(None, None, 0), 1);
    }
}
