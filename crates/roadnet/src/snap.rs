//! Nearest-node lookup for arbitrary client locations.
//!
//! The paper's main body assumes queries start and end at network nodes and
//! remarks (§5, end) that arbitrary on-edge locations are handled by
//! redefining border nodes; this locator supplies the practical complement
//! on the client side: snap a GPS fix to the closest network node. Lookup
//! uses a uniform bucket grid with expanding ring search, O(1) expected for
//! road-like (spatially uniform) node layouts.

use crate::graph::{NodeId, Point, RoadNetwork};

/// Spatial index mapping arbitrary points to their nearest network node.
#[derive(Debug, Clone)]
pub struct NodeLocator {
    min: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<NodeId>>,
    points: Vec<Point>,
}

impl NodeLocator {
    /// Builds a locator over all nodes of `g`, sized for ~2 nodes/bucket.
    pub fn build(g: &RoadNetwork) -> Self {
        assert!(
            g.num_nodes() > 0,
            "cannot build a locator over an empty network"
        );
        let (min, max) = g.bounding_box();
        let n = g.num_nodes();
        let target_buckets = (n / 2).max(1);
        let w = (max.x - min.x).max(1e-9);
        let h = (max.y - min.y).max(1e-9);
        let cell = (w * h / target_buckets as f64).sqrt().max(1e-9);
        let cols = (w / cell).ceil() as usize + 1;
        let rows = (h / cell).ceil() as usize + 1;
        let mut buckets = vec![Vec::new(); cols * rows];
        let points: Vec<Point> = g.points().to_vec();
        for (i, p) in points.iter().enumerate() {
            let (bx, by) = bucket_of(p, &min, cell, cols, rows);
            buckets[by * cols + bx].push(i as NodeId);
        }
        Self {
            min,
            cell,
            cols,
            rows,
            buckets,
            points,
        }
    }

    /// Returns the node nearest to `q` (ties broken by smaller id).
    pub fn nearest(&self, q: Point) -> NodeId {
        let (qx, qy) = bucket_of(&q, &self.min, self.cell, self.cols, self.rows);
        let mut best: Option<(f64, NodeId)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once a candidate is found, one extra ring suffices: anything
            // farther out is at least `ring * cell` away.
            if let Some((d, _)) = best {
                if d <= (ring as f64 - 1.0) * self.cell {
                    break;
                }
            }
            for (bx, by) in ring_cells(qx, qy, ring, self.cols, self.rows) {
                for &v in &self.buckets[by * self.cols + bx] {
                    let d = self.points[v as usize].euclidean(&q);
                    let better = match best {
                        None => true,
                        Some((bd, bv)) => d < bd || (d == bd && v < bv),
                    };
                    if better {
                        best = Some((d, v));
                    }
                }
            }
        }
        best.expect("non-empty locator").1
    }
}

fn bucket_of(p: &Point, min: &Point, cell: f64, cols: usize, rows: usize) -> (usize, usize) {
    let bx = (((p.x - min.x) / cell).floor().max(0.0) as usize).min(cols - 1);
    let by = (((p.y - min.y) / cell).floor().max(0.0) as usize).min(rows - 1);
    (bx, by)
}

/// Cells at Chebyshev distance `ring` from `(cx, cy)`, clipped to grid.
fn ring_cells(
    cx: usize,
    cy: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let mut cells = Vec::new();
    let (cx, cy, r) = (cx as isize, cy as isize, ring as isize);
    if ring == 0 {
        cells.push((cx, cy));
    } else {
        for dx in -r..=r {
            cells.push((cx + dx, cy - r));
            cells.push((cx + dx, cy + r));
        }
        for dy in (-r + 1)..r {
            cells.push((cx - r, cy + dy));
            cells.push((cx + r, cy + dy));
        }
    }
    cells
        .into_iter()
        .filter(move |&(x, y)| x >= 0 && y >= 0 && (x as usize) < cols && (y as usize) < rows)
        .map(|(x, y)| (x as usize, y as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small_grid;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(g: &RoadNetwork, q: Point) -> NodeId {
        let mut best = (f64::INFINITY, 0);
        for v in g.node_ids() {
            let d = g.point(v).euclidean(&q);
            if d < best.0 || (d == best.0 && v < best.1) {
                best = (d, v);
            }
        }
        best.1
    }

    #[test]
    fn matches_brute_force_on_random_queries() {
        let g = small_grid(15, 15, 2);
        let loc = NodeLocator::build(&g);
        let mut rng = StdRng::seed_from_u64(77);
        let (min, max) = g.bounding_box();
        for _ in 0..200 {
            let q = Point::new(
                rng.gen_range(min.x - 50.0..max.x + 50.0),
                rng.gen_range(min.y - 50.0..max.y + 50.0),
            );
            assert_eq!(loc.nearest(q), brute_nearest(&g, q));
        }
    }

    #[test]
    fn exact_node_position_maps_to_itself() {
        let g = small_grid(10, 10, 4);
        let loc = NodeLocator::build(&g);
        for v in g.node_ids().step_by(7) {
            assert_eq!(loc.nearest(g.point(v)), v);
        }
    }

    #[test]
    fn far_outside_bbox_still_works() {
        let g = small_grid(5, 5, 1);
        let loc = NodeLocator::build(&g);
        let q = Point::new(-1e6, -1e6);
        assert_eq!(loc.nearest(q), brute_nearest(&g, q));
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let g = crate::graph::GraphBuilder::new().finish();
        NodeLocator::build(&g);
    }
}
