//! Output-path hygiene shared by the bench binaries.
//!
//! Every bench binary defaults `--out` to a committed `BENCH_*.json`
//! artifact, which is exactly right for the full configuration those
//! artifacts are generated with — and exactly wrong for everything else:
//! a `--smoke`, `--methods`-restricted or `--scale`d invocation run from
//! the repo root used to silently overwrite the committed full-run
//! numbers with a partial matrix, which the digest gates then flagged as
//! mysterious drift. The guard below redirects any *partial* run that
//! targets a `BENCH_*.json` filename to the `BENCH_*.smoke.json` sibling
//! (with a warning), so committed artifacts can only be refreshed by the
//! full configuration. Explicit non-artifact paths (`/tmp/run3.json`)
//! pass through untouched, partial or not.

/// Returns the path `out` with `.json` replaced by `.smoke.json` when its
/// file name looks like a committed benchmark artifact: `BENCH_*.json`
/// and not already `*.smoke.json`. Returns `None` for paths that are safe
/// to write from any run.
pub fn smoke_sibling(out: &str) -> Option<String> {
    let name = std::path::Path::new(out).file_name()?.to_str()?;
    if name.starts_with("BENCH_") && name.ends_with(".json") && !name.ends_with(".smoke.json") {
        Some(format!("{}.smoke.json", &out[..out.len() - ".json".len()]))
    } else {
        None
    }
}

/// Applies the clobber guard: a full run (`partial == None`) writes
/// wherever it was pointed; a partial run (`partial == Some(reason)`)
/// aimed at a `BENCH_*.json` filename is redirected to the
/// `*.smoke.json` sibling, with a warning naming the reason.
pub fn redirect_partial_out(out: &str, partial: Option<&str>) -> String {
    let Some(reason) = partial else {
        return out.to_string();
    };
    match smoke_sibling(out) {
        Some(redirected) => {
            eprintln!(
                "warning: {reason} run must not overwrite the committed artifact {out}; \
                 writing {redirected} instead (only a full default run may write BENCH_*.json)"
            );
            redirected
        }
        None => out.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_get_a_smoke_sibling() {
        assert_eq!(
            smoke_sibling("BENCH_scenarios.json").as_deref(),
            Some("BENCH_scenarios.smoke.json")
        );
        assert_eq!(
            smoke_sibling("/tmp/BENCH_load.json").as_deref(),
            Some("/tmp/BENCH_load.smoke.json")
        );
    }

    #[test]
    fn non_artifact_and_already_smoke_names_pass() {
        assert_eq!(smoke_sibling("/tmp/run3.json"), None);
        assert_eq!(smoke_sibling("BENCH_scenarios.smoke.json"), None);
        assert_eq!(smoke_sibling("results.json"), None);
        assert_eq!(smoke_sibling("BENCH_scenarios.txt"), None);
    }

    #[test]
    fn full_runs_write_anywhere() {
        assert_eq!(
            redirect_partial_out("BENCH_scenarios.json", None),
            "BENCH_scenarios.json"
        );
    }

    #[test]
    fn partial_runs_are_redirected_only_off_artifacts() {
        assert_eq!(
            redirect_partial_out("BENCH_faults.json", Some("--smoke")),
            "BENCH_faults.smoke.json"
        );
        assert_eq!(
            redirect_partial_out("/tmp/gate.json", Some("--smoke")),
            "/tmp/gate.json"
        );
    }
}
