//! Plain-text road-network interchange format (DIMACS-challenge flavoured).
//!
//! Real datasets (e.g. the 9th DIMACS Implementation Challenge graphs the
//! ArcFlag paper was evaluated on) ship as `.gr`/`.co` pairs; this module
//! reads and writes a single-file merge of the two so users can run the
//! framework on real maps:
//!
//! ```text
//! c free-form comment lines
//! p sp <num_nodes> <num_directed_edges>
//! v <node_id> <x> <y>          (one per node, 0-based ids)
//! a <from> <to> <weight>       (one per directed edge)
//! ```

use crate::graph::{GraphBuilder, NodeId, Point, RoadNetwork};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not match the grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The `p` header is missing or duplicated.
    BadHeader(String),
    /// Node/edge counts did not match the header.
    CountMismatch(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::BadHeader(s) => write!(f, "bad header: {s}"),
            ParseError::CountMismatch(s) => write!(f, "count mismatch: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Writes `g` in the text format.
pub fn write_text<W: Write>(g: &RoadNetwork, mut out: W) -> std::io::Result<()> {
    writeln!(out, "c spair road network")?;
    writeln!(out, "p sp {} {}", g.num_nodes(), g.num_edges())?;
    for v in g.node_ids() {
        let p = g.point(v);
        writeln!(out, "v {} {} {}", v, p.x, p.y)?;
    }
    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            writeln!(out, "a {} {} {}", v, u, w)?;
        }
    }
    Ok(())
}

/// Reads a network in the text format.
pub fn read_text<R: BufRead>(input: R) -> Result<RoadNetwork, ParseError> {
    let mut header: Option<(usize, usize)> = None;
    let mut nodes_seen = 0usize;
    let mut edges_seen = 0usize;
    let mut builder = GraphBuilder::new();
    let mut pending_nodes: Vec<(NodeId, Point)> = Vec::new();

    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("p") => {
                if header.is_some() {
                    return Err(ParseError::BadHeader("duplicate p line".into()));
                }
                let kind = parts.next().unwrap_or("");
                if kind != "sp" {
                    return Err(ParseError::BadHeader(format!("unknown problem '{kind}'")));
                }
                let n = parse_field(parts.next(), lineno, "node count")?;
                let m = parse_field(parts.next(), lineno, "edge count")?;
                header = Some((n, m));
                pending_nodes.reserve(n);
            }
            Some("v") => {
                let id: usize = parse_field(parts.next(), lineno, "node id")?;
                let x: f64 = parse_field(parts.next(), lineno, "x")?;
                let y: f64 = parse_field(parts.next(), lineno, "y")?;
                pending_nodes.push((id as NodeId, Point::new(x, y)));
                nodes_seen += 1;
            }
            Some("a") => {
                // All v lines must precede a lines; materialize nodes once.
                if builder.num_nodes() == 0 && !pending_nodes.is_empty() {
                    materialize_nodes(&mut builder, &mut pending_nodes, header)?;
                }
                let from: usize = parse_field(parts.next(), lineno, "from")?;
                let to: usize = parse_field(parts.next(), lineno, "to")?;
                let w: u32 = parse_field(parts.next(), lineno, "weight")?;
                if from >= builder.num_nodes() || to >= builder.num_nodes() {
                    return Err(ParseError::Malformed {
                        line: lineno,
                        reason: format!("edge ({from},{to}) references unknown node"),
                    });
                }
                builder.add_edge(from as NodeId, to as NodeId, w);
                edges_seen += 1;
            }
            Some(tok) => {
                return Err(ParseError::Malformed {
                    line: lineno,
                    reason: format!("unknown record '{tok}'"),
                })
            }
            None => {}
        }
    }

    let (n, m) = header.ok_or_else(|| ParseError::BadHeader("missing p line".into()))?;
    if builder.num_nodes() == 0 && !pending_nodes.is_empty() {
        materialize_nodes(&mut builder, &mut pending_nodes, Some((n, m)))?;
    }
    if nodes_seen != n {
        return Err(ParseError::CountMismatch(format!(
            "header says {n} nodes, found {nodes_seen}"
        )));
    }
    if edges_seen != m {
        return Err(ParseError::CountMismatch(format!(
            "header says {m} edges, found {edges_seen}"
        )));
    }
    Ok(builder.finish())
}

fn materialize_nodes(
    builder: &mut GraphBuilder,
    pending: &mut Vec<(NodeId, Point)>,
    header: Option<(usize, usize)>,
) -> Result<(), ParseError> {
    let n = header
        .map(|(n, _)| n)
        .ok_or_else(|| ParseError::BadHeader("v records before p line".into()))?;
    let mut points = vec![None; n];
    for &(id, p) in pending.iter() {
        let slot = points.get_mut(id as usize).ok_or_else(|| {
            ParseError::CountMismatch(format!("node id {id} out of range 0..{n}"))
        })?;
        *slot = Some(p);
    }
    for (id, p) in points.into_iter().enumerate() {
        let p = p.ok_or_else(|| ParseError::CountMismatch(format!("node {id} missing")))?;
        builder.add_node(p);
    }
    pending.clear();
    Ok(())
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    field
        .ok_or_else(|| ParseError::Malformed {
            line,
            reason: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| ParseError::Malformed {
            line,
            reason: format!("unparsable {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small_grid;

    #[test]
    fn round_trip_preserves_graph() {
        let g = small_grid(8, 8, 5);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&buf[..]).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.node_ids() {
            let mut e1: Vec<_> = g.out_edges(v).collect();
            let mut e2: Vec<_> = g2.out_edges(v).collect();
            e1.sort_unstable();
            e2.sort_unstable();
            assert_eq!(e1, e2);
            assert_eq!(g.point(v).x, g2.point(v).x);
            assert_eq!(g.point(v).y, g2.point(v).y);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c hello\n\np sp 2 1\nv 0 0.0 0.0\nv 1 1.0 0.0\nc mid comment\na 0 1 5\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.weight_between(0, 1), Some(5));
    }

    #[test]
    fn missing_header_rejected() {
        let text = "v 0 0 0\n";
        assert!(matches!(
            read_text(text.as_bytes()),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn count_mismatch_rejected() {
        let text = "p sp 2 2\nv 0 0 0\nv 1 1 0\na 0 1 5\n";
        assert!(matches!(
            read_text(text.as_bytes()),
            Err(ParseError::CountMismatch(_))
        ));
    }

    #[test]
    fn edge_to_unknown_node_rejected() {
        let text = "p sp 2 1\nv 0 0 0\nv 1 1 0\na 0 7 5\n";
        assert!(matches!(
            read_text(text.as_bytes()),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_record_rejected() {
        let text = "p sp 1 0\nv 0 0 0\nq nope\n";
        assert!(matches!(
            read_text(text.as_bytes()),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn node_ids_may_arrive_out_of_order() {
        let text = "p sp 3 0\nv 2 2 0\nv 0 0 0\nv 1 1 0\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.point(2).x, 2.0);
    }
}
