//! Dial's bucket queue — a drop-in [`MinHeap`] alternative for Dijkstra
//! over bounded `u32` edge weights.
//!
//! Dijkstra's tentative keys always lie in `[cur, cur + C]`, where `cur`
//! is the last settled distance and `C` the maximum edge weight, so a
//! circular array of `C + 1` buckets indexed by `key mod (C + 1)` holds
//! every live entry unambiguously. Push is O(1); pop advances a cursor
//! monotonically, costing O(total distance range) over a whole search —
//! cheaper than heap sift-downs on the short, uniform weights road
//! networks have. The queue is *lazy* exactly like [`MinHeap`]: Dijkstra
//! pushes duplicates and skips stale pops, so ties settle in a
//! queue-specific order but distances are always exact.
//!
//! [`QueuePolicy`] selects between the two queues; `Auto` picks buckets
//! whenever the graph's maximum edge weight is small enough for the
//! bucket array to stay cache-friendly *and* the expected search depth is
//! large enough for the cursor scan to amortize (early-terminating
//! point-to-point searches over large-weight graphs stay on the heap —
//! see [`QueuePolicy::resolve_for`]).

use crate::graph::{NodeId, RoadNetwork, Weight};
use crate::heap::MinHeap;
use crate::Distance;

/// Largest maximum edge weight for which [`QueuePolicy::Auto`] still
/// chooses the bucket queue (beyond it the bucket array and the cursor
/// scan stop paying off).
pub const AUTO_BUCKET_MAX_WEIGHT: Weight = 1 << 16;

/// Priority-queue selection for Dijkstra runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// The 4-ary [`MinHeap`] (always applicable).
    #[default]
    Heap,
    /// Dial's bucket queue (requires bounded weights; panics on graphs
    /// whose maximum edge weight exceeds what the caller sized for).
    Bucket,
    /// Buckets when `max_weight <= AUTO_BUCKET_MAX_WEIGHT`, heap otherwise.
    Auto,
}

impl QueuePolicy {
    /// Resolves `Auto` against a concrete graph for a full (exhaustive)
    /// search.
    pub fn resolve(self, g: &RoadNetwork) -> QueuePolicy {
        self.resolve_for(g.max_weight(), None)
    }

    /// Resolves `Auto` against a concrete graph for a search expected to
    /// settle about `expected_settled` nodes (`None` = exhaustive).
    pub fn resolve_for_search(
        self,
        g: &RoadNetwork,
        expected_settled: Option<usize>,
    ) -> QueuePolicy {
        self.resolve_for(g.max_weight(), expected_settled)
    }

    /// Resolves `Auto` from a maximum edge weight and an expected settle
    /// count, without needing a [`RoadNetwork`] (client-side stores track
    /// their own maximum received weight).
    ///
    /// The bucket queue's pop cost is a cursor scan over the settled
    /// distance range, which amortizes beautifully on exhaustive searches
    /// but loses to the heap on early-terminating point-to-point queries
    /// over large-weight graphs: the scan still walks the whole distance
    /// range while the heap only pays `settled × log(settled)` sift work.
    /// `Auto` therefore models the scan as `sqrt(settled) × max_weight`
    /// (≈ hop count on planar road networks times the per-hop range
    /// growth envelope) and picks buckets only when that does not exceed
    /// the heap's `settled × log2(settled)`.
    pub fn resolve_for(self, max_weight: Weight, expected_settled: Option<usize>) -> QueuePolicy {
        match self {
            QueuePolicy::Auto => {
                if max_weight > AUTO_BUCKET_MAX_WEIGHT {
                    return QueuePolicy::Heap;
                }
                match expected_settled {
                    None => QueuePolicy::Bucket,
                    Some(s) => {
                        let s = s.max(2) as u64;
                        let heap_work = s * u64::from(s.ilog2());
                        let scan_work = ((s as f64).sqrt() as u64).max(1) * u64::from(max_weight);
                        if scan_work <= heap_work {
                            QueuePolicy::Bucket
                        } else {
                            QueuePolicy::Heap
                        }
                    }
                }
            }
            other => other,
        }
    }
}

/// The operations Dijkstra needs from a priority queue. Implemented by
/// [`MinHeap`] and [`BucketQueue`] so the search loops are generic.
pub trait DijkstraQueue {
    /// Removes all entries (keeps allocations).
    fn clear(&mut self);
    /// Queues `item` at `key`.
    fn push(&mut self, key: Distance, item: NodeId);
    /// Removes and returns a minimum-key entry.
    fn pop(&mut self) -> Option<(Distance, NodeId)>;
}

impl DijkstraQueue for MinHeap<NodeId> {
    #[inline]
    fn clear(&mut self) {
        MinHeap::clear(self);
    }

    #[inline]
    fn push(&mut self, key: Distance, item: NodeId) {
        MinHeap::push(self, key, item);
    }

    #[inline]
    fn pop(&mut self) -> Option<(Distance, NodeId)> {
        MinHeap::pop(self).map(|e| (e.key, e.item))
    }
}

/// Sentinel for "no entry" in the bucket head and chain arrays.
const NIL: u32 = u32::MAX;

/// Dial's circular bucket queue, flattened: instead of one `Vec` per
/// bucket, every bucket is an intrusive stack threaded through a shared
/// entry arena (`head[slot]` -> `next` chain). The cursor scan is
/// branch-free over a u64 occupancy bitmap — `trailing_zeros` per word
/// instead of one `u32` probe per empty bucket — creating a queue costs
/// two flat allocations, and drained entries recycle through a free
/// list — no per-bucket allocations at all.
#[derive(Debug, Clone)]
pub struct BucketQueue {
    /// Arena index of each bucket's top entry (`NIL` = empty).
    head: Vec<u32>,
    /// Occupancy bitmap over `head`: bit `s % 64` of word `s / 64` is set
    /// iff `head[s] != NIL`. The pop cursor advances by `trailing_zeros`
    /// over whole words instead of probing one `u32` per empty bucket, so
    /// a scan across `k` empty buckets costs `k / 64` word loads.
    occupied: Vec<u64>,
    /// Entry arena: the queued node...
    items: Vec<NodeId>,
    /// ...and the next entry below it in the same bucket (or `NIL`).
    next: Vec<u32>,
    /// Head of the free list threaded through `next`.
    free: u32,
    /// Key the cursor currently points at.
    cur: Distance,
    /// Live entries (including stale duplicates).
    len: usize,
}

impl BucketQueue {
    /// Queue for searches whose edge weights never exceed `max_weight`.
    pub fn new(max_weight: Weight) -> Self {
        let span = max_weight as usize + 1;
        Self {
            head: vec![NIL; span],
            occupied: vec![0; span.div_ceil(64)],
            items: Vec::new(),
            next: Vec::new(),
            free: NIL,
            cur: 0,
            len: 0,
        }
    }

    /// Queue sized for `g`'s maximum edge weight.
    pub fn for_graph(g: &RoadNetwork) -> Self {
        Self::new(g.max_weight())
    }

    /// Number of queued entries (including stale duplicates).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn span(&self) -> Distance {
        self.head.len() as Distance
    }

    /// First occupied slot at or circularly after `start`. Scans the
    /// occupancy bitmap a word at a time: the first word is masked below
    /// `start`, every later probe is a whole-word `trailing_zeros`. Must
    /// only be called with at least one live entry.
    #[inline]
    fn next_occupied(&self, start: usize) -> usize {
        let nwords = self.occupied.len();
        let w0 = start / 64;
        let masked = self.occupied[w0] & (!0u64 << (start % 64));
        if masked != 0 {
            return w0 * 64 + masked.trailing_zeros() as usize;
        }
        // Wrap once around the circular window; the final iteration
        // revisits `w0` unmasked, covering slots below `start`.
        for i in 1..=nwords {
            let w = (w0 + i) % nwords;
            let word = self.occupied[w];
            if word != 0 {
                return w * 64 + word.trailing_zeros() as usize;
            }
        }
        unreachable!("occupancy bitmap empty with len > 0")
    }
}

impl DijkstraQueue for BucketQueue {
    fn clear(&mut self) {
        self.head.fill(NIL);
        self.occupied.fill(0);
        self.items.clear();
        self.next.clear();
        self.free = NIL;
        self.cur = 0;
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, key: Distance, item: NodeId) {
        if self.len == 0 || key < self.cur {
            // Re-anchor on the first push of a search (or a refill after
            // a drain), and allow the cursor to move back for pre-pop
            // batch loading. The caller must keep all live keys within
            // one span of each other — Dijkstra does, since every pushed
            // key is `settled + w <= settled + max_weight`.
            self.cur = key;
        }
        // A real assert (not debug): an undersized queue would otherwise
        // silently alias buckets and drop nodes in release builds.
        assert!(
            key - self.cur < self.span(),
            "key {key} outside bucket window [{}, {})",
            self.cur,
            self.cur + self.span()
        );
        let slot = (key % self.span()) as usize;
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
        let e = if self.free != NIL {
            let e = self.free;
            self.free = self.next[e as usize];
            self.items[e as usize] = item;
            self.next[e as usize] = self.head[slot];
            e
        } else {
            let e = self.items.len() as u32;
            self.items.push(item);
            self.next.push(self.head[slot]);
            e
        };
        self.head[slot] = e;
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<(Distance, NodeId)> {
        if self.len == 0 {
            return None;
        }
        let span = self.span();
        let start = (self.cur % span) as usize;
        let slot = self.next_occupied(start);
        // Circular distance from the cursor's slot to the found slot; all
        // live keys sit in `[cur, cur + span)` (push asserts it), so this
        // is exactly how far the cursor advances.
        self.cur += (slot as Distance + span - start as Distance) % span;
        let e = self.head[slot];
        self.head[slot] = self.next[e as usize];
        if self.head[slot] == NIL {
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.next[e as usize] = self.free;
        self.free = e;
        self.len -= 1;
        Some((self.cur, self.items[e as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_key_order() {
        let mut q = BucketQueue::new(9);
        for &k in &[5u64, 3, 9, 1, 7] {
            q.push(k, k as u32);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = q.pop() {
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = BucketQueue::new(4);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn window_slides_with_pops() {
        // Dijkstra-like usage: pushed keys stay within max_weight of the
        // last popped key, across a range far larger than the bucket count.
        let mut q = BucketQueue::new(10);
        q.push(0, 0);
        let mut last = 0;
        for i in 0..1000u64 {
            let (k, _) = q.pop().unwrap();
            assert!(k >= last);
            last = k;
            q.push(k + 3 + (i % 8), i as u32);
        }
    }

    #[test]
    fn clear_resets_cursor() {
        let mut q = BucketQueue::new(5);
        q.push(3, 1);
        q.pop();
        q.clear();
        q.push(0, 2);
        assert_eq!(q.pop(), Some((0, 2)));
    }

    #[test]
    fn refill_after_drain_reanchors() {
        let mut q = BucketQueue::new(5);
        q.push(2, 1);
        assert_eq!(q.pop(), Some((2, 1)));
        assert!(q.pop().is_none());
        // Cursor was at 2; a fresh push below span must still work.
        q.push(100, 7);
        assert_eq!(q.pop(), Some((100, 7)));
    }

    #[test]
    fn auto_resolves_by_weight_for_full_searches() {
        assert_eq!(
            QueuePolicy::Auto.resolve_for(100, None),
            QueuePolicy::Bucket
        );
        assert_eq!(
            QueuePolicy::Auto.resolve_for(AUTO_BUCKET_MAX_WEIGHT + 1, None),
            QueuePolicy::Heap
        );
    }

    #[test]
    fn auto_considers_expected_search_depth() {
        // Early-terminating search over large weights: the cursor scan
        // (~sqrt(s) * max_weight) dwarfs the heap work -> Heap.
        assert_eq!(
            QueuePolicy::Auto.resolve_for(30_000, Some(2_500)),
            QueuePolicy::Heap
        );
        // Same depth over unit-ish weights: scan is trivial -> Bucket.
        assert_eq!(
            QueuePolicy::Auto.resolve_for(16, Some(2_500)),
            QueuePolicy::Bucket
        );
        // Deep searches amortize the scan even at moderate weights.
        assert_eq!(
            QueuePolicy::Auto.resolve_for(200, Some(1_000_000)),
            QueuePolicy::Bucket
        );
    }

    #[test]
    fn explicit_policies_never_change() {
        for s in [None, Some(10), Some(1_000_000)] {
            assert_eq!(QueuePolicy::Heap.resolve_for(1, s), QueuePolicy::Heap);
            assert_eq!(
                QueuePolicy::Bucket.resolve_for(u32::MAX, s),
                QueuePolicy::Bucket
            );
        }
    }

    #[test]
    fn bitmap_scan_crosses_word_boundaries_and_wraps() {
        // Span of 130 slots = 3 bitmap words; keys land so the scan must
        // skip whole empty words and wrap the circular window.
        let mut q = BucketQueue::new(129);
        q.push(0, 1);
        q.push(127, 2); // last bit of word 1
        q.push(129, 3); // word 2 (partial word)
        assert_eq!(q.pop(), Some((0, 1)));
        assert_eq!(q.pop(), Some((127, 2)));
        assert_eq!(q.pop(), Some((129, 3)));
        // Cursor at 129; the next window wraps: slot(200) = 70 < slot(129).
        q.push(200, 4);
        q.push(255, 5);
        assert_eq!(q.pop(), Some((200, 4)));
        assert_eq!(q.pop(), Some((255, 5)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn bitmap_clears_only_when_bucket_drains() {
        // Two entries in one bucket: the occupancy bit must survive the
        // first pop (LIFO within a bucket), then clear on the second.
        let mut q = BucketQueue::new(7);
        q.push(3, 10);
        q.push(3, 11);
        assert_eq!(q.pop(), Some((3, 11)));
        assert_eq!(q.pop(), Some((3, 10)));
        assert!(q.pop().is_none());
        q.push(4, 12);
        assert_eq!(q.pop(), Some((4, 12)));
    }

    #[test]
    fn matches_heap_on_sliding_random_workload() {
        let mut rng = StdRng::seed_from_u64(0xD1A1);
        let mut q = BucketQueue::new(100);
        let mut h = MinHeap::new();
        let mut floor = 0u64;
        for _ in 0..2000 {
            if rng.gen_bool(0.6) || h.is_empty() {
                let k = floor + rng.gen_range(0..100u64);
                q.push(k, 0);
                DijkstraQueue::push(&mut h, k, 0);
            } else {
                let (bk, _) = q.pop().unwrap();
                let (hk, _) = DijkstraQueue::pop(&mut h).unwrap();
                assert_eq!(bk, hk);
                floor = bk;
            }
        }
    }
}
