//! Synthetic road-network generation.
//!
//! The paper evaluates on five real road maps (Milan, Germany, Argentina,
//! India, San Francisco) that are not redistributable here. The generator
//! reproduces the *properties that the measured quantities depend on*:
//! exact node/edge counts, road-like sparsity (average degree ~2-2.5),
//! near-planarity, spatial locality (edges connect nearby nodes), and
//! length-correlated weights.
//!
//! Construction: nodes are laid out on a jittered grid; candidate edges
//! connect grid neighbours (with occasional diagonals); a random spanning
//! tree drawn from the candidates guarantees connectivity and produces the
//! meandering minor roads of real maps; the remaining edge budget is spent
//! on randomly chosen leftover candidates (local cycles, like real street
//! blocks). Weights are quantized Euclidean lengths with a per-edge detour
//! factor, so network distance correlates with — but is not equal to —
//! Euclidean distance, matching the paper's assumption that no Euclidean
//! lower bound exists (§4, footnote 1).

use crate::graph::{GraphBuilder, NodeId, Point, RoadNetwork, Weight};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The five evaluation networks of the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkPreset {
    /// Milan: 14 021 nodes, 26 849 edges.
    Milan,
    /// Germany: 28 867 nodes, 30 429 edges (the paper's default network).
    Germany,
    /// Argentina: 85 287 nodes, 88 357 edges.
    Argentina,
    /// India: 149 566 nodes, 155 483 edges.
    India,
    /// San Francisco: 174 956 nodes, 223 001 edges.
    SanFrancisco,
}

impl NetworkPreset {
    /// All presets, smallest to largest.
    pub const ALL: [NetworkPreset; 5] = [
        NetworkPreset::Milan,
        NetworkPreset::Germany,
        NetworkPreset::Argentina,
        NetworkPreset::India,
        NetworkPreset::SanFrancisco,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkPreset::Milan => "Milan",
            NetworkPreset::Germany => "Germany",
            NetworkPreset::Argentina => "Argentina",
            NetworkPreset::India => "India",
            NetworkPreset::SanFrancisco => "San Francisco",
        }
    }

    /// `(nodes, undirected edges)` as reported in Table 2 of the paper.
    pub fn size(&self) -> (usize, usize) {
        match self {
            NetworkPreset::Milan => (14_021, 26_849),
            NetworkPreset::Germany => (28_867, 30_429),
            NetworkPreset::Argentina => (85_287, 88_357),
            NetworkPreset::India => (149_566, 155_483),
            NetworkPreset::SanFrancisco => (174_956, 223_001),
        }
    }

    /// Generator configuration for this preset at full paper scale.
    pub fn config(&self, seed: u64) -> GeneratorConfig {
        let (nodes, edges) = self.size();
        GeneratorConfig {
            nodes,
            undirected_edges: edges,
            seed,
            ..GeneratorConfig::default()
        }
    }

    /// Generator configuration scaled down by `factor` (0 < factor <= 1),
    /// preserving the edge/node ratio. Used by the experiment runners to
    /// keep single-core runtimes reasonable; `--full` restores factor 1.
    pub fn scaled_config(&self, seed: u64, factor: f64) -> GeneratorConfig {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let (nodes, edges) = self.size();
        let n = ((nodes as f64 * factor) as usize).max(16);
        let ratio = edges as f64 / nodes as f64;
        let e = ((n as f64 * ratio) as usize).max(n - 1);
        GeneratorConfig {
            nodes: n,
            undirected_edges: e,
            seed,
            ..GeneratorConfig::default()
        }
    }

    /// Generator configuration for this preset's topology class at an
    /// explicit node count, preserving the edge/node ratio. Unlike
    /// [`NetworkPreset::scaled_config`] the count may exceed the paper's
    /// Table 2 size — the load harness uses this for its paper-scale
    /// "germany-class" networks (~100k+ nodes).
    pub fn config_for_nodes(&self, seed: u64, nodes: usize) -> GeneratorConfig {
        assert!(nodes >= 16, "need at least 16 nodes");
        let (pn, pe) = self.size();
        let ratio = pe as f64 / pn as f64;
        let e = ((nodes as f64 * ratio) as usize).max(nodes - 1);
        GeneratorConfig {
            nodes,
            undirected_edges: e,
            seed,
            ..GeneratorConfig::default()
        }
    }

    /// Generates the network at full scale.
    pub fn generate(&self, seed: u64) -> RoadNetwork {
        self.config(seed).generate()
    }
}

/// Parameters of the synthetic road-network generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected road segments (two directed edges each).
    /// Must be at least `nodes - 1` so a connected network exists.
    pub nodes_jitter: f64,
    /// Undirected edge budget.
    pub undirected_edges: usize,
    /// RNG seed; identical configs generate identical networks.
    pub seed: u64,
    /// Grid spacing between adjacent intersections (coordinate units).
    pub spacing: f64,
    /// Probability of offering a diagonal candidate edge per grid cell.
    pub diagonal_prob: f64,
    /// Maximum multiplicative detour factor applied to Euclidean lengths
    /// when deriving weights (uniform in `[1, 1 + detour]`).
    pub detour: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            nodes: 1024,
            nodes_jitter: 0.35,
            undirected_edges: 1536,
            seed: 42,
            spacing: 100.0,
            diagonal_prob: 0.25,
            detour: 0.4,
        }
    }
}

impl GeneratorConfig {
    /// Generates the road network.
    ///
    /// Panics if `undirected_edges < nodes - 1` (a connected road network
    /// cannot exist) or if `nodes == 0`.
    pub fn generate(&self) -> RoadNetwork {
        assert!(self.nodes > 0, "need at least one node");
        assert!(
            self.undirected_edges + 1 >= self.nodes,
            "edge budget {} too small for {} nodes",
            self.undirected_edges,
            self.nodes
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.nodes;

        // Node layout: jittered grid, roughly square.
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let mut builder = GraphBuilder::with_capacity(n, 2 * self.undirected_edges);
        for i in 0..n {
            let r = i / cols;
            let c = i % cols;
            let jx = rng.gen_range(-self.nodes_jitter..self.nodes_jitter) * self.spacing;
            let jy = rng.gen_range(-self.nodes_jitter..self.nodes_jitter) * self.spacing;
            builder.add_node(Point::new(
                c as f64 * self.spacing + jx,
                r as f64 * self.spacing + jy,
            ));
        }
        let _ = rows;

        // Candidate undirected edges: grid neighbours + occasional diagonals.
        let mut candidates: Vec<(NodeId, NodeId)> = Vec::with_capacity(3 * n);
        let idx = |r: usize, c: usize| (r * cols + c) as NodeId;
        for i in 0..n {
            let r = i / cols;
            let c = i % cols;
            if c + 1 < cols && i + 1 < n {
                candidates.push((idx(r, c), idx(r, c + 1)));
            }
            if (r + 1) * cols + c < n {
                candidates.push((idx(r, c), idx(r + 1, c)));
            }
            if c + 1 < cols && (r + 1) * cols + c + 1 < n && rng.gen_bool(self.diagonal_prob) {
                if rng.gen_bool(0.5) {
                    candidates.push((idx(r, c), idx(r + 1, c + 1)));
                } else if (r + 1) * cols + c < n && r * cols + c + 1 < n {
                    candidates.push((idx(r, c + 1), idx(r + 1, c)));
                }
            }
        }
        candidates.shuffle(&mut rng);

        // Random spanning tree via union-find over shuffled candidates.
        let mut uf = UnionFind::new(n);
        let mut chosen: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.undirected_edges);
        let mut leftovers: Vec<(NodeId, NodeId)> = Vec::new();
        for &(a, b) in &candidates {
            if uf.union(a as usize, b as usize) {
                chosen.push((a, b));
            } else {
                leftovers.push((a, b));
            }
        }
        debug_assert_eq!(chosen.len(), n - 1, "grid candidates must span the grid");

        // Spend the remaining budget on leftover candidates (local cycles).
        let extra = self.undirected_edges - chosen.len();
        if extra <= leftovers.len() {
            chosen.extend(leftovers.into_iter().take(extra));
        } else {
            // Denser than the grid offers (e.g. San Francisco's 1.27
            // edges/node with many diagonals): top up with random
            // short-range links between nearby rows.
            chosen.extend(leftovers);
            let mut still = self.undirected_edges - chosen.len();
            while still > 0 {
                let a = rng.gen_range(0..n);
                let r = a / cols;
                let c = a % cols;
                let dr = rng.gen_range(0..3usize);
                let dc = rng.gen_range(0..3usize);
                let (r2, c2) = (r + dr, c + dc);
                if r2 * cols + c2 < n && (dr, dc) != (0, 0) && c2 < cols {
                    let b = r2 * cols + c2;
                    chosen.push((a as NodeId, b as NodeId));
                    still -= 1;
                }
            }
        }

        // Materialize with detour-factored Euclidean weights.
        for (a, b) in chosen {
            let w = self.edge_weight(&builder, a, b, &mut rng);
            builder.add_undirected_edge(a, b, w);
        }
        builder.finish()
    }

    fn edge_weight(
        &self,
        builder: &GraphBuilder,
        a: NodeId,
        b: NodeId,
        rng: &mut StdRng,
    ) -> Weight {
        // GraphBuilder does not expose points; recompute from layout is
        // avoided by keeping a parallel accessor below.
        let pa = builder_point(builder, a);
        let pb = builder_point(builder, b);
        let factor = 1.0 + rng.gen_range(0.0..self.detour);
        let w = (pa.euclidean(&pb) * factor).round() as u32;
        w.max(1)
    }
}

// The builder owns its points privately; this helper lives here (same
// crate) and reads them through a crate-internal accessor.
fn builder_point(b: &GraphBuilder, v: NodeId) -> Point {
    b.point_internal(v)
}

impl GraphBuilder {
    /// Crate-internal coordinate accessor used by the generator.
    pub(crate) fn point_internal(&self, v: NodeId) -> Point {
        self.points_internal()[v as usize]
    }
}

/// Small array-based union-find for the spanning-tree pass.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Returns true if the two sets were merged (i.e. were separate).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// Convenience: a small jittered `w x h` grid network for tests/examples.
pub fn small_grid(w: usize, h: usize, seed: u64) -> RoadNetwork {
    let nodes = w * h;
    GeneratorConfig {
        nodes,
        undirected_edges: (nodes as f64 * 1.4) as usize,
        seed,
        ..GeneratorConfig::default()
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_full;

    #[test]
    fn exact_requested_counts() {
        let cfg = GeneratorConfig {
            nodes: 500,
            undirected_edges: 700,
            seed: 1,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        assert_eq!(g.num_nodes(), 500);
        assert_eq!(g.num_edges(), 1400); // two directed per undirected
    }

    #[test]
    fn generated_network_is_connected() {
        for seed in 0..5 {
            let cfg = GeneratorConfig {
                nodes: 300,
                undirected_edges: 400,
                seed,
                ..GeneratorConfig::default()
            };
            let g = cfg.generate();
            let t = dijkstra_full(&g, 0);
            assert!(
                g.node_ids().all(|v| t.reachable(v)),
                "seed {seed} produced a disconnected network"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig {
            nodes: 200,
            undirected_edges: 260,
            seed: 9,
            ..GeneratorConfig::default()
        };
        let g1 = cfg.generate();
        let g2 = cfg.generate();
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.node_ids() {
            let e1: Vec<_> = g1.out_edges(v).collect();
            let e2: Vec<_> = g2.out_edges(v).collect();
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            GeneratorConfig {
                nodes: 200,
                undirected_edges: 260,
                seed,
                ..GeneratorConfig::default()
            }
            .generate()
        };
        let g1 = mk(1);
        let g2 = mk(2);
        let same = g1
            .node_ids()
            .all(|v| g1.out_edges(v).collect::<Vec<_>>() == g2.out_edges(v).collect::<Vec<_>>());
        assert!(!same);
    }

    #[test]
    fn weights_positive_and_length_correlated() {
        let g = small_grid(20, 20, 3);
        for v in g.node_ids() {
            for (u, w) in g.out_edges(v) {
                assert!(w >= 1);
                let eu = g.point(v).euclidean(&g.point(u));
                assert!(
                    (w as f64) >= eu * 0.99 && (w as f64) <= eu * 1.5 + 1.0,
                    "weight {w} vs euclid {eu}"
                );
            }
        }
    }

    #[test]
    fn presets_have_paper_sizes() {
        assert_eq!(NetworkPreset::Germany.size(), (28_867, 30_429));
        assert_eq!(NetworkPreset::SanFrancisco.size(), (174_956, 223_001));
        let cfg = NetworkPreset::Milan.config(7);
        assert_eq!(cfg.nodes, 14_021);
        assert_eq!(cfg.undirected_edges, 26_849);
    }

    #[test]
    fn config_for_nodes_scales_past_table2() {
        let cfg = NetworkPreset::Germany.config_for_nodes(1, 100_000);
        assert_eq!(cfg.nodes, 100_000);
        let (pn, pe) = NetworkPreset::Germany.size();
        let want_ratio = pe as f64 / pn as f64;
        let got_ratio = cfg.undirected_edges as f64 / cfg.nodes as f64;
        assert!((want_ratio - got_ratio).abs() < 0.01);
        // Small explicit counts stay connected-generatable.
        let g = NetworkPreset::Germany.config_for_nodes(3, 400).generate();
        assert_eq!(g.num_nodes(), 400);
        let t = dijkstra_full(&g, 0);
        assert!(g.node_ids().all(|v| t.reachable(v)));
    }

    #[test]
    fn scaled_config_preserves_ratio() {
        let cfg = NetworkPreset::Germany.scaled_config(1, 0.1);
        let (n, e) = NetworkPreset::Germany.size();
        assert!((cfg.nodes as f64 - n as f64 * 0.1).abs() < 2.0);
        let want_ratio = e as f64 / n as f64;
        let got_ratio = cfg.undirected_edges as f64 / cfg.nodes as f64;
        assert!((want_ratio - got_ratio).abs() < 0.05);
    }

    #[test]
    fn dense_preset_ratio_generates() {
        // San-Francisco-like density exercises the top-up path.
        let cfg = NetworkPreset::SanFrancisco.scaled_config(5, 0.01);
        let g = cfg.generate();
        assert_eq!(g.num_nodes(), cfg.nodes);
        assert_eq!(g.num_edges(), 2 * cfg.undirected_edges);
        let t = dijkstra_full(&g, 0);
        assert!(g.node_ids().all(|v| t.reachable(v)));
    }

    #[test]
    #[should_panic(expected = "edge budget")]
    fn too_few_edges_panics() {
        GeneratorConfig {
            nodes: 100,
            undirected_edges: 50,
            seed: 0,
            ..GeneratorConfig::default()
        }
        .generate();
    }
}
