//! Shortest-path tree produced by a full Dijkstra run.
//!
//! Besides distances and parent pointers, the tree records the *settle
//! order* (nodes in nondecreasing distance). The order is what makes the
//! O(V)-per-source dynamic programs of the index builders possible:
//! forward scans propagate information from parents to children (e.g. the
//! set of regions a path has traversed), reverse scans propagate from
//! children to parents (e.g. "lies on a path towards some border node").

use crate::graph::NodeId;
use crate::{Distance, DIST_INF};

/// Sentinel parent for the source node and unreachable nodes.
pub const NO_PARENT: NodeId = NodeId::MAX;

/// A complete single-source shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<Distance>,
    parent: Vec<NodeId>,
    order: Vec<NodeId>,
}

impl ShortestPathTree {
    /// Assembles a tree from raw Dijkstra output.
    pub(crate) fn new(
        source: NodeId,
        dist: Vec<Distance>,
        parent: Vec<NodeId>,
        order: Vec<NodeId>,
    ) -> Self {
        Self {
            source,
            dist,
            parent,
            order,
        }
    }

    /// The tree's source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v` (`DIST_INF` if unreachable).
    #[inline]
    pub fn distance(&self, v: NodeId) -> Distance {
        self.dist[v as usize]
    }

    /// Whether `v` is reachable from the source.
    #[inline]
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v as usize] != DIST_INF
    }

    /// Parent of `v` in the tree, if any.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// Raw distance slice.
    #[inline]
    pub fn distances(&self) -> &[Distance] {
        &self.dist
    }

    /// Nodes in nondecreasing distance (settle) order. The source is first.
    #[inline]
    pub fn settle_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Reconstructs the path `source -> v` as a node sequence.
    ///
    /// Returns `None` if `v` is unreachable. The returned path starts at the
    /// source and ends at `v`; for `v == source` it is the singleton path.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// Number of hops (edges) of the tree path to `v`, or `None` if
    /// unreachable.
    pub fn hops_to(&self, v: NodeId) -> Option<usize> {
        if !self.reachable(v) {
            return None;
        }
        let mut hops = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            hops += 1;
            cur = p;
        }
        Some(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_full;
    use crate::graph::{GraphBuilder, Point};

    fn line_graph(n: usize) -> crate::RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        for i in 0..n - 1 {
            b.add_undirected_edge(i as NodeId, (i + 1) as NodeId, 2);
        }
        b.finish()
    }

    #[test]
    fn path_reconstruction_on_line() {
        let g = line_graph(5);
        let t = dijkstra_full(&g, 0);
        assert_eq!(t.path_to(4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.distance(4), 8);
        assert_eq!(t.hops_to(4), Some(4));
    }

    #[test]
    fn source_path_is_singleton() {
        let g = line_graph(3);
        let t = dijkstra_full(&g, 1);
        assert_eq!(t.path_to(1).unwrap(), vec![1]);
        assert_eq!(t.hops_to(1), Some(0));
        assert_eq!(t.parent(1), None);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        let t = dijkstra_full(&g, 0);
        assert!(!t.reachable(1));
        assert!(t.path_to(1).is_none());
        assert!(t.hops_to(1).is_none());
    }

    #[test]
    fn settle_order_is_nondecreasing_distance() {
        let g = line_graph(10);
        let t = dijkstra_full(&g, 3);
        let order = t.settle_order();
        assert_eq!(order[0], 3);
        for w in order.windows(2) {
            assert!(t.distance(w[0]) <= t.distance(w[1]));
        }
        // All reachable nodes appear exactly once.
        let mut seen = [false; 10];
        for &v in order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
