//! Road-network graph substrate for the air-index reproduction.
//!
//! A road network (paper §2.1) is a directed weighted graph `G = (V, E)`
//! where every node carries planar coordinates and every edge a non-negative
//! `u32` weight (length, travel time, toll, ...). This crate provides:
//!
//! * [`RoadNetwork`] — a compact CSR (compressed sparse row) representation
//!   with forward and reverse adjacency, built through [`GraphBuilder`];
//! * shortest-path machinery: [`dijkstra`] (full / target-pruned / bounded /
//!   subgraph-restricted), [`astar`] with pluggable lower bounds, and
//!   [`ShortestPathTree`] utilities for path extraction and tree DP;
//! * [`generators`] — synthetic road networks with road-like topology and
//!   presets matching the five networks evaluated in the paper;
//! * [`io`] — a DIMACS-like text format so real datasets can be dropped in;
//! * [`snap`] — nearest-node snapping for arbitrary (off-node) locations.
//!
//! All randomness is seeded; everything in this crate is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod bench_out;
pub mod bidirectional;
pub mod bucket_queue;
pub mod dijkstra;
pub mod first_hop;
pub mod generators;
pub mod graph;
pub mod heap;
pub mod io;
pub mod parallel;
pub mod snap;
pub mod split;
pub mod sptree;

pub use astar::{astar_distance, ZeroBound};
pub use bidirectional::{bidirectional_distance, bidirectional_search, bidirectional_search_paths};
pub use bucket_queue::{BucketQueue, DijkstraQueue, QueuePolicy};
pub use dijkstra::{
    dijkstra_distance, dijkstra_filtered, dijkstra_filtered_with, dijkstra_full,
    dijkstra_to_target, DijkstraOptions, SearchStats,
};
pub use first_hop::{first_hops_from_tree, first_hops_from_workspace, NO_FIRST_HOP};
pub use generators::{GeneratorConfig, NetworkPreset};
pub use graph::{EdgeId, GraphBuilder, NodeId, Point, RoadNetwork, Weight};
pub use heap::MinHeap;
pub use snap::NodeLocator;
pub use split::{insert_positions, EdgePosition};
pub use sptree::ShortestPathTree;

/// Graph distance accumulator type.
///
/// Edge weights are `u32`; path distances accumulate in `u64` so that no
/// realistic path can overflow. `DIST_INF` marks unreachable nodes.
pub type Distance = u64;

/// Sentinel distance for unreachable nodes.
pub const DIST_INF: Distance = u64::MAX;
