//! First-hop propagation: which out-edge of a tree's root does every
//! node's shortest path leave through?
//!
//! This is the per-root quantity behind Samet et al.'s shortest-path
//! quadtrees (SPQ, paper §2.1): every node `t` is *colored* by the index
//! of the root edge its shortest path takes first. The naive computation
//! reconstructs the `root -> t` path per target (O(V · path length) per
//! root); the sweep here derives every color in **one pass over the
//! settle order** of an already-run search:
//!
//! * the root itself gets [`NO_FIRST_HOP`];
//! * a node whose tree parent *is* the root seeds its own color — the
//!   position of that node in the root's out-edge list;
//! * every other node inherits its parent's color
//!   (`color[t] = color[parent(t)]`).
//!
//! The settle order makes the single sweep sound: Dijkstra only relaxes
//! out of settled nodes, so a node's final parent is always settled —
//! and therefore already colored — before the node itself, **including
//! across zero-weight edges** (the parent popped first even when child
//! and parent distances tie).
//!
//! # Tie rule
//!
//! Colors are only unique when shortest paths are; on ties the sweep
//! commits to the parents the driving search chose, which for
//! [`dijkstra_full`](crate::dijkstra::dijkstra_full) and the heap-driven
//! [`DijkstraWorkspace`] (identical settle order by construction) means:
//!
//! * relaxation replaces a parent only on a **strict** distance
//!   improvement (`cand < dist`), so among equal-distance predecessors
//!   the one that *first* achieved the final distance wins and later
//!   equal candidates never overwrite it;
//! * with parallel root edges to the same neighbor, the color is the
//!   **first** matching position in the root's out-edge list.
//!
//! Any consumer that compares colors against a freshly run
//! `dijkstra_full` (the SPQ differential tests do) must drive the sweep
//! from a search sharing this rule — a bucket-queue search settles
//! equal-distance nodes in a different order and may pick different
//! (equally shortest) parents.

use crate::dijkstra::DijkstraWorkspace;
use crate::graph::{NodeId, RoadNetwork};
use crate::sptree::ShortestPathTree;

/// Color of the root itself, of unreachable nodes, and of nodes whose
/// first hop is beyond the 255 addressable out-edge positions.
pub const NO_FIRST_HOP: u8 = u8::MAX;

/// Core sweep shared by the tree and workspace entry points.
///
/// `order` must be a valid settle order (every node's parent precedes
/// it); `parent` reports the tree parent of a settled node.
fn sweep(
    g: &RoadNetwork,
    order: &[NodeId],
    parent: impl Fn(NodeId) -> Option<NodeId>,
    out: &mut [u8],
) {
    assert_eq!(
        g.num_nodes(),
        out.len(),
        "color buffer sized for a different graph"
    );
    out.fill(NO_FIRST_HOP);
    let Some(&root) = order.first() else {
        return;
    };
    // The root's direct neighbors seed their own edge index. Parallel
    // edges: the first position wins; positions >= 255 are inexpressible
    // in a u8 color and stay NO_FIRST_HOP.
    let first_edges: Vec<NodeId> = g.out_edges(root).map(|(u, _)| u).collect();
    let seed_color = |u: NodeId| -> u8 {
        first_edges
            .iter()
            .position(|&x| x == u)
            .filter(|&i| i < NO_FIRST_HOP as usize)
            .map(|i| i as u8)
            .unwrap_or(NO_FIRST_HOP)
    };
    for &u in &order[1..] {
        out[u as usize] = match parent(u) {
            Some(p) if p == root => seed_color(u),
            Some(p) => out[p as usize],
            None => NO_FIRST_HOP,
        };
    }
}

/// Colors every node by its first hop out of `tree`'s source, in one
/// sweep over the settle order. `out` is indexed by node id; the source
/// and unreachable nodes get [`NO_FIRST_HOP`].
pub fn first_hops_from_tree(g: &RoadNetwork, tree: &ShortestPathTree, out: &mut [u8]) {
    sweep(g, tree.settle_order(), |u| tree.parent(u), out);
}

/// [`first_hops_from_tree`] over a [`DijkstraWorkspace`]'s latest run —
/// the allocation-free form the per-root SPQ build loops on (the
/// workspace and `out` are per-worker scratch, reused across roots).
pub fn first_hops_from_workspace(g: &RoadNetwork, ws: &DijkstraWorkspace, out: &mut [u8]) {
    sweep(g, ws.settle_order(), |u| ws.parent(u), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{dijkstra_full, Direction};
    use crate::graph::{GraphBuilder, Point};

    /// Oracle: reconstruct the `root -> t` path and look the first hop up
    /// in the root's out-edge list.
    fn reference_colors(g: &RoadNetwork, tree: &ShortestPathTree) -> Vec<u8> {
        let root = tree.source();
        let first_edges: Vec<NodeId> = g.out_edges(root).map(|(u, _)| u).collect();
        g.node_ids()
            .map(|t| {
                if t == root {
                    return NO_FIRST_HOP;
                }
                match tree.path_to(t) {
                    Some(path) => first_edges
                        .iter()
                        .position(|&x| x == path[1])
                        .filter(|&i| i < NO_FIRST_HOP as usize)
                        .map(|i| i as u8)
                        .unwrap_or(NO_FIRST_HOP),
                    None => NO_FIRST_HOP,
                }
            })
            .collect()
    }

    fn line_with_branch() -> RoadNetwork {
        // 0 -> 1 -> 2 -> 3 and 0 -> 4 -> 3 (tie at 3 depending on weights).
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 4, 1);
        b.add_edge(4, 3, 2);
        b.finish()
    }

    #[test]
    fn colors_match_path_reconstruction() {
        let g = line_with_branch();
        let tree = dijkstra_full(&g, 0);
        let mut dp = vec![0u8; g.num_nodes()];
        first_hops_from_tree(&g, &tree, &mut dp);
        assert_eq!(dp, reference_colors(&g, &tree));
        assert_eq!(dp[0], NO_FIRST_HOP, "root is uncolored");
        assert_eq!(dp[1], 0, "0->1 is edge 0");
        assert_eq!(dp[2], 0, "inherited from 1");
        assert_eq!(dp[4], 1, "0->4 is edge 1");
    }

    #[test]
    fn workspace_sweep_matches_tree_sweep() {
        let g = line_with_branch();
        let tree = dijkstra_full(&g, 0);
        let mut from_tree = vec![0u8; g.num_nodes()];
        first_hops_from_tree(&g, &tree, &mut from_tree);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        ws.run(&g, 0, Direction::Forward);
        let mut from_ws = vec![0u8; g.num_nodes()];
        first_hops_from_workspace(&g, &ws, &mut from_ws);
        assert_eq!(from_tree, from_ws);
    }

    #[test]
    fn zero_weight_edges_color_through_the_tie() {
        // 0 -(0)-> 1 -(0)-> 2: all distances 0; parents must still chain.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        let g = b.finish();
        let tree = dijkstra_full(&g, 0);
        let mut dp = vec![0u8; 3];
        first_hops_from_tree(&g, &tree, &mut dp);
        assert_eq!(dp, vec![NO_FIRST_HOP, 0, 0]);
        assert_eq!(dp[..], reference_colors(&g, &tree)[..]);
    }

    #[test]
    fn unreachable_nodes_stay_uncolored() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        let tree = dijkstra_full(&g, 0);
        let mut dp = vec![7u8; 2];
        first_hops_from_tree(&g, &tree, &mut dp);
        assert_eq!(dp, vec![NO_FIRST_HOP, NO_FIRST_HOP]);
    }

    #[test]
    fn stale_scratch_is_overwritten() {
        let g = line_with_branch();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut dp = vec![0u8; g.num_nodes()];
        ws.run(&g, 0, Direction::Forward);
        first_hops_from_workspace(&g, &ws, &mut dp);
        let first = dp.clone();
        // A different root in between must not leak into a rerun of 0.
        ws.run(&g, 3, Direction::Forward);
        first_hops_from_workspace(&g, &ws, &mut dp);
        ws.run(&g, 0, Direction::Forward);
        first_hops_from_workspace(&g, &ws, &mut dp);
        assert_eq!(dp, first);
    }
}
