//! A* search (paper §2.1) with a pluggable admissible lower bound.
//!
//! The paper dismisses plain A* for general road networks because no a
//! priori lower bound exists, but the Landmark baseline (Goldberg &
//! Harrelson's ALT) supplies one from precomputed landmark distances. The
//! search is written against the [`LowerBound`] trait so the baseline crate
//! can plug its vectors in without copying the algorithm.

use crate::dijkstra::SearchStats;
use crate::graph::{NodeId, RoadNetwork};
use crate::heap::MinHeap;
use crate::sptree::NO_PARENT;
use crate::{Distance, DIST_INF};

/// An admissible lower bound on graph distance `d(v, target)`.
pub trait LowerBound {
    /// Returns a value `<= d(v, target)`. Must be consistent (triangle
    /// inequality with edge weights) for A* to settle each node once.
    fn lower_bound(&self, v: NodeId, target: NodeId) -> Distance;
}

/// The trivial bound: always 0 (degenerates A* to Dijkstra).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroBound;

impl LowerBound for ZeroBound {
    #[inline]
    fn lower_bound(&self, _v: NodeId, _target: NodeId) -> Distance {
        0
    }
}

/// A* point-to-point distance, or `None` if unreachable.
pub fn astar_distance(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    lb: &impl LowerBound,
) -> Option<Distance> {
    astar_search(g, source, target, lb).0.map(|(d, _)| d)
}

/// A* point-to-point search returning `(distance, path)` plus work counters.
pub fn astar_search(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    lb: &impl LowerBound,
) -> (Option<(Distance, Vec<NodeId>)>, SearchStats) {
    let n = g.num_nodes();
    let mut dist = vec![DIST_INF; n];
    let mut parent = vec![NO_PARENT; n];
    let mut settled = vec![false; n];
    let mut heap = MinHeap::with_capacity(64);
    let mut stats = SearchStats::default();

    dist[source as usize] = 0;
    heap.push(lb.lower_bound(source, target), source);

    while let Some(e) = heap.pop() {
        let v = e.item;
        if settled[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        stats.settled += 1;
        if v == target {
            let mut path = vec![v];
            let mut cur = v;
            while parent[cur as usize] != NO_PARENT {
                cur = parent[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return (Some((dist[v as usize], path)), stats);
        }
        let dv = dist[v as usize];
        for (u, w) in g.out_edges(v) {
            stats.relaxed += 1;
            let cand = dv + w as Distance;
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                parent[u as usize] = v;
                heap.push(cand + lb.lower_bound(u, target), u);
            }
        }
    }
    (None, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_distance;
    use crate::graph::{GraphBuilder, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(seed: u64, n: usize, extra: usize) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _i in 0..n {
            b.add_node(Point::new(
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
            ));
        }
        for i in 1..n {
            let p = rng.gen_range(0..i);
            b.add_undirected_edge(p as NodeId, i as NodeId, rng.gen_range(1..50));
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n) as NodeId;
            let c = rng.gen_range(0..n) as NodeId;
            if a != c {
                b.add_undirected_edge(a, c, rng.gen_range(1..50));
            }
        }
        b.finish()
    }

    /// An exact-oracle bound (the strongest admissible bound) for testing.
    struct OracleBound {
        to_target: Vec<Distance>,
    }

    impl LowerBound for OracleBound {
        fn lower_bound(&self, v: NodeId, _t: NodeId) -> Distance {
            self.to_target[v as usize]
        }
    }

    #[test]
    fn zero_bound_matches_dijkstra() {
        for seed in 0..8 {
            let g = random_graph(seed, 50, 40);
            for &(s, t) in &[(0u32, 49u32), (10, 20), (5, 5)] {
                assert_eq!(
                    astar_distance(&g, s, t, &ZeroBound),
                    dijkstra_distance(&g, s, t),
                    "seed {seed} pair {s}->{t}"
                );
            }
        }
    }

    #[test]
    fn oracle_bound_settles_fewer_nodes() {
        let g = random_graph(1, 200, 150);
        let rev = crate::dijkstra::dijkstra_full_reverse(&g, 150);
        let oracle = OracleBound {
            to_target: rev.distances().to_vec(),
        };
        let (res_fast, stats_fast) = astar_search(&g, 0, 150, &oracle);
        let (res_slow, stats_slow) = astar_search(&g, 0, 150, &ZeroBound);
        assert_eq!(
            res_fast.as_ref().map(|(d, _)| *d),
            res_slow.as_ref().map(|(d, _)| *d)
        );
        assert!(stats_fast.settled <= stats_slow.settled);
    }

    #[test]
    fn returned_path_has_claimed_length() {
        let g = random_graph(4, 80, 60);
        let (res, _) = astar_search(&g, 2, 70, &ZeroBound);
        let (d, path) = res.unwrap();
        let mut acc: Distance = 0;
        for w in path.windows(2) {
            acc += g.weight_between(w[0], w[1]).unwrap() as Distance;
        }
        assert_eq!(acc, d);
        assert_eq!(path.first(), Some(&2));
        assert_eq!(path.last(), Some(&70));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        assert_eq!(astar_distance(&g, 0, 1, &ZeroBound), None);
    }

    #[test]
    fn source_equals_target() {
        let g = random_graph(2, 10, 5);
        let (res, stats) = astar_search(&g, 3, 3, &ZeroBound);
        assert_eq!(res.unwrap(), (0, vec![3]));
        assert_eq!(stats.settled, 1);
    }
}
