//! Dijkstra's algorithm (paper §2.1) in the variants the framework needs.
//!
//! * [`dijkstra_full`] / [`dijkstra_full_reverse`] — complete single-source
//!   trees (reverse trees drive ArcFlag construction and directed landmark
//!   bounds);
//! * [`dijkstra_to_target`] / [`dijkstra_distance`] — early-terminating
//!   point-to-point queries, as run by the simulated clients;
//! * [`dijkstra_filtered`] / [`dijkstra_filtered_with`] — search restricted
//!   to a node predicate, used by the clients that only downloaded a subset
//!   of regions and by ArcFlag's flag-pruned search (via an edge predicate
//!   variant); the `_with` form chooses the queue via [`QueuePolicy`];
//! * [`DijkstraWorkspace`] — allocation-free repeated searches for
//!   server-side precomputation, with version-stamped visited marks.

use crate::bucket_queue::{BucketQueue, DijkstraQueue, QueuePolicy};
use crate::graph::{NodeId, RoadNetwork};
use crate::heap::MinHeap;
use crate::sptree::{ShortestPathTree, NO_PARENT};
use crate::{Distance, DIST_INF};

/// Search direction over the CSR representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (paths *from* the source).
    Forward,
    /// Follow in-edges (paths *to* the source).
    Reverse,
}

/// Tuning knobs for a Dijkstra run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DijkstraOptions {
    /// Stop as soon as this node is settled.
    pub target: Option<NodeId>,
    /// Do not settle nodes farther than this bound.
    pub bound: Option<Distance>,
    /// Priority queue to drive the search with. `Heap` is always valid;
    /// `Bucket`/`Auto` exploit the bounded `u32` weights (Dial's
    /// algorithm). Distances are identical under every policy; settle
    /// order may differ among equal-distance nodes.
    pub queue: QueuePolicy,
}

/// Counters describing the work a search performed. The client simulator
/// reports these alongside wall-clock CPU time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes settled (popped with a fresh distance).
    pub settled: usize,
    /// Edges relaxed.
    pub relaxed: usize,
}

/// Runs a complete forward Dijkstra from `source`.
pub fn dijkstra_full(g: &RoadNetwork, source: NodeId) -> ShortestPathTree {
    run_full(g, source, Direction::Forward)
}

/// Runs a complete Dijkstra from `source` over reversed edges; the result
/// holds distances *towards* `source`.
pub fn dijkstra_full_reverse(g: &RoadNetwork, source: NodeId) -> ShortestPathTree {
    run_full(g, source, Direction::Reverse)
}

fn run_full(g: &RoadNetwork, source: NodeId, dir: Direction) -> ShortestPathTree {
    let n = g.num_nodes();
    let mut dist = vec![DIST_INF; n];
    let mut parent = vec![NO_PARENT; n];
    let mut order = Vec::with_capacity(n);
    let mut heap = MinHeap::with_capacity(64);
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some(e) = heap.pop() {
        let v = e.item;
        if e.key != dist[v as usize] {
            continue; // stale duplicate
        }
        order.push(v);
        relax_neighbors(g, dir, v, e.key, &mut dist, &mut parent, &mut heap);
    }
    ShortestPathTree::new(source, dist, parent, order)
}

#[inline]
fn relax_neighbors(
    g: &RoadNetwork,
    dir: Direction,
    v: NodeId,
    dv: Distance,
    dist: &mut [Distance],
    parent: &mut [NodeId],
    heap: &mut MinHeap<NodeId>,
) {
    match dir {
        Direction::Forward => {
            for (u, w) in g.out_edges(v) {
                let cand = dv + w as Distance;
                if cand < dist[u as usize] {
                    dist[u as usize] = cand;
                    parent[u as usize] = v;
                    heap.push(cand, u);
                }
            }
        }
        Direction::Reverse => {
            for (u, w) in g.in_edges(v) {
                let cand = dv + w as Distance;
                if cand < dist[u as usize] {
                    dist[u as usize] = cand;
                    parent[u as usize] = v;
                    heap.push(cand, u);
                }
            }
        }
    }
}

/// Point-to-point search returning `(distance, path)`, or `None` if `target`
/// is unreachable.
pub fn dijkstra_to_target(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
) -> Option<(Distance, Vec<NodeId>)> {
    let (tree, _) = dijkstra_with_options(
        g,
        source,
        DijkstraOptions {
            target: Some(target),
            ..DijkstraOptions::default()
        },
    );
    let d = tree.distance(target);
    (d != DIST_INF).then(|| (d, tree.path_to(target).expect("reachable")))
}

/// Point-to-point distance only.
pub fn dijkstra_distance(g: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Distance> {
    dijkstra_to_target(g, source, target).map(|(d, _)| d)
}

/// Dijkstra with early termination / distance bound. Returns the (partial)
/// tree and search statistics. Nodes that were never settled keep
/// `DIST_INF` or a tentative (not necessarily final) distance; only settled
/// nodes are authoritative, so callers should use the settle order or the
/// target distance.
pub fn dijkstra_with_options(
    g: &RoadNetwork,
    source: NodeId,
    opts: DijkstraOptions,
) -> (ShortestPathTree, SearchStats) {
    // Targeted searches terminate early; feed `Auto` the expected settle
    // count (~half the nodes for a uniformly random pair) so it can keep
    // the heap where the bucket cursor scan would not amortize.
    let expected = opts.target.map(|_| g.num_nodes().div_ceil(2));
    match opts.queue.resolve_for_search(g, expected) {
        QueuePolicy::Bucket => options_loop(g, source, opts, &mut BucketQueue::for_graph(g)),
        _ => options_loop(g, source, opts, &mut MinHeap::with_capacity(64)),
    }
}

fn options_loop<Q: DijkstraQueue>(
    g: &RoadNetwork,
    source: NodeId,
    opts: DijkstraOptions,
    queue: &mut Q,
) -> (ShortestPathTree, SearchStats) {
    let n = g.num_nodes();
    let mut dist = vec![DIST_INF; n];
    let mut parent = vec![NO_PARENT; n];
    let mut order = Vec::new();
    let mut stats = SearchStats::default();
    dist[source as usize] = 0;
    queue.push(0, source);
    while let Some((key, v)) = queue.pop() {
        if key != dist[v as usize] {
            continue;
        }
        if let Some(b) = opts.bound {
            if key > b {
                break;
            }
        }
        order.push(v);
        stats.settled += 1;
        if opts.target == Some(v) {
            break;
        }
        for (u, w) in g.out_edges(v) {
            stats.relaxed += 1;
            let cand = key + w as Distance;
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                parent[u as usize] = v;
                queue.push(cand, u);
            }
        }
    }
    (ShortestPathTree::new(source, dist, parent, order), stats)
}

/// Point-to-point Dijkstra restricted to nodes for which `allowed` returns
/// true (source and target are always allowed). This is the search the
/// simulated clients run over the union of downloaded regions. Runs on the
/// default queue policy; see [`dijkstra_filtered_with`] to choose.
pub fn dijkstra_filtered(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    allowed: impl Fn(NodeId) -> bool,
) -> (Option<(Distance, Vec<NodeId>)>, SearchStats) {
    dijkstra_filtered_with(g, source, target, allowed, QueuePolicy::default())
}

/// [`dijkstra_filtered`] driven by an explicit [`QueuePolicy`]. Distances
/// are identical under every policy; only the settle order of
/// equal-distance nodes may differ.
pub fn dijkstra_filtered_with(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    allowed: impl Fn(NodeId) -> bool,
    queue: QueuePolicy,
) -> (Option<(Distance, Vec<NodeId>)>, SearchStats) {
    let expected = Some(g.num_nodes().div_ceil(2));
    match queue.resolve_for_search(g, expected) {
        QueuePolicy::Bucket => {
            filtered_loop(g, source, target, allowed, &mut BucketQueue::for_graph(g))
        }
        _ => filtered_loop(g, source, target, allowed, &mut MinHeap::with_capacity(64)),
    }
}

fn filtered_loop<Q: DijkstraQueue>(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    allowed: impl Fn(NodeId) -> bool,
    queue: &mut Q,
) -> (Option<(Distance, Vec<NodeId>)>, SearchStats) {
    let n = g.num_nodes();
    let mut dist = vec![DIST_INF; n];
    let mut parent = vec![NO_PARENT; n];
    let mut stats = SearchStats::default();
    dist[source as usize] = 0;
    queue.push(0, source);
    let mut found = false;
    while let Some((key, v)) = queue.pop() {
        if key != dist[v as usize] {
            continue;
        }
        stats.settled += 1;
        if v == target {
            found = true;
            break;
        }
        for (u, w) in g.out_edges(v) {
            if u != target && u != source && !allowed(u) {
                continue;
            }
            stats.relaxed += 1;
            let cand = key + w as Distance;
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                parent[u as usize] = v;
                queue.push(cand, u);
            }
        }
    }
    if !found {
        return (None, stats);
    }
    let tree = ShortestPathTree::new(source, dist, parent, Vec::new());
    let d = tree.distance(target);
    let path = tree.path_to(target).expect("target settled");
    (Some((d, path)), stats)
}

/// Reusable buffers for repeated full Dijkstra runs.
///
/// Precomputation performs one search per border node (often thousands);
/// re-zeroing a `Vec<u64>` per run would dominate. The workspace stamps
/// each slot with a run version instead, so starting a new search is O(1).
#[derive(Debug)]
pub struct DijkstraWorkspace {
    dist: Vec<Distance>,
    parent: Vec<NodeId>,
    version: Vec<u32>,
    order: Vec<NodeId>,
    current: u32,
    queue: WorkspaceQueue,
}

/// The workspace's owned queue, fixed at construction.
#[derive(Debug)]
enum WorkspaceQueue {
    Heap(MinHeap<NodeId>),
    Bucket(BucketQueue),
}

impl DijkstraWorkspace {
    /// Creates a workspace for graphs with `n` nodes, driven by the
    /// 4-ary heap (the historical default; settle order is identical to
    /// [`dijkstra_full`]).
    pub fn new(n: usize) -> Self {
        Self::with_queue(n, WorkspaceQueue::Heap(MinHeap::with_capacity(64)))
    }

    /// Creates a workspace for `g` with the queue `policy` selects.
    /// `Auto`/`Bucket` size the bucket array for `g`'s maximum weight.
    pub fn for_graph(g: &RoadNetwork, policy: QueuePolicy) -> Self {
        let queue = match policy.resolve(g) {
            QueuePolicy::Bucket => WorkspaceQueue::Bucket(BucketQueue::for_graph(g)),
            _ => WorkspaceQueue::Heap(MinHeap::with_capacity(64)),
        };
        Self::with_queue(g.num_nodes(), queue)
    }

    fn with_queue(n: usize, queue: WorkspaceQueue) -> Self {
        Self {
            dist: vec![DIST_INF; n],
            parent: vec![NO_PARENT; n],
            version: vec![0; n],
            order: Vec::with_capacity(n),
            current: 0,
            queue,
        }
    }

    /// Runs a complete search from `source` in direction `dir`. Results are
    /// valid until the next `run` call.
    pub fn run(&mut self, g: &RoadNetwork, source: NodeId, dir: Direction) {
        assert_eq!(
            g.num_nodes(),
            self.dist.len(),
            "workspace sized for a different graph"
        );
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Version counter wrapped: hard-reset stamps once every 2^32 runs.
            self.version.iter_mut().for_each(|v| *v = 0);
            self.current = 1;
        }
        self.order.clear();
        // Split borrows: the queue moves out of `self` views so the loop
        // can relax against dist/parent/version without aliasing it.
        let mut queue = std::mem::replace(&mut self.queue, WorkspaceQueue::Heap(MinHeap::new()));
        match &mut queue {
            WorkspaceQueue::Heap(q) => self.run_loop(g, source, dir, q),
            WorkspaceQueue::Bucket(q) => self.run_loop(g, source, dir, q),
        }
        self.queue = queue;
    }

    fn run_loop<Q: DijkstraQueue>(
        &mut self,
        g: &RoadNetwork,
        source: NodeId,
        dir: Direction,
        queue: &mut Q,
    ) {
        queue.clear();
        self.touch(source);
        self.dist[source as usize] = 0;
        queue.push(0, source);
        while let Some((key, v)) = queue.pop() {
            if key != self.dist[v as usize] {
                continue;
            }
            self.order.push(v);
            match dir {
                Direction::Forward => {
                    for (u, w) in g.out_edges(v) {
                        self.relax(queue, v, u, key + w as Distance);
                    }
                }
                Direction::Reverse => {
                    for (u, w) in g.in_edges(v) {
                        self.relax(queue, v, u, key + w as Distance);
                    }
                }
            }
        }
    }

    #[inline]
    fn touch(&mut self, v: NodeId) {
        if self.version[v as usize] != self.current {
            self.version[v as usize] = self.current;
            self.dist[v as usize] = DIST_INF;
            self.parent[v as usize] = NO_PARENT;
        }
    }

    #[inline]
    fn relax<Q: DijkstraQueue>(&mut self, queue: &mut Q, from: NodeId, to: NodeId, cand: Distance) {
        self.touch(to);
        if cand < self.dist[to as usize] {
            self.dist[to as usize] = cand;
            self.parent[to as usize] = from;
            queue.push(cand, to);
        }
    }

    /// Distance of `v` in the latest run.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Distance {
        if self.version[v as usize] == self.current {
            self.dist[v as usize]
        } else {
            DIST_INF
        }
    }

    /// Parent of `v` in the latest run's tree.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if self.version[v as usize] == self.current && self.parent[v as usize] != NO_PARENT {
            Some(self.parent[v as usize])
        } else {
            None
        }
    }

    /// Settle order of the latest run.
    #[inline]
    pub fn settle_order(&self) -> &[NodeId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn diamond() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 2);
        b.add_edge(1, 3, 5);
        b.add_edge(2, 3, 1);
        b.finish()
    }

    fn random_graph(seed: u64, n: usize, extra: usize) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        // Random tree for connectivity + extra undirected edges.
        for i in 1..n {
            let p = rng.gen_range(0..i);
            b.add_undirected_edge(p as NodeId, i as NodeId, rng.gen_range(1..100));
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n) as NodeId;
            let c = rng.gen_range(0..n) as NodeId;
            if a != c {
                b.add_undirected_edge(a, c, rng.gen_range(1..100));
            }
        }
        b.finish()
    }

    /// O(V^2) Bellman-Ford-ish reference for validation.
    fn reference_distances(g: &RoadNetwork, s: NodeId) -> Vec<Distance> {
        let n = g.num_nodes();
        let mut dist = vec![DIST_INF; n];
        dist[s as usize] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in g.node_ids() {
                if dist[v as usize] == DIST_INF {
                    continue;
                }
                for (u, w) in g.out_edges(v) {
                    let cand = dist[v as usize] + w as Distance;
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    #[test]
    fn diamond_prefers_cheaper_branch() {
        let g = diamond();
        let (d, path) = dijkstra_to_target(&g, 0, 3).unwrap();
        assert_eq!(d, 3);
        assert_eq!(path, vec![0, 2, 3]);
    }

    #[test]
    fn full_tree_matches_reference_on_random_graphs() {
        for seed in 0..10 {
            let g = random_graph(seed, 60, 40);
            let t = dijkstra_full(&g, 0);
            assert_eq!(t.distances(), &reference_distances(&g, 0)[..]);
        }
    }

    #[test]
    fn reverse_tree_matches_forward_on_reversed_pairs() {
        let g = random_graph(3, 50, 30);
        let fwd = dijkstra_full(&g, 7);
        let rev = dijkstra_full_reverse(&g, 7);
        // Undirected graph: forward and reverse distances coincide.
        assert_eq!(fwd.distances(), rev.distances());
    }

    #[test]
    fn reverse_tree_on_directed_graph() {
        let g = diamond();
        let rev = dijkstra_full_reverse(&g, 3);
        // rev.distance(v) = d(v -> 3)
        assert_eq!(rev.distance(0), 3);
        assert_eq!(rev.distance(1), 5);
        assert_eq!(rev.distance(2), 1);
        assert_eq!(rev.distance(3), 0);
    }

    #[test]
    fn early_termination_settles_target() {
        let g = random_graph(11, 80, 60);
        let (tree, stats) = dijkstra_with_options(
            &g,
            0,
            DijkstraOptions {
                target: Some(42),
                bound: None,
                queue: QueuePolicy::default(),
            },
        );
        let reference = reference_distances(&g, 0);
        assert_eq!(tree.distance(42), reference[42]);
        assert!(stats.settled <= g.num_nodes());
    }

    #[test]
    fn bounded_search_stops_beyond_bound() {
        let g = random_graph(5, 100, 50);
        let full = dijkstra_full(&g, 0);
        let bound = full.distance(50) / 2;
        let (tree, _) = dijkstra_with_options(
            &g,
            0,
            DijkstraOptions {
                target: None,
                bound: Some(bound),
                queue: QueuePolicy::default(),
            },
        );
        for &v in tree.settle_order() {
            assert!(tree.distance(v) <= bound);
        }
    }

    #[test]
    fn filtered_search_all_allowed_equals_plain() {
        let g = random_graph(9, 70, 50);
        let plain = dijkstra_distance(&g, 3, 60);
        let (filtered, _) = dijkstra_filtered(&g, 3, 60, |_| true);
        assert_eq!(plain, filtered.map(|(d, _)| d));
    }

    #[test]
    fn filtered_search_same_distances_under_every_queue_policy() {
        let g = random_graph(13, 80, 60);
        for s in [0u32, 11, 37] {
            for t in [5u32, 42, 79] {
                let (heap, _) = dijkstra_filtered_with(&g, s, t, |v| v % 7 != 3, QueuePolicy::Heap);
                let (bucket, _) =
                    dijkstra_filtered_with(&g, s, t, |v| v % 7 != 3, QueuePolicy::Bucket);
                let (auto, _) = dijkstra_filtered_with(&g, s, t, |v| v % 7 != 3, QueuePolicy::Auto);
                assert_eq!(heap.as_ref().map(|(d, _)| *d), bucket.map(|(d, _)| d));
                assert_eq!(heap.map(|(d, _)| d), auto.map(|(d, _)| d));
            }
        }
    }

    #[test]
    fn filtered_search_respects_predicate() {
        // Line 0-1-2; forbid node 1 => unreachable.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_undirected_edge(0, 1, 1);
        b.add_undirected_edge(1, 2, 1);
        let g = b.finish();
        let (res, _) = dijkstra_filtered(&g, 0, 2, |v| v != 1);
        assert!(res.is_none());
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        assert!(dijkstra_distance(&g, 0, 1).is_none());
    }

    #[test]
    fn workspace_matches_fresh_runs_across_many_sources() {
        let g = random_graph(21, 90, 70);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        for s in (0..90).step_by(7) {
            ws.run(&g, s, Direction::Forward);
            let fresh = dijkstra_full(&g, s);
            for v in g.node_ids() {
                assert_eq!(ws.distance(v), fresh.distance(v), "src {s} node {v}");
            }
            assert_eq!(ws.settle_order(), fresh.settle_order());
        }
    }

    #[test]
    fn workspace_reverse_direction() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(4);
        ws.run(&g, 3, Direction::Reverse);
        assert_eq!(ws.distance(0), 3);
        assert_eq!(ws.parent(0), Some(2));
    }

    #[test]
    fn source_distance_zero_and_no_parent() {
        let g = diamond();
        let t = dijkstra_full(&g, 0);
        assert_eq!(t.distance(0), 0);
        assert_eq!(t.parent(0), None);
    }
}
