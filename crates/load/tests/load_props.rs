//! Load-harness properties:
//!
//! 1. **Replay exactness** — the O(1)-per-client replay model (session
//!    profiles per anchor class) predicts a real client session
//!    packet-for-packet, for every air method and arbitrary tune-in
//!    offsets;
//! 2. **streaming percentiles** agree with the exact order statistics
//!    within one bucket width, and histogram merging is associative and
//!    split-invariant (proptest);
//! 3. **thread-count reproducibility** — prepare + serve is byte-for-byte
//!    identical for 1, 2 and 4 workers, lossy exact-mode cells included;
//! 4. lossy populations stay conformant and cost strictly more latency
//!    than their lossless twin.

use proptest::prelude::*;
use spair_broadcast::{BroadcastChannel, LossModel};
use spair_load::spec::override_population;
use spair_load::{prepare, run, smoke_load_matrix, LoadSpec, StreamingHistogram};
use spair_sim::{
    GraphSpec, LossSpec, MethodId, MethodRegistry, ScenarioContext, ScenarioSpec, WorkItem,
    WorkloadMix,
};

/// All methods the load harness serves — straight from the registry, so
/// a newly registered air method is replay-certified with zero edits
/// here. This is the descriptor-vs-replay certification: each method's
/// *declared* `SessionShape` drives the anchor-class replay below, and
/// `replay_matches_real_sessions` proves that replay packet-for-packet
/// against real client sessions.
fn air_methods() -> Vec<MethodId> {
    MethodRegistry::standard().air_methods()
}

fn tiny_load_spec(seed: u64, methods: &[MethodId]) -> LoadSpec {
    let mut s = ScenarioSpec::small("tiny-load", seed);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.workload = WorkloadMix::p2p(4);
    LoadSpec {
        scenario: s,
        population: 300,
        methods: methods.to_vec(),
        flash: false,
    }
}

/// The crux of the harness: for every method and a spread of tune-in
/// offsets, the replayed (tuning, latency, sleep) triple and the oracle
/// verdict must equal a real client session run at that offset.
#[test]
fn replay_matches_real_sessions() {
    let methods = air_methods();
    let spec = tiny_load_spec(41, &methods);
    let prep = prepare(std::slice::from_ref(&spec), 2);
    // An independently built context is the same deterministic world.
    let ctx = ScenarioContext::build(&spec.scenario, &spec.methods);
    let pool: Vec<_> = ctx
        .workload
        .iter()
        .filter_map(|w| match w {
            WorkItem::P2p { query, oracle } => Some((*query, *oracle)),
            _ => None,
        })
        .collect();
    assert_eq!(pool.len(), 4);
    for &method in &methods {
        let cell = prep.cell_index("tiny-load", method).expect("cell prepared");
        let cycle = ctx.cycle(method).expect("air program built");
        let len = cycle.len();
        let step = (len / 7).max(1);
        let offsets: Vec<usize> = (0..len).step_by(step).chain([len - 1]).collect();
        for (qi, &(query, oracle)) in pool.iter().enumerate() {
            for &off in &offsets {
                let predicted = prep
                    .predicted_session(cell, qi, off)
                    .expect("lossless profile");
                let mut ch = BroadcastChannel::tune_in(cycle, off, LossModel::Lossless);
                let mut client = ctx.client(method).expect("air client");
                let out = client.query(&mut ch, &query).expect("lossless session");
                assert_eq!(
                    predicted,
                    (
                        out.stats.tuning_packets,
                        out.stats.latency_packets,
                        out.stats.sleep_packets
                    ),
                    "{} query {qi} offset {off}: replay diverged from the real session",
                    method.name(),
                );
                assert_eq!(out.distance, oracle, "{} query {qi}", method.name());
            }
        }
    }
}

#[test]
fn whole_pipeline_is_bit_identical_across_thread_counts() {
    let mut specs = smoke_load_matrix();
    override_population(&mut specs, 400);
    let r1 = run(&prepare(&specs, 1), 1);
    let prep4 = prepare(&specs, 4);
    let r4 = run(&prep4, 4);
    let r2 = run(&prep4, 2);
    assert_eq!(r1.to_json(false), r4.to_json(false), "prepare+serve 1 vs 4");
    assert_eq!(r2.to_json(false), r4.to_json(false), "serve 2 vs 4");
    assert_eq!(r1.digest(), r4.digest());
}

#[test]
fn smoke_matrix_serves_exactly_and_reports_percentiles() {
    let mut specs = smoke_load_matrix();
    override_population(&mut specs, 600);
    let report = run(&prepare(&specs, 2), 2);
    assert!(
        report.all_exact(),
        "{} mismatches",
        report.total_mismatches()
    );
    assert_eq!(report.total_population(), 600 * report.cells.len());
    for c in &report.cells {
        assert!(c.latency.p50 > 0, "{} {}", c.scenario, c.method);
        assert!(c.latency.p50 <= c.latency.p95);
        assert!(c.latency.p95 <= c.latency.p99);
        assert!(c.latency.p99 <= c.latency.max);
        assert!(c.tuning.max <= c.latency.max);
        assert!(c.energy_uj.p50 > 0);
        assert!(c.radio_energy_joules_total > 0.0);
        assert!(c.peak_memory_bytes > 0);
    }
}

/// Modeled per-client peak memory must never regress. The CSR/arena
/// client-state rewrite tightened real process memory while keeping the
/// *modeled* charges byte-identical; these ceilings are the smoke
/// matrix's per-cell peaks captured from the pre-CSR store. A cell
/// exceeding its ceiling means a client started charging more than the
/// paper's cost model says it should.
#[test]
fn peak_client_memory_never_regresses() {
    let specs = smoke_load_matrix();
    let report = run(&prepare(&specs, 2), 2);
    let ceilings: &[(&str, &str, usize)] = &[
        ("smoke-grid10-kd-lossless", "nr", 5136),
        ("smoke-grid10-kd-lossless", "eb", 6656),
        ("smoke-grid10-kd-lossless", "dj", 6240),
        ("smoke-grid10-kd-lossless", "hiti_air", 16208),
        ("smoke-grid8-kd-bernoulli5", "nr", 4072),
        ("smoke-grid8-kd-bernoulli5", "dj", 3984),
        ("smoke-flash-grid8-chaos1", "nr", 2800),
        ("smoke-flash-grid8-chaos1", "dj", 3984),
    ];
    assert_eq!(report.cells.len(), ceilings.len(), "smoke matrix changed");
    for &(scenario, method, ceiling) in ceilings {
        let cell = report
            .cells
            .iter()
            .find(|c| c.scenario == scenario && c.method == method)
            .unwrap_or_else(|| panic!("missing cell {scenario}/{method}"));
        assert!(
            cell.peak_memory_bytes <= ceiling,
            "{scenario}/{method}: peak {} exceeds pre-CSR ceiling {ceiling}",
            cell.peak_memory_bytes
        );
        assert!(cell.peak_memory_bytes > 0, "{scenario}/{method}: no charge");
    }
}

/// The flash-crowd certificate at population scale: a whole crowd
/// tuning in against one chaotic server is **never wrong** — every
/// answered session matched the oracle, every give-up is typed, every
/// session stayed within the recovery budget — and the cell reports the
/// fault/recovery summary the JSON schema promises.
#[test]
fn flash_crowd_cells_certify_never_wrong() {
    let mut specs = smoke_load_matrix();
    specs.retain(|s| s.flash);
    assert_eq!(specs.len(), 1, "one smoke flash cell expected");
    override_population(&mut specs, 400);
    let report = run(&prepare(&specs, 2), 2);
    assert!(
        report.all_exact(),
        "{} mismatched/out-of-budget sessions",
        report.total_mismatches()
    );
    for c in &report.cells {
        assert!(!c.replayed, "flash cells run full supervised sessions");
        let f = c.fault.as_ref().expect("flash cells carry a fault summary");
        assert_eq!(f.budget_violations, 0, "{}", c.method);
        assert!(f.attempts >= c.population as u64);
        assert!(
            f.recovery.max >= c.latency.max,
            "{}: recovery covers all sessions, latency only answered ones",
            c.method
        );
        assert_eq!(
            f.typed_failures,
            f.failure_classes.iter().map(|(_, n)| n).sum::<u64>(),
            "every typed failure is classified"
        );
    }
    // The fault stream is shared, so a single method can luck into a
    // taint-free window — but across the cell set, chaos at this rate
    // must force some supervised re-tunes.
    let retried: u64 = report
        .cells
        .iter()
        .filter_map(|c| c.fault.as_ref())
        .map(|f| f.retried)
        .sum();
    assert!(retried > 0, "no client ever re-tuned under chaos");
}

#[test]
fn lossy_population_costs_more_latency_than_lossless() {
    let mut lossless = tiny_load_spec(77, &[MethodId::DJ]);
    lossless.population = 500;
    let mut lossy = lossless.clone();
    lossy.scenario.name = "tiny-load-lossy".to_string();
    lossy.scenario.loss = LossSpec::Bernoulli { rate: 0.10 };
    let report = run(&prepare(&[lossless, lossy], 2), 2);
    assert!(report.all_exact());
    let (a, b) = (&report.cells[0], &report.cells[1]);
    assert!(a.replayed && !b.replayed);
    // A 10% loss rate forces retry packets on most whole-cycle clients.
    assert!(
        b.latency.mean > a.latency.mean,
        "lossy mean {} vs lossless {}",
        b.latency.mean,
        a.latency.mean
    );
    assert!(b.tuning.max > a.tuning.max);
}

fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_percentiles_agree_with_exact(
        values in prop::collection::vec(0u64..50_000, 1..300),
        buckets in 8usize..200,
    ) {
        let mut h = StreamingHistogram::with_bound(50_000, buckets);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.95, 0.99, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let est = h.percentile(q);
            prop_assert!(
                est.abs_diff(exact) < h.width(),
                "q={}: exact {}, streaming {}, width {}",
                q, exact, est, h.width()
            );
        }
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
    }

    #[test]
    fn histogram_merge_is_associative_and_split_invariant(
        values in prop::collection::vec(0u64..10_000, 3..200),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let n = values.len();
        let mut cuts = [
            ((cut_a * n as f64) as usize).min(n),
            ((cut_b * n as f64) as usize).min(n),
        ];
        cuts.sort_unstable();
        let mk = |vals: &[u64]| {
            let mut h = StreamingHistogram::with_bound(10_000, 32);
            for &v in vals {
                h.record(v);
            }
            h
        };
        let whole = mk(&values);
        let (a, b, c) = (
            mk(&values[..cuts[0]]),
            mk(&values[cuts[0]..cuts[1]]),
            mk(&values[cuts[1]..]),
        );
        // ((a + b) + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // (a + (b + c))
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &whole);
    }
}
