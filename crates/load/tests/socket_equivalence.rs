//! Transport equivalence at the load-harness level: the same scheduled
//! population over loopback UDP, loopback TCP and the in-process
//! channel must produce byte-identical answer digests. This is the
//! in-tree version of the `BENCH_serve.json` digest columns, run with
//! in-thread workers so the test stays hermetic.

use spair_load::socket::{
    answers_digest, build_programs, in_process_answers, run_jobs, schedule, socket_scenario,
    WorkerMode,
};
use spair_methods::MethodRegistry;
use spair_serve::client::Transport;
use spair_serve::daemon::{ServeDaemon, ServeOptions, ServeWorld};

fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spair_load_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

#[test]
fn udp_tcp_and_in_process_digests_agree() {
    let sc = socket_scenario(true);
    let programs = build_programs(&sc);
    let g = programs.world().g.clone();
    let registry = MethodRegistry::standard();
    let ids: Vec<_> = sc
        .methods
        .iter()
        .map(|n| registry.get(n).expect("scenario method"))
        .collect();

    let dir = test_dir("equiv");
    let world = ServeWorld::from_program_set(&programs, &ids);
    let daemon = ServeDaemon::start(world, ServeOptions::in_dir(&dir)).expect("start daemon");
    let addr = daemon.local_addr();

    let population = 12usize;
    for method in &sc.methods {
        let expected = {
            let jobs = schedule(&sc, &g, method, Transport::Udp, population);
            answers_digest(&in_process_answers(&programs, &jobs))
        };
        for transport in [Transport::Udp, Transport::Tcp] {
            let jobs = schedule(&sc, &g, method, transport, population);
            let (answers, failures) = run_jobs(addr, &jobs, 4, &WorkerMode::InThread);
            assert!(
                failures.is_empty(),
                "{method}/{} session failures: {failures:?}",
                transport.name()
            );
            assert_eq!(answers.len(), population);
            assert_eq!(
                answers_digest(&answers),
                expected,
                "{method}/{} digest diverged from in-process",
                transport.name()
            );
        }
    }

    // Worker-count invariance: the digest is a pure function of the
    // schedule, so 1 worker and 4 workers agree.
    let jobs = schedule(&sc, &g, sc.methods[0], Transport::Tcp, population);
    let (serial, failures) = run_jobs(addr, &jobs, 1, &WorkerMode::InThread);
    assert!(failures.is_empty(), "serial failures: {failures:?}");
    let (wide, failures) = run_jobs(addr, &jobs, 4, &WorkerMode::InThread);
    assert!(failures.is_empty(), "parallel failures: {failures:?}");
    assert_eq!(answers_digest(&serial), answers_digest(&wide));

    let summary = daemon.shutdown().expect("daemon shutdown");
    assert_eq!(summary.evictions, 0, "lossless population must not evict");
    assert_eq!(summary.rejections, 0);
    std::fs::remove_dir_all(&dir).ok();
}
