//! Load-harness reports: streaming percentile summaries per
//! (scenario × method) cell, digest-certified like the conformance
//! matrix.

/// Percentiles and exact extremes of one cost dimension over a client
/// population, read off a streaming histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileSummary {
    /// Median (nearest-rank, within one bucket width).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Values beyond the histogram bound (tail percentiles degrade to
    /// the exact max when nonzero).
    pub overflow: u64,
    /// Bucket width — the percentile error bound.
    pub bucket_width: u64,
}

impl PercentileSummary {
    fn json(&self) -> String {
        format!(
            "{{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.3}, \
             \"overflow\": {}, \"bucket_width\": {} }}",
            self.p50, self.p95, self.p99, self.max, self.mean, self.overflow, self.bucket_width
        )
    }
}

/// Aggregated result of serving one (scenario × method) population.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCellReport {
    /// Scenario name (matrix row).
    pub scenario: String,
    /// Method name (matrix column).
    pub method: &'static str,
    /// Clients served.
    pub population: usize,
    /// Distinct oracle-backed queries the population drew from.
    pub query_pool: usize,
    /// Whether the population replayed from session profiles (lossless)
    /// or ran full per-client sessions (lossy).
    pub replayed: bool,
    /// Real sessions run to build the profile table (0 when not
    /// replayed).
    pub profile_sessions: usize,
    /// Sessions whose distance diverged from the oracle. Green iff 0.
    pub mismatches: u64,
    /// Sessions that returned an error (never expected).
    pub failures: u64,
    /// Shared broadcast cycle length, in packets.
    pub cycle_packets: usize,
    /// Worst client heap across the population.
    pub peak_memory_bytes: usize,
    /// Access latency (packets) over the population.
    pub latency: PercentileSummary,
    /// Tuning time (packets) over the population.
    pub tuning: PercentileSummary,
    /// Radio energy (micro-joules) over the population.
    pub energy_uj: PercentileSummary,
    /// Total radio energy across the whole population, in joules.
    pub radio_energy_joules_total: f64,
    /// Wall-clock serving time for the cell (excluded from the digest).
    pub cpu_ms: f64,
}

impl LoadCellReport {
    /// Whether every served session matched the oracle and none failed.
    pub fn exact(&self) -> bool {
        self.mismatches == 0 && self.failures == 0
    }

    fn json_fields(&self, include_timings: bool) -> String {
        let mut s = format!(
            "\"scenario\": \"{}\", \"method\": \"{}\", \"population\": {}, \
             \"query_pool\": {}, \"replayed\": {}, \"profile_sessions\": {}, \
             \"mismatches\": {}, \"failures\": {}, \"exact\": {}, \
             \"cycle_packets\": {}, \"peak_memory_bytes\": {}, \
             \"latency_packets\": {}, \"tuning_packets\": {}, \"energy_uj\": {}, \
             \"radio_energy_joules_total\": {:.6}",
            self.scenario,
            self.method,
            self.population,
            self.query_pool,
            self.replayed,
            self.profile_sessions,
            self.mismatches,
            self.failures,
            self.exact(),
            self.cycle_packets,
            self.peak_memory_bytes,
            self.latency.json(),
            self.tuning.json(),
            self.energy_uj.json(),
            self.radio_energy_joules_total,
        );
        if include_timings {
            s.push_str(&format!(", \"cpu_ms\": {:.3}", self.cpu_ms));
        }
        s
    }
}

/// The full report of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Every (scenario × method) cell, in scenario-major order.
    pub cells: Vec<LoadCellReport>,
}

impl LoadReport {
    /// Whether every cell is exact — the load conformance gate.
    pub fn all_exact(&self) -> bool {
        self.cells.iter().all(LoadCellReport::exact)
    }

    /// Total oracle mismatches plus failed sessions.
    pub fn total_mismatches(&self) -> usize {
        self.cells
            .iter()
            .map(|c| (c.mismatches + c.failures) as usize)
            .sum()
    }

    /// Clients served across all cells.
    pub fn total_population(&self) -> usize {
        self.cells.iter().map(|c| c.population).sum()
    }

    /// FNV-1a digest over the deterministic fields. Equal digests across
    /// thread counts / reruns certify reproducibility.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json(false).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serializes the cells. With `include_timings = false` the output
    /// contains only deterministic fields and is byte-for-byte
    /// reproducible from the specs' seeds.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&c.json_fields(include_timings));
            out.push_str(" }");
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// A fixed-width text table (one row per cell) for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<26} {:<9} {:>8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
            "Scenario",
            "Method",
            "Clients",
            "OK",
            "Lat p50",
            "Lat p99",
            "Tune p50",
            "Tune p99",
            "Cycle",
            "Joules"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<26} {:<9} {:>8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.1}\n",
                c.scenario,
                c.method,
                c.population,
                if c.exact() { "yes" } else { "NO" },
                c.latency.p50,
                c.latency.p99,
                c.tuning.p50,
                c.tuning.p99,
                c.cycle_packets,
                c.radio_energy_joules_total,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> PercentileSummary {
        PercentileSummary {
            p50: 10,
            p95: 20,
            p99: 30,
            max: 40,
            mean: 12.5,
            overflow: 0,
            bucket_width: 4,
        }
    }

    fn cell(mismatches: u64) -> LoadCellReport {
        LoadCellReport {
            scenario: "s".to_string(),
            method: "nr",
            population: 100,
            query_pool: 4,
            replayed: true,
            profile_sessions: 8,
            mismatches,
            failures: 0,
            cycle_packets: 200,
            peak_memory_bytes: 1000,
            latency: summary(),
            tuning: summary(),
            energy_uj: summary(),
            radio_energy_joules_total: 1.5,
            cpu_ms: 3.0,
        }
    }

    #[test]
    fn exactness_gates_on_mismatches_and_failures() {
        let mut r = LoadReport {
            cells: vec![cell(0)],
        };
        assert!(r.all_exact());
        r.cells[0].failures = 1;
        assert!(!r.all_exact());
        assert_eq!(r.total_mismatches(), 1);
    }

    #[test]
    fn digest_ignores_cpu_time_only() {
        let mut r = LoadReport {
            cells: vec![cell(0)],
        };
        let d0 = r.digest();
        r.cells[0].cpu_ms = 999.0;
        assert_eq!(r.digest(), d0, "cpu time must not affect the digest");
        r.cells[0].latency.p99 += 1;
        assert_ne!(r.digest(), d0, "deterministic fields must");
    }

    #[test]
    fn json_with_timings_is_a_superset() {
        let r = LoadReport {
            cells: vec![cell(0)],
        };
        assert!(!r.to_json(false).contains("cpu_ms"));
        assert!(r.to_json(true).contains("cpu_ms"));
        assert!(r.to_json(false).contains("latency_packets"));
    }
}
