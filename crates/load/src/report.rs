//! Load-harness reports: streaming percentile summaries per
//! (scenario × method) cell, digest-certified like the conformance
//! matrix.

/// Percentiles and exact extremes of one cost dimension over a client
/// population, read off a streaming histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileSummary {
    /// Median (nearest-rank, within one bucket width).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Values beyond the histogram bound (tail percentiles degrade to
    /// the exact max when nonzero).
    pub overflow: u64,
    /// Bucket width — the percentile error bound.
    pub bucket_width: u64,
}

impl PercentileSummary {
    fn json(&self) -> String {
        format!(
            "{{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.3}, \
             \"overflow\": {}, \"bucket_width\": {} }}",
            self.p50, self.p95, self.p99, self.max, self.mean, self.overflow, self.bucket_width
        )
    }
}

/// Fault and recovery summary of a flash-crowd cell, where every client
/// runs a full bounded-recovery supervised session against a shared
/// correlated fault plan. Present only on flash cells — non-flash cells
/// serialize without it, byte-for-byte as before.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadFaultSummary {
    /// Fault-spec label of the scenario (e.g. `chaos1.0%@16.0c`).
    pub fault: String,
    /// Sessions that gave up with a typed `SessionError` (never a wrong
    /// answer — those count as mismatches and fail the gate).
    pub typed_failures: u64,
    /// `typed_failures / population`.
    pub failure_rate: f64,
    /// Sessions that blew the attempt budget or the packet ceiling.
    /// The gate requires 0.
    pub budget_violations: u64,
    /// Supervised attempts across the population.
    pub attempts: u64,
    /// Worst single session's attempt count.
    pub max_attempts: u32,
    /// Sessions that needed more than one attempt (re-tuned after a
    /// silently-corrupting fault).
    pub retried: u64,
    /// Recovery latency (total packets elapsed across every attempt of a
    /// session — what the user waits) over the whole population,
    /// answered and failed sessions alike.
    pub recovery: PercentileSummary,
    /// Root-cause failure-class breakdown (`class → count`), sorted by
    /// class label.
    pub failure_classes: Vec<(String, u64)>,
}

impl LoadFaultSummary {
    fn json(&self) -> String {
        let classes: Vec<String> = self
            .failure_classes
            .iter()
            .map(|(c, n)| format!("\"{c}\": {n}"))
            .collect();
        format!(
            "{{ \"fault\": \"{}\", \"typed_failures\": {}, \"failure_rate\": {:.6}, \
             \"budget_violations\": {}, \"attempts\": {}, \"max_attempts\": {}, \
             \"retried\": {}, \"recovery_packets\": {}, \"failure_classes\": {{{}}} }}",
            self.fault,
            self.typed_failures,
            self.failure_rate,
            self.budget_violations,
            self.attempts,
            self.max_attempts,
            self.retried,
            self.recovery.json(),
            classes.join(", "),
        )
    }
}

/// Aggregated result of serving one (scenario × method) population.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCellReport {
    /// Scenario name (matrix row).
    pub scenario: String,
    /// Method name (matrix column).
    pub method: &'static str,
    /// Clients served.
    pub population: usize,
    /// Distinct oracle-backed queries the population drew from.
    pub query_pool: usize,
    /// Whether the population replayed from session profiles (lossless)
    /// or ran full per-client sessions (lossy).
    pub replayed: bool,
    /// Real sessions run to build the profile table (0 when not
    /// replayed).
    pub profile_sessions: usize,
    /// Sessions whose distance diverged from the oracle. Green iff 0.
    pub mismatches: u64,
    /// Sessions that returned an error (never expected).
    pub failures: u64,
    /// Shared broadcast cycle length, in packets.
    pub cycle_packets: usize,
    /// Worst client heap across the population.
    pub peak_memory_bytes: usize,
    /// Access latency (packets) over the population.
    pub latency: PercentileSummary,
    /// Tuning time (packets) over the population.
    pub tuning: PercentileSummary,
    /// Radio energy (micro-joules) over the population.
    pub energy_uj: PercentileSummary,
    /// Total radio energy across the whole population, in joules.
    pub radio_energy_joules_total: f64,
    /// Flash-crowd fault/recovery summary — `Some` only for supervised
    /// flash cells, and only then serialized, so pre-existing cells stay
    /// byte-identical.
    pub fault: Option<LoadFaultSummary>,
    /// Wall-clock serving time for the cell (excluded from the digest).
    pub cpu_ms: f64,
    /// Mean measured CPU milliseconds of one real client session —
    /// profile sessions for replayed cells, every served session for
    /// full-session cells. Timing-only, like `cpu_ms`: excluded from the
    /// digest and serialized only with `include_timings`.
    pub client_cpu_ms: f64,
}

impl LoadCellReport {
    /// Whether every served session matched the oracle and none failed
    /// untyped or out of budget. Flash cells may report typed give-ups —
    /// those are the certified degradation mode, not a gate failure.
    pub fn exact(&self) -> bool {
        self.mismatches == 0
            && self.failures == 0
            && self.fault.as_ref().is_none_or(|f| f.budget_violations == 0)
    }

    fn json_fields(&self, include_timings: bool) -> String {
        let mut s = format!(
            "\"scenario\": \"{}\", \"method\": \"{}\", \"population\": {}, \
             \"query_pool\": {}, \"replayed\": {}, \"profile_sessions\": {}, \
             \"mismatches\": {}, \"failures\": {}, \"exact\": {}, \
             \"cycle_packets\": {}, \"peak_memory_bytes\": {}, \
             \"latency_packets\": {}, \"tuning_packets\": {}, \"energy_uj\": {}, \
             \"radio_energy_joules_total\": {:.6}",
            self.scenario,
            self.method,
            self.population,
            self.query_pool,
            self.replayed,
            self.profile_sessions,
            self.mismatches,
            self.failures,
            self.exact(),
            self.cycle_packets,
            self.peak_memory_bytes,
            self.latency.json(),
            self.tuning.json(),
            self.energy_uj.json(),
            self.radio_energy_joules_total,
        );
        if let Some(fault) = &self.fault {
            s.push_str(&format!(", \"fault\": {}", fault.json()));
        }
        if include_timings {
            s.push_str(&format!(
                ", \"cpu_ms\": {:.3}, \"client_cpu_ms\": {:.4}",
                self.cpu_ms, self.client_cpu_ms
            ));
        }
        s
    }
}

/// The full report of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Every (scenario × method) cell, in scenario-major order.
    pub cells: Vec<LoadCellReport>,
}

impl LoadReport {
    /// Whether every cell is exact — the load conformance gate.
    pub fn all_exact(&self) -> bool {
        self.cells.iter().all(LoadCellReport::exact)
    }

    /// Total oracle mismatches plus failed sessions.
    pub fn total_mismatches(&self) -> usize {
        self.cells
            .iter()
            .map(|c| (c.mismatches + c.failures) as usize)
            .sum()
    }

    /// Clients served across all cells.
    pub fn total_population(&self) -> usize {
        self.cells.iter().map(|c| c.population).sum()
    }

    /// Typed give-ups across every flash-crowd cell.
    pub fn total_typed_failures(&self) -> u64 {
        self.cells
            .iter()
            .filter_map(|c| c.fault.as_ref())
            .map(|f| f.typed_failures)
            .sum()
    }

    /// FNV-1a digest over the deterministic fields. Equal digests across
    /// thread counts / reruns certify reproducibility.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json(false).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serializes the cells. With `include_timings = false` the output
    /// contains only deterministic fields and is byte-for-byte
    /// reproducible from the specs' seeds.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&c.json_fields(include_timings));
            out.push_str(" }");
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// A fixed-width text table (one row per cell) for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<26} {:<9} {:>8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
            "Scenario",
            "Method",
            "Clients",
            "OK",
            "Lat p50",
            "Lat p99",
            "Tune p50",
            "Tune p99",
            "Cycle",
            "Joules"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<26} {:<9} {:>8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.1}\n",
                c.scenario,
                c.method,
                c.population,
                if c.exact() { "yes" } else { "NO" },
                c.latency.p50,
                c.latency.p99,
                c.tuning.p50,
                c.tuning.p99,
                c.cycle_packets,
                c.radio_energy_joules_total,
            ));
            if let Some(f) = &c.fault {
                out.push_str(&format!(
                    "  └ {}: {} typed failures ({:.3}%), {} retried, \
                     recovery p99 {} pkts (max {}), {} budget violations\n",
                    f.fault,
                    f.typed_failures,
                    f.failure_rate * 100.0,
                    f.retried,
                    f.recovery.p99,
                    f.recovery.max,
                    f.budget_violations,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> PercentileSummary {
        PercentileSummary {
            p50: 10,
            p95: 20,
            p99: 30,
            max: 40,
            mean: 12.5,
            overflow: 0,
            bucket_width: 4,
        }
    }

    fn cell(mismatches: u64) -> LoadCellReport {
        LoadCellReport {
            scenario: "s".to_string(),
            method: "nr",
            population: 100,
            query_pool: 4,
            replayed: true,
            profile_sessions: 8,
            mismatches,
            failures: 0,
            cycle_packets: 200,
            peak_memory_bytes: 1000,
            latency: summary(),
            tuning: summary(),
            energy_uj: summary(),
            radio_energy_joules_total: 1.5,
            fault: None,
            cpu_ms: 3.0,
            client_cpu_ms: 0.25,
        }
    }

    fn fault_summary() -> LoadFaultSummary {
        LoadFaultSummary {
            fault: "chaos1.0%@16.0c".to_string(),
            typed_failures: 3,
            failure_rate: 0.03,
            budget_violations: 0,
            attempts: 110,
            max_attempts: 3,
            retried: 7,
            recovery: summary(),
            failure_classes: vec![("cycle_aborted".to_string(), 3)],
        }
    }

    #[test]
    fn exactness_gates_on_mismatches_and_failures() {
        let mut r = LoadReport {
            cells: vec![cell(0)],
        };
        assert!(r.all_exact());
        r.cells[0].failures = 1;
        assert!(!r.all_exact());
        assert_eq!(r.total_mismatches(), 1);
    }

    #[test]
    fn digest_ignores_cpu_time_only() {
        let mut r = LoadReport {
            cells: vec![cell(0)],
        };
        let d0 = r.digest();
        r.cells[0].cpu_ms = 999.0;
        r.cells[0].client_cpu_ms = 999.0;
        assert_eq!(r.digest(), d0, "cpu time must not affect the digest");
        r.cells[0].latency.p99 += 1;
        assert_ne!(r.digest(), d0, "deterministic fields must");
    }

    #[test]
    fn json_with_timings_is_a_superset() {
        let r = LoadReport {
            cells: vec![cell(0)],
        };
        assert!(!r.to_json(false).contains("cpu_ms"));
        assert!(r.to_json(true).contains("cpu_ms"));
        assert!(r.to_json(true).contains("client_cpu_ms"));
        assert!(r.to_json(false).contains("latency_packets"));
    }

    #[test]
    fn fault_summary_serializes_only_when_present() {
        let mut r = LoadReport {
            cells: vec![cell(0)],
        };
        let plain = r.to_json(false);
        assert!(!plain.contains("\"fault\""), "non-flash cells unchanged");
        let d0 = r.digest();
        r.cells[0].fault = Some(fault_summary());
        let with = r.to_json(false);
        assert!(with.contains("\"fault\": {"));
        assert!(with.contains("\"failure_rate\": 0.030000"));
        assert!(with.contains("\"cycle_aborted\": 3"));
        assert_ne!(r.digest(), d0, "the summary is digest-covered");
        assert_eq!(r.total_typed_failures(), 3);
        assert!(r.render_table().contains("recovery p99"));
    }

    #[test]
    fn budget_violations_fail_the_gate_but_typed_failures_do_not() {
        let mut c = cell(0);
        c.fault = Some(fault_summary());
        assert!(c.exact(), "typed give-ups are certified degradation");
        c.fault.as_mut().unwrap().budget_violations = 1;
        assert!(!c.exact(), "budget violations fail the gate");
    }
}
