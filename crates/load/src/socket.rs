//! Socket-transport load harness: the `--transport socket` path behind
//! `BENCH_serve.json`.
//!
//! Where the in-process harness iterates a [`spair_broadcast`] channel
//! object, this module drives the real serving stack end to end: a
//! [`spair_serve::ServeDaemon`] on a loopback port, client sessions over
//! real UDP datagrams and TCP streams (optionally in separate worker
//! *processes*), and per-cell digests that must equal the in-process
//! answers byte for byte. The schedule (offsets, queries) is a pure
//! function of the scenario seed and the session index, so the digest is
//! invariant across worker counts and worker modes — that invariance is
//! what the CI serve gate pins.
//!
//! Cells come in three kinds:
//!
//! * `lossless` — method × transport × population, digest-gated against
//!   the in-process run;
//! * `contention-drops` — a dedicated daemon injects deterministic
//!   datagram drops ([`spair_serve::DropPlan`]); sessions finish late
//!   (healing laps) but every answer still matches in-process;
//! * `contention-evict` — deliberately stalled consumers against a
//!   short-stall daemon; the cell counts typed evictions. Contention
//!   cells never enter the digest (their counters are load-dependent),
//!   but their `wrong_answers` column must be zero: late or typed,
//!   never wrong.

use crate::hist::StreamingHistogram;
use spair_broadcast::{BroadcastChannel, LossModel};
use spair_core::query::Query;
use spair_core::BorderPrecomputation;
use spair_methods::{MethodRegistry, ProgramSet, World};
use spair_partition::KdTreePartition;
use spair_roadnet::generators::small_grid;
use spair_roadnet::{NodeId, Point, QueuePolicy};
use spair_serve::client::{run_query, SessionConfig, Transport};
use spair_serve::daemon::{DropPlan, ServeDaemon, ServeOptions, ServeSummary, ServeWorld};
use spair_serve::frame::{encode_stream, Frame, Hello};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How client sessions are executed.
#[derive(Debug, Clone)]
pub enum WorkerMode {
    /// Sessions run on threads inside this process (tests; still real
    /// sockets).
    InThread,
    /// Sessions run in spawned worker *processes* (the bench default):
    /// the given executable is re-invoked with `--socket-worker ADDR`
    /// and jobs stream over its stdin/stdout.
    Process(PathBuf),
}

/// Socket-bench configuration.
#[derive(Debug, Clone)]
pub struct SocketBenchConfig {
    /// Smoke matrix (smaller world and population).
    pub smoke: bool,
    /// Worker count (threads or processes, per [`WorkerMode`]).
    pub threads: usize,
    /// Sessions per lossless cell (`None` → matrix default).
    pub population: Option<usize>,
    /// Session execution mode.
    pub worker: WorkerMode,
    /// Directory for the daemons' event logs and dead-letter files.
    pub events_dir: PathBuf,
}

/// The served world every socket cell shares.
#[derive(Debug, Clone)]
pub struct SocketScenario {
    /// Grid width and height.
    pub grid: (usize, usize),
    /// Kd partition regions.
    pub regions: usize,
    /// World and schedule seed.
    pub seed: u64,
    /// Served registry methods.
    pub methods: Vec<&'static str>,
    /// Sessions per lossless cell.
    pub population: usize,
    /// Distinct queries the population draws from.
    pub query_pool: usize,
}

/// The full and smoke socket scenarios. Both serve NR (region data),
/// DJ (raw adjacency) and — full only — EB and HiTi, so flat-data and
/// index-carrying cycles both cross the wire.
pub fn socket_scenario(smoke: bool) -> SocketScenario {
    if smoke {
        SocketScenario {
            grid: (8, 8),
            regions: 8,
            seed: 9301,
            methods: vec!["nr", "dj"],
            population: 24,
            query_pool: 8,
        }
    } else {
        SocketScenario {
            grid: (12, 12),
            regions: 16,
            seed: 9301,
            methods: vec!["nr", "eb", "dj", "hiti_air"],
            population: 128,
            query_pool: 12,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One session to run: everything a worker process needs on one line.
#[derive(Debug, Clone)]
pub struct SessionJob {
    /// Global session index within its cell (digest order).
    pub index: usize,
    /// Registry method name.
    pub method: String,
    /// Data transport.
    pub transport: Transport,
    /// Absolute tune-in offset.
    pub offset: u64,
    /// The query this session answers.
    pub query: Query,
}

/// A completed session.
#[derive(Debug, Clone)]
pub struct SessionAnswer {
    /// Job index (cells collate by this).
    pub index: usize,
    /// Shortest-path distance.
    pub distance: u64,
    /// Path node sequence.
    pub path: Vec<NodeId>,
    /// Microseconds from connect to admission.
    pub admission_us: u64,
    /// Receiver-observed datagram gaps.
    pub observed_drops: u64,
    /// Laps listened until the cycle table filled.
    pub laps: u32,
}

/// The deterministic per-cell schedule: offsets and queries are pure
/// functions of (scenario seed, method name, session index) — the same
/// for every transport, worker count and worker mode.
pub fn schedule(
    sc: &SocketScenario,
    g: &spair_roadnet::RoadNetwork,
    method: &str,
    transport: Transport,
    population: usize,
) -> Vec<SessionJob> {
    let n = g.num_nodes() as u64;
    let mseed = method
        .bytes()
        .fold(sc.seed, |h, b| splitmix64(h ^ u64::from(b)));
    let pool: Vec<Query> = (0..sc.query_pool)
        .map(|i| {
            let h = splitmix64(mseed ^ 0x5155_4552_5950_4f4f ^ i as u64);
            let src = (h % n) as NodeId;
            let mut dst = (splitmix64(h) % n) as NodeId;
            if dst == src {
                dst = (dst + 1) % n as NodeId;
            }
            Query::for_nodes(g, src, dst)
        })
        .collect();
    (0..population)
        .map(|s| SessionJob {
            index: s,
            method: method.to_string(),
            transport,
            offset: splitmix64(mseed ^ 0x4f46_4653_4554 ^ s as u64) % 100_000,
            query: pool[s % pool.len()],
        })
        .collect()
}

/// FNV-1a over a cell's answers in session-index order — the quantity
/// the transports must agree on.
pub fn answers_digest(answers: &[SessionAnswer]) -> u64 {
    let mut sorted: Vec<&SessionAnswer> = answers.iter().collect();
    sorted.sort_by_key(|a| a.index);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for a in &sorted {
        fold(a.index as u64);
        fold(a.distance);
        fold(a.path.len() as u64);
        for &n in &a.path {
            fold(u64::from(n));
        }
    }
    h
}

/// In-process reference answers for a schedule: the same method client
/// over the same cycle at the same offsets, via the in-memory channel.
pub fn in_process_answers(programs: &ProgramSet, jobs: &[SessionJob]) -> Vec<SessionAnswer> {
    let registry = MethodRegistry::standard();
    jobs.iter()
        .map(|job| {
            let id = registry.get(&job.method).expect("scheduled method");
            let program = programs.ensure(id);
            let cycle = program.cycle().expect("served method has a cycle");
            let mut client = program.make_client(QueuePolicy::Heap).expect("air client");
            let mut ch = BroadcastChannel::tune_in(
                cycle,
                (job.offset % cycle.len() as u64) as usize,
                LossModel::Lossless,
            );
            let outcome = ch_query(&mut *client, &mut ch, &job.query);
            SessionAnswer {
                index: job.index,
                distance: outcome.0,
                path: outcome.1,
                admission_us: 0,
                observed_drops: 0,
                laps: 1,
            }
        })
        .collect()
}

fn ch_query(
    client: &mut dyn spair_core::query::AirClient,
    ch: &mut BroadcastChannel<'_>,
    q: &Query,
) -> (u64, Vec<NodeId>) {
    let outcome = client.query(ch, q).expect("lossless in-process query");
    (outcome.distance, outcome.path)
}

/// Builds the shared program set for a scenario.
pub fn build_programs(sc: &SocketScenario) -> ProgramSet {
    let g = small_grid(sc.grid.0, sc.grid.1, sc.seed);
    let part = KdTreePartition::build(&g, sc.regions);
    let pre = BorderPrecomputation::run(&g, &part);
    ProgramSet::new(World::from_parts(g, part, pre))
}

/// Runs one cell's jobs against a daemon, in threads or processes.
/// Returns answers (index order not guaranteed) and failures.
pub fn run_jobs(
    addr: SocketAddr,
    jobs: &[SessionJob],
    threads: usize,
    worker: &WorkerMode,
) -> (Vec<SessionAnswer>, Vec<String>) {
    match worker {
        WorkerMode::InThread => run_jobs_threads(addr, jobs, threads),
        WorkerMode::Process(exe) => run_jobs_processes(addr, jobs, threads, exe),
    }
}

fn run_one(addr: SocketAddr, job: &SessionJob) -> Result<SessionAnswer, String> {
    let config = SessionConfig {
        addr,
        method: job.method.clone(),
        transport: job.transport,
        offset: job.offset,
        queue: QueuePolicy::Heap,
        max_wait: Duration::from_secs(60),
        frame_pause: Duration::ZERO,
    };
    let (outcome, m) =
        run_query(&config, &job.query).map_err(|e| format!("session {}: {e}", job.index))?;
    Ok(SessionAnswer {
        index: job.index,
        distance: outcome.distance,
        path: outcome.path,
        admission_us: m.admission_us,
        observed_drops: m.observed_drops,
        laps: m.laps,
    })
}

fn run_jobs_threads(
    addr: SocketAddr,
    jobs: &[SessionJob],
    threads: usize,
) -> (Vec<SessionAnswer>, Vec<String>) {
    let queue: Arc<Mutex<VecDeque<SessionJob>>> =
        Arc::new(Mutex::new(jobs.iter().cloned().collect()));
    let out: Arc<Mutex<(Vec<SessionAnswer>, Vec<String>)>> =
        Arc::new(Mutex::new((Vec::new(), Vec::new())));
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let queue = Arc::clone(&queue);
            let out = Arc::clone(&out);
            scope.spawn(move || loop {
                let job = { queue.lock().unwrap().pop_front() };
                let Some(job) = job else { break };
                let res = run_one(addr, &job);
                let mut o = out.lock().unwrap();
                match res {
                    Ok(a) => o.0.push(a),
                    Err(e) => o.1.push(e),
                }
            });
        }
    });
    Arc::try_unwrap(out)
        .expect("workers joined")
        .into_inner()
        .unwrap()
}

/// Serializes a job as one worker-protocol line. Coordinates travel as
/// `f64::to_bits` hex so the worker reconstructs them exactly.
pub fn job_to_line(job: &SessionJob) -> String {
    format!(
        "{} {} {} {} {} {} {:016x} {:016x} {:016x} {:016x}\n",
        job.index,
        job.method,
        job.transport.name(),
        job.offset,
        job.query.source,
        job.query.target,
        job.query.source_pt.x.to_bits(),
        job.query.source_pt.y.to_bits(),
        job.query.target_pt.x.to_bits(),
        job.query.target_pt.y.to_bits(),
    )
}

/// Parses a worker-protocol job line (inverse of [`job_to_line`]).
pub fn job_from_line(line: &str) -> Result<SessionJob, String> {
    let mut p = line.split_ascii_whitespace();
    let mut next = |what: &str| p.next().ok_or_else(|| format!("missing {what}"));
    let index: usize = next("index")?.parse().map_err(|e| format!("index: {e}"))?;
    let method = next("method")?.to_string();
    let transport = match next("transport")? {
        "tcp" => Transport::Tcp,
        "udp" => Transport::Udp,
        other => return Err(format!("unknown transport {other}")),
    };
    let offset: u64 = next("offset")?
        .parse()
        .map_err(|e| format!("offset: {e}"))?;
    let source: NodeId = next("src")?.parse().map_err(|e| format!("src: {e}"))?;
    let target: NodeId = next("dst")?.parse().map_err(|e| format!("dst: {e}"))?;
    let mut coord = |what: &str| -> Result<f64, String> {
        let bits = u64::from_str_radix(next(what)?, 16).map_err(|e| format!("{what}: {e}"))?;
        Ok(f64::from_bits(bits))
    };
    let (sx, sy, tx, ty) = (coord("sx")?, coord("sy")?, coord("tx")?, coord("ty")?);
    Ok(SessionJob {
        index,
        method,
        transport,
        offset,
        query: Query {
            source,
            target,
            source_pt: Point::new(sx, sy),
            target_pt: Point::new(tx, ty),
        },
    })
}

fn answer_to_line(a: &SessionAnswer) -> String {
    let path: Vec<String> = a.path.iter().map(|n| n.to_string()).collect();
    format!(
        "ok {} {} {} {} {} {}\n",
        a.index,
        a.distance,
        a.admission_us,
        a.observed_drops,
        a.laps,
        path.join(",")
    )
}

fn answer_from_line(line: &str) -> Result<SessionAnswer, String> {
    let mut p = line.split_ascii_whitespace();
    match p.next() {
        Some("ok") => {}
        Some("err") => return Err(line["err".len()..].trim().to_string()),
        other => return Err(format!("bad worker reply {other:?}")),
    }
    let mut next = |what: &str| {
        p.next()
            .ok_or_else(|| format!("missing {what}"))
            .and_then(|s| s.parse::<u64>().map_err(|e| format!("{what}: {e}")))
    };
    let index = next("index")? as usize;
    let distance = next("distance")?;
    let admission_us = next("admission_us")?;
    let observed_drops = next("observed_drops")?;
    let laps = next("laps")? as u32;
    let path_field = p.next().unwrap_or("");
    let path: Vec<NodeId> = if path_field.is_empty() {
        Vec::new()
    } else {
        path_field
            .split(',')
            .map(|s| s.parse().map_err(|e| format!("path: {e}")))
            .collect::<Result<_, String>>()?
    };
    Ok(SessionAnswer {
        index,
        distance,
        path,
        admission_us,
        observed_drops,
        laps,
    })
}

/// The worker-process entry point: `bench_load --socket-worker ADDR`
/// lands here. Reads job lines on stdin, runs each session against the
/// daemon at `addr`, writes one reply line per job, exits 0.
pub fn socket_worker_main(addr: &str) -> ! {
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("socket worker: bad addr: {e}");
            std::process::exit(2);
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match job_from_line(&line) {
            Ok(job) => match run_one(addr, &job) {
                Ok(a) => answer_to_line(&a),
                Err(e) => format!("err {e}\n"),
            },
            Err(e) => format!("err bad job line: {e}\n"),
        };
        if out.write_all(reply.as_bytes()).is_err() {
            break;
        }
        let _ = out.flush();
    }
    std::process::exit(0);
}

fn run_jobs_processes(
    addr: SocketAddr,
    jobs: &[SessionJob],
    threads: usize,
    exe: &Path,
) -> (Vec<SessionAnswer>, Vec<String>) {
    let workers = threads.max(1).min(jobs.len().max(1));
    let mut children = Vec::new();
    for w in 0..workers {
        let share: Vec<&SessionJob> = jobs.iter().skip(w).step_by(workers).collect();
        if share.is_empty() {
            continue;
        }
        let mut child = match std::process::Command::new(exe)
            .arg("--socket-worker")
            .arg(addr.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
        {
            Ok(c) => c,
            Err(e) => {
                return (
                    Vec::new(),
                    vec![format!("spawn worker {}: {e}", exe.display())],
                )
            }
        };
        let mut stdin = child.stdin.take().expect("piped stdin");
        let mut wire = String::new();
        for job in &share {
            wire.push_str(&job_to_line(job));
        }
        // Small shares fit comfortably in the pipe buffer; write and
        // close so the worker sees EOF after its last job.
        if stdin.write_all(wire.as_bytes()).is_err() {
            let _ = child.kill();
        }
        drop(stdin);
        children.push((child, share.len()));
    }
    let mut answers = Vec::new();
    let mut failures = Vec::new();
    for (mut child, expected) in children {
        let stdout = child.stdout.take().expect("piped stdout");
        let mut got = 0usize;
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match answer_from_line(&line) {
                Ok(a) => answers.push(a),
                Err(e) => failures.push(e),
            }
            got += 1;
        }
        if got != expected {
            failures.push(format!("worker returned {got}/{expected} replies"));
        }
        match child.wait() {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("worker exited {s}")),
            Err(e) => failures.push(format!("worker wait: {e}")),
        }
    }
    (answers, failures)
}

/// One socket bench cell's results.
#[derive(Debug, Clone)]
pub struct SocketCellReport {
    /// Registry method name.
    pub method: String,
    /// Transport column.
    pub transport: &'static str,
    /// `lossless`, `contention-drops` or `contention-evict`.
    pub kind: &'static str,
    /// Sessions attempted.
    pub population: usize,
    /// Sessions that produced an answer.
    pub completed: usize,
    /// FNV digest of the answers (0 for the evict cell).
    pub answers_digest: u64,
    /// FNV digest of the in-process reference.
    pub expected_digest: u64,
    /// Whether the two digests agree (always true for committed runs).
    pub digest_match: bool,
    /// Sessions whose answer differed from in-process (must be 0).
    pub wrong_answers: usize,
    /// Typed session failures (strings; empty for lossless cells).
    pub failures: Vec<String>,
    /// Receiver-observed datagram gaps, summed.
    pub observed_drops: u64,
    /// Daemon-side injected drops (contention-drops cell).
    pub drops_injected: u64,
    /// Daemon-side send-buffer drops.
    pub backpressure_drops: u64,
    /// Slow consumers evicted (contention-evict cell).
    pub evictions: u64,
    /// Admission-latency histogram (µs).
    pub admission_us: StreamingHistogram,
    /// Wall-clock seconds for the cell (excluded from digests).
    pub wall_secs: f64,
}

impl SocketCellReport {
    fn admission_json(&self) -> String {
        let h = &self.admission_us;
        format!(
            "{{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }}",
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max()
        )
    }
}

/// The full socket bench report behind `BENCH_serve.json`.
#[derive(Debug)]
pub struct SocketReport {
    /// The scenario every cell shares.
    pub scenario: SocketScenario,
    /// Worker count used.
    pub threads: usize,
    /// `"process"` or `"thread"` workers.
    pub worker_mode: &'static str,
    /// Per-cell results.
    pub cells: Vec<SocketCellReport>,
    /// Lossless daemon counters after shutdown.
    pub daemon: ServeSummary,
}

impl SocketReport {
    /// Every lossless cell digest matches in-process and no cell —
    /// contention included — produced a wrong answer.
    pub fn all_match(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.digest_match && c.wrong_answers == 0)
    }

    /// FNV-1a over the deterministic columns only: cell identity,
    /// population, answer digests and digest verdicts. Timing,
    /// contention counters and daemon totals are excluded, so the
    /// digest is invariant across worker counts and worker modes.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold_bytes = |bytes: &[u8], h: &mut u64| {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for c in &self.cells {
            if c.kind != "lossless" {
                continue;
            }
            fold_bytes(c.method.as_bytes(), &mut h);
            fold_bytes(c.transport.as_bytes(), &mut h);
            fold_bytes(&(c.population as u64).to_le_bytes(), &mut h);
            fold_bytes(&c.answers_digest.to_le_bytes(), &mut h);
            fold_bytes(&c.expected_digest.to_le_bytes(), &mut h);
            fold_bytes(&[u8::from(c.digest_match)], &mut h);
            fold_bytes(&(c.wrong_answers as u64).to_le_bytes(), &mut h);
        }
        h
    }

    /// Renders the cells array (pretty, two-space indented under the
    /// top-level document).
    pub fn cells_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"method\": \"{}\", \"transport\": \"{}\", \"kind\": \"{}\", \
                 \"population\": {}, \"completed\": {}, \
                 \"answers_digest\": \"{:016x}\", \"expected_digest\": \"{:016x}\", \
                 \"digest_match\": {}, \"wrong_answers\": {}, \"failures\": {}, \
                 \"observed_drops\": {}, \"drops_injected\": {}, \
                 \"backpressure_drops\": {}, \"evictions\": {}, \
                 \"admission_us\": {}, \"wall_secs\": {:.6} }}{}\n",
                c.method,
                c.transport,
                c.kind,
                c.population,
                c.completed,
                c.answers_digest,
                c.expected_digest,
                c.digest_match,
                c.wrong_answers,
                c.failures.len(),
                c.observed_drops,
                c.drops_injected,
                c.backpressure_drops,
                c.evictions,
                c.admission_json(),
                c.wall_secs,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]");
        out
    }

    /// One human-readable line per cell (stderr progress table).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "  {:<10} {:<4} {:<17} n={:<5} match={} wrong={} drops(inj/bp/obs)={}/{}/{} evict={} adm_p95={}us {:.2}s\n",
                c.method,
                c.transport,
                c.kind,
                c.completed,
                c.digest_match,
                c.wrong_answers,
                c.drops_injected,
                c.backpressure_drops,
                c.observed_drops,
                c.evictions,
                c.admission_us.percentile(0.95),
                c.wall_secs,
            ));
        }
        out
    }
}

fn admission_hist() -> StreamingHistogram {
    // Bound 100ms in µs; loopback admissions sit far below.
    StreamingHistogram::with_bound(100_000, 200)
}

fn collate_cell(
    method: &str,
    transport: &'static str,
    kind: &'static str,
    jobs: &[SessionJob],
    (answers, failures): (Vec<SessionAnswer>, Vec<String>),
    expected: &[SessionAnswer],
    wall_secs: f64,
) -> SocketCellReport {
    let mut admission = admission_hist();
    let mut observed_drops = 0u64;
    for a in &answers {
        admission.record(a.admission_us);
        observed_drops += a.observed_drops;
    }
    let mut wrong = 0usize;
    for a in &answers {
        let e = &expected[a.index];
        debug_assert_eq!(e.index, a.index);
        if a.distance != e.distance || a.path != e.path {
            wrong += 1;
        }
    }
    let digest = answers_digest(&answers);
    let expected_digest = answers_digest(expected);
    SocketCellReport {
        method: method.to_string(),
        transport,
        kind,
        population: jobs.len(),
        completed: answers.len(),
        answers_digest: digest,
        expected_digest,
        digest_match: digest == expected_digest && answers.len() == jobs.len(),
        wrong_answers: wrong,
        failures,
        observed_drops,
        drops_injected: 0,
        backpressure_drops: 0,
        evictions: 0,
        admission_us: admission,
        wall_secs,
    }
}

/// Runs the socket bench end to end and returns the report.
pub fn run_socket_bench(config: &SocketBenchConfig) -> SocketReport {
    let sc = socket_scenario(config.smoke);
    let population = config.population.unwrap_or(sc.population);
    std::fs::create_dir_all(&config.events_dir).expect("events dir");
    let programs = build_programs(&sc);
    let g = programs.world().g.clone();
    let registry = MethodRegistry::standard();
    let ids: Vec<_> = sc
        .methods
        .iter()
        .map(|n| registry.get(n).expect("scenario method"))
        .collect();

    // --- Lossless cells: one daemon serves every method's channel. ---
    let world = ServeWorld::from_program_set(&programs, &ids);
    let opts = ServeOptions {
        events_path: config.events_dir.join("serve.events.jsonl"),
        dead_letter_path: config.events_dir.join("serve.deadletter.jsonl"),
        ..ServeOptions::in_dir(&config.events_dir)
    };
    let daemon = ServeDaemon::start(world, opts).expect("start lossless daemon");
    let addr = daemon.local_addr();

    let mut cells = Vec::new();
    for method in &sc.methods {
        // The schedule is transport-independent, so the UDP and TCP
        // digests must agree with each other *and* with in-process.
        let expected = {
            let jobs = schedule(&sc, &g, method, Transport::Udp, population);
            in_process_answers(&programs, &jobs)
        };
        for transport in [Transport::Udp, Transport::Tcp] {
            let jobs = schedule(&sc, &g, method, transport, population);
            let start = Instant::now();
            let (answers, failures) = run_jobs(addr, &jobs, config.threads, &config.worker);
            let wall = start.elapsed().as_secs_f64();
            eprintln!(
                "  cell {method}/{} served {}/{} sessions in {wall:.2}s",
                transport.name(),
                answers.len(),
                jobs.len()
            );
            cells.push(collate_cell(
                method,
                transport.name(),
                "lossless",
                &jobs,
                (answers, failures),
                &expected,
                wall,
            ));
        }
    }
    let daemon_summary = daemon.shutdown().expect("lossless daemon shutdown");

    // --- Contention cell 1: deterministic injected datagram drops. ---
    let drop_method = sc.methods[0];
    let drop_population = population.min(16);
    let world = ServeWorld::from_program_set(&programs, &ids[..1]);
    let opts = ServeOptions {
        drop_plan: Some(DropPlan {
            permille: 200,
            laps: 2,
        }),
        events_path: config.events_dir.join("serve.drops.events.jsonl"),
        dead_letter_path: config.events_dir.join("serve.drops.deadletter.jsonl"),
        ..ServeOptions::in_dir(&config.events_dir)
    };
    let drop_daemon = ServeDaemon::start(world, opts).expect("start drop daemon");
    let drop_addr = drop_daemon.local_addr();
    let jobs = schedule(&sc, &g, drop_method, Transport::Udp, drop_population);
    let expected = in_process_answers(&programs, &jobs);
    let start = Instant::now();
    // Contention cells always run in-thread: they measure the daemon
    // under pressure, not client-process scaling.
    let (answers, failures) = run_jobs(drop_addr, &jobs, config.threads, &WorkerMode::InThread);
    let wall = start.elapsed().as_secs_f64();
    let drop_summary = drop_daemon.shutdown().expect("drop daemon shutdown");
    let mut cell = collate_cell(
        drop_method,
        "udp",
        "contention-drops",
        &jobs,
        (answers, failures),
        &expected,
        wall,
    );
    cell.drops_injected = drop_summary.injected_drops;
    cell.backpressure_drops = drop_summary.backpressure_drops;
    cells.push(cell);

    // --- Contention cell 2: stalled consumers get evicted. ---
    let world = ServeWorld::from_program_set(&programs, &ids[..1]);
    let opts = ServeOptions {
        stall: Duration::from_millis(100),
        max_laps: 1_000_000,
        lap_pause: Duration::ZERO,
        events_path: config.events_dir.join("serve.evict.events.jsonl"),
        dead_letter_path: config.events_dir.join("serve.evict.deadletter.jsonl"),
        ..ServeOptions::in_dir(&config.events_dir)
    };
    let evict_daemon = ServeDaemon::start(world, opts).expect("start evict daemon");
    let evict_addr = evict_daemon.local_addr();
    let start = Instant::now();
    let stalled = 4usize;
    let mut stalled_conns = Vec::new();
    for _ in 0..stalled {
        // Handshake, then never read: the daemon must evict us.
        let mut s = TcpStream::connect(evict_addr).expect("connect evict daemon");
        s.write_all(&encode_stream(&Frame::Hello(Hello {
            method: sc.methods[0].to_string(),
            transport: 0,
            udp_port: 0,
            offset: 0,
        })))
        .expect("hello");
        stalled_conns.push(s);
    }
    let events_path = config.events_dir.join("serve.evict.events.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let text = std::fs::read_to_string(&events_path).unwrap_or_default();
        if text.matches("client_evicted").count() >= stalled {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "evict daemon never evicted its stalled consumers"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(stalled_conns);
    let evict_summary = evict_daemon.shutdown().expect("evict daemon shutdown");
    let wall = start.elapsed().as_secs_f64();
    cells.push(SocketCellReport {
        method: sc.methods[0].to_string(),
        transport: "tcp",
        kind: "contention-evict",
        population: stalled,
        completed: 0,
        answers_digest: 0,
        expected_digest: 0,
        digest_match: true, // no answers to disagree
        wrong_answers: 0,
        failures: Vec::new(),
        observed_drops: 0,
        drops_injected: 0,
        backpressure_drops: 0,
        evictions: evict_summary.evictions,
        admission_us: admission_hist(),
        wall_secs: wall,
    });

    SocketReport {
        scenario: sc,
        threads: config.threads,
        worker_mode: match config.worker {
            WorkerMode::InThread => "thread",
            WorkerMode::Process(_) => "process",
        },
        cells,
        daemon: daemon_summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_lines_roundtrip_exactly() {
        let sc = socket_scenario(true);
        let programs = build_programs(&sc);
        let g = programs.world().g.clone();
        let jobs = schedule(&sc, &g, "nr", Transport::Udp, 9);
        for job in &jobs {
            let back = job_from_line(&job_to_line(job)).expect("roundtrip");
            assert_eq!(back.index, job.index);
            assert_eq!(back.method, job.method);
            assert_eq!(back.transport, job.transport);
            assert_eq!(back.offset, job.offset);
            assert_eq!(back.query, job.query);
        }
    }

    #[test]
    fn answer_lines_roundtrip_and_type_errors() {
        let a = SessionAnswer {
            index: 5,
            distance: 123_456,
            path: vec![1, 2, 3, 60],
            admission_us: 890,
            observed_drops: 2,
            laps: 3,
        };
        let b = answer_from_line(&answer_to_line(&a)).expect("roundtrip");
        assert_eq!(b.index, 5);
        assert_eq!(b.distance, 123_456);
        assert_eq!(b.path, vec![1, 2, 3, 60]);
        assert_eq!((b.admission_us, b.observed_drops, b.laps), (890, 2, 3));
        assert!(answer_from_line("err session 3: timed out").is_err());
        assert!(answer_from_line("garbage").is_err());
    }

    #[test]
    fn schedule_is_deterministic_and_transport_invariant() {
        let sc = socket_scenario(true);
        let programs = build_programs(&sc);
        let g = programs.world().g.clone();
        let a = schedule(&sc, &g, "nr", Transport::Udp, 16);
        let b = schedule(&sc, &g, "nr", Transport::Tcp, 16);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.offset, y.offset, "offsets must not depend on transport");
            assert_eq!(x.query, y.query);
        }
        // Different methods draw different offsets (independent seeds).
        let c = schedule(&sc, &g, "dj", Transport::Udp, 16);
        assert!(a.iter().zip(&c).any(|(x, y)| x.offset != y.offset));
    }

    #[test]
    fn answers_digest_is_order_invariant_but_content_sensitive() {
        let mk = |d: u64| SessionAnswer {
            index: (d % 3) as usize,
            distance: d,
            path: vec![d as NodeId],
            admission_us: 1,
            observed_drops: 0,
            laps: 1,
        };
        let fwd = vec![mk(10), mk(11), mk(12)];
        let rev: Vec<SessionAnswer> = fwd.iter().rev().cloned().collect();
        assert_eq!(answers_digest(&fwd), answers_digest(&rev));
        let mut changed = fwd.clone();
        changed[1].distance += 1;
        assert_ne!(answers_digest(&fwd), answers_digest(&changed));
    }
}
