//! Population-scale load runner and `BENCH_load.json` emitter — the
//! million-tune-in trajectory point.
//!
//! ```text
//! cargo run --release -p spair-load --bin bench_load -- \
//!     [--smoke] [--threads N] [--population N] [--scale F] [--out BENCH_load.json]
//! ```
//!
//! Serves the default load matrix (or the small `--smoke` gate): for
//! every (scenario × method) cell, N clients tune in at seeded random
//! offsets against one shared air cycle, and streaming histograms
//! aggregate per-client access latency, tuning time and radio energy
//! into p50/p95/p99/max. `--scale` resizes the paper-scale germany-class
//! network (1.0 → 100k nodes); `--population` overrides the per-cell
//! client count (lossless cells exactly, lossy cells capped). Worker
//! precedence: `--threads` beats `SPAIR_THREADS` beats detection.
//!
//! The serving phase re-runs single-threaded to certify the parallel
//! fan-out is bit-identical. **Exits non-zero on any oracle mismatch,
//! session failure or determinism break**, so CI can use it as a gate.
//!
//! `--transport socket` switches to the real serving stack: a
//! `spair-serve` daemon on a loopback port, client sessions in spawned
//! worker processes over UDP and TCP, emitting `BENCH_serve.json`
//! (`--events DIR` places the daemons' JSONL event logs). Every lossless
//! socket cell's answer digest must equal the in-process reference.

use spair_load::spec::override_population;
use spair_load::{
    default_load_matrix, override_flash_population, prepare, run, run_socket_bench,
    smoke_load_matrix, SocketBenchConfig, WorkerMode,
};
use spair_roadnet::{bench_out, parallel};
use std::time::Instant;

/// Which serving stack the population runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportMode {
    /// The in-process broadcast channel (the default, `BENCH_load.json`).
    Channel,
    /// Real loopback sockets against a `spair-serve` daemon, client
    /// sessions in worker processes (`BENCH_serve.json`).
    Socket,
}

struct Opts {
    smoke: bool,
    threads: usize,
    scale: f64,
    population: Option<usize>,
    flash_population: Option<usize>,
    transport: TransportMode,
    events: Option<String>,
    out: String,
    out_set: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        threads: 0,
        scale: 1.0,
        population: None,
        flash_population: None,
        transport: TransportMode::Channel,
        events: None,
        out: "BENCH_load.json".to_string(),
        out_set: false,
    };
    // Worker-count precedence (shared by every bench binary): an explicit
    // `--threads` flag wins over `SPAIR_THREADS`, which wins over the
    // detected parallelism.
    let mut threads_flag: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--threads" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads_flag = Some(n);
            }
            "--scale" => {
                opts.scale = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a positive number");
                    std::process::exit(2);
                });
                if !opts.scale.is_finite() || opts.scale <= 0.0 {
                    eprintln!("error: --scale must be > 0");
                    std::process::exit(2);
                }
            }
            "--population" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --population expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --population must be >= 1");
                    std::process::exit(2);
                }
                opts.population = Some(n);
            }
            "--flash-population" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --flash-population expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --flash-population must be >= 1");
                    std::process::exit(2);
                }
                opts.flash_population = Some(n);
            }
            "--transport" => {
                opts.transport = match value().as_str() {
                    "channel" => TransportMode::Channel,
                    "socket" => TransportMode::Socket,
                    other => {
                        eprintln!("error: --transport expects channel|socket, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--events" => opts.events = Some(value()),
            "--out" => {
                opts.out = value();
                opts.out_set = true;
            }
            other => {
                eprintln!(
                    "error: unknown flag {other}\n\
                     usage: bench_load [--smoke] [--threads N] [--population N] \
                     [--flash-population N] [--scale F] [--transport channel|socket] \
                     [--events DIR] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.transport == TransportMode::Socket && !opts.out_set {
        opts.out = "BENCH_serve.json".to_string();
    }
    opts.threads = parallel::resolve_threads(threads_flag);
    opts.out = bench_out::redirect_partial_out(&opts.out, partial_reason(&opts));
    opts
}

/// A run may refresh the committed `BENCH_load.json` only in the full
/// default configuration: the default matrix at scale 1.0 with the
/// specs' own populations. Everything else — the smoke matrix, a resized
/// network, an overridden client count — is a partial run redirected to
/// `*.smoke.json`.
fn partial_reason(opts: &Opts) -> Option<&'static str> {
    if opts.smoke {
        Some("--smoke")
    } else if opts.scale != 1.0 {
        Some("--scale")
    } else if opts.population.is_some() {
        Some("--population-override")
    } else if opts.flash_population.is_some() {
        Some("--flash-population-override")
    } else {
        None
    }
}

/// The socket-transport path: real loopback daemons, client sessions in
/// worker processes, `BENCH_serve.json`. Exits non-zero if any lossless
/// cell's digest diverges from the in-process reference or any cell —
/// contention included — produced a wrong answer.
fn run_socket_main(opts: &Opts) {
    let events_dir = opts
        .events
        .clone()
        .unwrap_or_else(|| "target/serve-bench".to_string());
    let exe = std::env::current_exe().expect("current exe for worker spawn");
    let config = SocketBenchConfig {
        smoke: opts.smoke,
        threads: opts.threads,
        population: opts.population,
        worker: WorkerMode::Process(exe),
        events_dir: events_dir.clone().into(),
    };
    eprintln!(
        "# bench_load --transport socket — {} worker processes, events under {events_dir}{}",
        opts.threads,
        if opts.smoke { " (smoke)" } else { "" }
    );
    let start = Instant::now();
    let report = run_socket_bench(&config);
    let wall_secs = start.elapsed().as_secs_f64();
    eprint!("{}", report.render_table());

    let digest = report.digest();
    let all_match = report.all_match();
    eprintln!(
        "cells: {}  all_match: {all_match}  digest: {digest:016x}",
        report.cells.len()
    );

    let sc = &report.scenario;
    let methods: Vec<String> = sc.methods.iter().map(|m| format!("\"{m}\"")).collect();
    let d = &report.daemon;
    let json = format!(
        "{{\n  \
         \"benchmark\": \"broadcast_serve_socket\",\n  \
         \"smoke\": {},\n  \
         \"grid\": [{}, {}],\n  \
         \"regions\": {},\n  \
         \"seed\": {},\n  \
         \"methods\": [{}],\n  \
         \"population_per_cell\": {},\n  \
         \"threads\": {},\n  \
         \"worker_mode\": \"{}\",\n  \
         \"all_match\": {all_match},\n  \
         \"digest\": \"{digest:016x}\",\n  \
         \"daemon\": {{ \"sessions\": {}, \"rejections\": {}, \"evictions\": {}, \
         \"injected_drops\": {}, \"backpressure_drops\": {}, \"dead_letters\": {}, \
         \"events\": {} }},\n  \
         \"wall_secs\": {wall_secs:.6},\n  \
         \"cells\": {}\n\
         }}\n",
        opts.smoke,
        sc.grid.0,
        sc.grid.1,
        sc.regions,
        sc.seed,
        methods.join(", "),
        opts.population.unwrap_or(sc.population),
        report.threads,
        report.worker_mode,
        d.sessions,
        d.rejections,
        d.evictions,
        d.injected_drops,
        d.backpressure_drops,
        d.dead_letters,
        d.events,
        report.cells_json(),
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_serve json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
    if !all_match {
        eprintln!("SERVE CONFORMANCE FAILURE: socket answers diverged from in-process");
        std::process::exit(1);
    }
}

fn main() {
    // Hidden worker mode: the socket bench re-invokes this binary as
    // `bench_load --socket-worker ADDR` for each client process; jobs
    // stream over stdin, replies over stdout (see `spair_load::socket`).
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--socket-worker") {
        let addr = args.get(1).map(String::as_str).unwrap_or("");
        spair_load::socket::socket_worker_main(addr);
    }
    let opts = parse_opts();
    if opts.transport == TransportMode::Socket {
        run_socket_main(&opts);
        return;
    }
    let mut specs = if opts.smoke {
        smoke_load_matrix()
    } else {
        default_load_matrix(opts.scale)
    };
    if let Some(n) = opts.population {
        override_population(&mut specs, n);
    }
    // After --population, so an explicit flash override wins the cap.
    if let Some(n) = opts.flash_population {
        override_flash_population(&mut specs, n);
    }
    let cells: usize = specs.iter().map(|s| s.methods.len()).sum();
    eprintln!(
        "# bench_load — {} scenarios, {} cells, {} threads{}",
        specs.len(),
        cells,
        opts.threads,
        if opts.smoke { " (smoke)" } else { "" }
    );

    let start = Instant::now();
    let prep = prepare(&specs, opts.threads);
    let prepare_secs = start.elapsed().as_secs_f64();
    eprintln!(
        "prepared {} cells ({} profile sessions) in {prepare_secs:.2}s",
        prep.cells().len(),
        prep.profile_sessions()
    );
    for (i, cell) in prep.cells().iter().enumerate() {
        if cell.profile_sessions() > 0 {
            eprintln!(
                "  {:<38} {:>5} profile sessions in {:.2}s",
                prep.cell_label(i),
                cell.profile_sessions(),
                cell.profile_secs()
            );
        }
    }

    let start = Instant::now();
    let report = run(&prep, opts.threads);
    let serve_secs = start.elapsed().as_secs_f64();
    eprint!("{}", report.render_table());

    // Determinism certificate: a single-threaded serve over the same
    // prepared state must be byte-identical. With --threads 1 the first
    // serve already is the serial reference — skip the tautology.
    let digest = report.digest();
    let (serial_secs, bit_identical) = if opts.threads == 1 {
        (serve_secs, true)
    } else {
        let start = Instant::now();
        let serial = run(&prep, 1);
        (
            start.elapsed().as_secs_f64(),
            serial.to_json(false) == report.to_json(false),
        )
    };

    let conformant = report.all_exact();
    eprintln!(
        "population: {}  mismatches: {}  digest: {digest:016x}  bit_identical: {bit_identical}",
        report.total_population(),
        report.total_mismatches(),
    );

    let json = format!(
        "{{\n  \
         \"benchmark\": \"broadcast_load_population\",\n  \
         \"smoke\": {},\n  \
         \"scale\": {:.3},\n  \
         \"scenarios\": {},\n  \
         \"cells\": {},\n  \
         \"population_total\": {},\n  \
         \"profile_sessions\": {},\n  \
         \"mismatches\": {},\n  \
         \"typed_failures\": {},\n  \
         \"all_exact\": {},\n  \
         \"digest\": \"{digest:016x}\",\n  \
         \"bit_identical_across_threads\": {bit_identical},\n  \
         \"host\": {{ \"available_parallelism\": {}, \"worker_threads\": {} }},\n  \
         \"prepare_secs\": {prepare_secs:.6},\n  \
         \"serve_secs\": {serve_secs:.6},\n  \
         \"serial_serve_secs\": {serial_secs:.6},\n  \
         \"cells_detail\": {}\n\
         }}\n",
        opts.smoke,
        opts.scale,
        specs.len(),
        report.cells.len(),
        report.total_population(),
        prep.profile_sessions(),
        report.total_mismatches(),
        report.total_typed_failures(),
        conformant,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        opts.threads,
        report.to_json(true),
    );
    std::fs::write(&opts.out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);

    if !conformant {
        eprintln!(
            "LOAD CONFORMANCE FAILURE: {} mismatched/failed sessions",
            report.total_mismatches()
        );
        std::process::exit(1);
    }
    if !bit_identical {
        eprintln!("DETERMINISM FAILURE: parallel serve diverged from serial");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_opts() -> Opts {
        Opts {
            smoke: false,
            threads: 1,
            scale: 1.0,
            population: None,
            flash_population: None,
            transport: TransportMode::Channel,
            events: None,
            out: "BENCH_load.json".to_string(),
            out_set: false,
        }
    }

    #[test]
    fn full_default_run_may_write_the_committed_artifact() {
        assert_eq!(partial_reason(&full_opts()), None);
    }

    #[test]
    fn smoke_scaled_and_overridden_runs_are_partial() {
        let mut o = full_opts();
        o.smoke = true;
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_load.smoke.json"
        );
        let mut o = full_opts();
        o.scale = 0.25;
        assert_eq!(partial_reason(&o), Some("--scale"));
        let mut o = full_opts();
        o.population = Some(1000);
        assert_eq!(partial_reason(&o), Some("--population-override"));
        let mut o = full_opts();
        o.flash_population = Some(1000);
        assert_eq!(partial_reason(&o), Some("--flash-population-override"));
    }

    /// The socket artifact gets the same clobber guard: only the full
    /// default socket run may write `BENCH_serve.json`; smoke and
    /// population-overridden runs are redirected to `*.smoke.json`.
    #[test]
    fn socket_runs_share_the_clobber_guard() {
        let mut o = full_opts();
        o.transport = TransportMode::Socket;
        o.out = "BENCH_serve.json".to_string();
        assert_eq!(partial_reason(&o), None);
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_serve.json"
        );
        o.smoke = true;
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_serve.smoke.json"
        );
        o.smoke = false;
        o.population = Some(8);
        assert_eq!(partial_reason(&o), Some("--population-override"));
    }
}
