//! Population-scale load runner and `BENCH_load.json` emitter — the
//! million-tune-in trajectory point.
//!
//! ```text
//! cargo run --release -p spair-load --bin bench_load -- \
//!     [--smoke] [--threads N] [--population N] [--scale F] [--out BENCH_load.json]
//! ```
//!
//! Serves the default load matrix (or the small `--smoke` gate): for
//! every (scenario × method) cell, N clients tune in at seeded random
//! offsets against one shared air cycle, and streaming histograms
//! aggregate per-client access latency, tuning time and radio energy
//! into p50/p95/p99/max. `--scale` resizes the paper-scale germany-class
//! network (1.0 → 100k nodes); `--population` overrides the per-cell
//! client count (lossless cells exactly, lossy cells capped). Worker
//! precedence: `--threads` beats `SPAIR_THREADS` beats detection.
//!
//! The serving phase re-runs single-threaded to certify the parallel
//! fan-out is bit-identical. **Exits non-zero on any oracle mismatch,
//! session failure or determinism break**, so CI can use it as a gate.

use spair_load::spec::override_population;
use spair_load::{default_load_matrix, override_flash_population, prepare, run, smoke_load_matrix};
use spair_roadnet::{bench_out, parallel};
use std::time::Instant;

struct Opts {
    smoke: bool,
    threads: usize,
    scale: f64,
    population: Option<usize>,
    flash_population: Option<usize>,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        threads: 0,
        scale: 1.0,
        population: None,
        flash_population: None,
        out: "BENCH_load.json".to_string(),
    };
    // Worker-count precedence (shared by every bench binary): an explicit
    // `--threads` flag wins over `SPAIR_THREADS`, which wins over the
    // detected parallelism.
    let mut threads_flag: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--threads" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads_flag = Some(n);
            }
            "--scale" => {
                opts.scale = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a positive number");
                    std::process::exit(2);
                });
                if !opts.scale.is_finite() || opts.scale <= 0.0 {
                    eprintln!("error: --scale must be > 0");
                    std::process::exit(2);
                }
            }
            "--population" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --population expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --population must be >= 1");
                    std::process::exit(2);
                }
                opts.population = Some(n);
            }
            "--flash-population" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --flash-population expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --flash-population must be >= 1");
                    std::process::exit(2);
                }
                opts.flash_population = Some(n);
            }
            "--out" => opts.out = value(),
            other => {
                eprintln!(
                    "error: unknown flag {other}\n\
                     usage: bench_load [--smoke] [--threads N] [--population N] \
                     [--flash-population N] [--scale F] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts.threads = parallel::resolve_threads(threads_flag);
    opts.out = bench_out::redirect_partial_out(&opts.out, partial_reason(&opts));
    opts
}

/// A run may refresh the committed `BENCH_load.json` only in the full
/// default configuration: the default matrix at scale 1.0 with the
/// specs' own populations. Everything else — the smoke matrix, a resized
/// network, an overridden client count — is a partial run redirected to
/// `*.smoke.json`.
fn partial_reason(opts: &Opts) -> Option<&'static str> {
    if opts.smoke {
        Some("--smoke")
    } else if opts.scale != 1.0 {
        Some("--scale")
    } else if opts.population.is_some() {
        Some("--population-override")
    } else if opts.flash_population.is_some() {
        Some("--flash-population-override")
    } else {
        None
    }
}

fn main() {
    let opts = parse_opts();
    let mut specs = if opts.smoke {
        smoke_load_matrix()
    } else {
        default_load_matrix(opts.scale)
    };
    if let Some(n) = opts.population {
        override_population(&mut specs, n);
    }
    // After --population, so an explicit flash override wins the cap.
    if let Some(n) = opts.flash_population {
        override_flash_population(&mut specs, n);
    }
    let cells: usize = specs.iter().map(|s| s.methods.len()).sum();
    eprintln!(
        "# bench_load — {} scenarios, {} cells, {} threads{}",
        specs.len(),
        cells,
        opts.threads,
        if opts.smoke { " (smoke)" } else { "" }
    );

    let start = Instant::now();
    let prep = prepare(&specs, opts.threads);
    let prepare_secs = start.elapsed().as_secs_f64();
    eprintln!(
        "prepared {} cells ({} profile sessions) in {prepare_secs:.2}s",
        prep.cells().len(),
        prep.profile_sessions()
    );
    for (i, cell) in prep.cells().iter().enumerate() {
        if cell.profile_sessions() > 0 {
            eprintln!(
                "  {:<38} {:>5} profile sessions in {:.2}s",
                prep.cell_label(i),
                cell.profile_sessions(),
                cell.profile_secs()
            );
        }
    }

    let start = Instant::now();
    let report = run(&prep, opts.threads);
    let serve_secs = start.elapsed().as_secs_f64();
    eprint!("{}", report.render_table());

    // Determinism certificate: a single-threaded serve over the same
    // prepared state must be byte-identical. With --threads 1 the first
    // serve already is the serial reference — skip the tautology.
    let digest = report.digest();
    let (serial_secs, bit_identical) = if opts.threads == 1 {
        (serve_secs, true)
    } else {
        let start = Instant::now();
        let serial = run(&prep, 1);
        (
            start.elapsed().as_secs_f64(),
            serial.to_json(false) == report.to_json(false),
        )
    };

    let conformant = report.all_exact();
    eprintln!(
        "population: {}  mismatches: {}  digest: {digest:016x}  bit_identical: {bit_identical}",
        report.total_population(),
        report.total_mismatches(),
    );

    let json = format!(
        "{{\n  \
         \"benchmark\": \"broadcast_load_population\",\n  \
         \"smoke\": {},\n  \
         \"scale\": {:.3},\n  \
         \"scenarios\": {},\n  \
         \"cells\": {},\n  \
         \"population_total\": {},\n  \
         \"profile_sessions\": {},\n  \
         \"mismatches\": {},\n  \
         \"typed_failures\": {},\n  \
         \"all_exact\": {},\n  \
         \"digest\": \"{digest:016x}\",\n  \
         \"bit_identical_across_threads\": {bit_identical},\n  \
         \"host\": {{ \"available_parallelism\": {}, \"worker_threads\": {} }},\n  \
         \"prepare_secs\": {prepare_secs:.6},\n  \
         \"serve_secs\": {serve_secs:.6},\n  \
         \"serial_serve_secs\": {serial_secs:.6},\n  \
         \"cells_detail\": {}\n\
         }}\n",
        opts.smoke,
        opts.scale,
        specs.len(),
        report.cells.len(),
        report.total_population(),
        prep.profile_sessions(),
        report.total_mismatches(),
        report.total_typed_failures(),
        conformant,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        opts.threads,
        report.to_json(true),
    );
    std::fs::write(&opts.out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);

    if !conformant {
        eprintln!(
            "LOAD CONFORMANCE FAILURE: {} mismatched/failed sessions",
            report.total_mismatches()
        );
        std::process::exit(1);
    }
    if !bit_identical {
        eprintln!("DETERMINISM FAILURE: parallel serve diverged from serial");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_opts() -> Opts {
        Opts {
            smoke: false,
            threads: 1,
            scale: 1.0,
            population: None,
            flash_population: None,
            out: "BENCH_load.json".to_string(),
        }
    }

    #[test]
    fn full_default_run_may_write_the_committed_artifact() {
        assert_eq!(partial_reason(&full_opts()), None);
    }

    #[test]
    fn smoke_scaled_and_overridden_runs_are_partial() {
        let mut o = full_opts();
        o.smoke = true;
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_load.smoke.json"
        );
        let mut o = full_opts();
        o.scale = 0.25;
        assert_eq!(partial_reason(&o), Some("--scale"));
        let mut o = full_opts();
        o.population = Some(1000);
        assert_eq!(partial_reason(&o), Some("--population-override"));
        let mut o = full_opts();
        o.flash_population = Some(1000);
        assert_eq!(partial_reason(&o), Some("--flash-population-override"));
    }
}
