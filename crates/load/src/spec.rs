//! Load-harness specifications and canned matrices.
//!
//! A [`LoadSpec`] is a [`ScenarioSpec`] (graph, partitioner, loss model,
//! channel rate, queue policy, seed — everything one simulated world
//! varies) plus the two load-specific knobs: how many clients tune in to
//! the shared air cycle, and which client methods serve them. The
//! scenario's `point_to_point` workload count doubles as the size of the
//! distinct-query pool the population draws from (each query still gets a
//! serial-Dijkstra oracle for conformance).

use spair_broadcast::{ChannelRate, DeviceProfile};
use spair_roadnet::{NetworkPreset, QueuePolicy};
use spair_sim::{
    GraphSpec, LossSpec, MethodKind, PartitionerKind, ScenarioSpec, TuneInSpec, WorkloadMix,
};

/// Node count of the paper-scale load network at `--scale 1.0`: a
/// "germany-class" topology (Germany's edge/node ratio from Table 2)
/// generated at 100k nodes — past the largest network the conformance
/// matrix exercises.
pub const PAPER_SCALE_BASE_NODES: usize = 100_000;

/// One load cell row: a scenario, its client population per method, and
/// the methods serving it.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// The simulated world. `workload.point_to_point` is the distinct
    /// query pool size; `on_edge`/`knn` must be 0.
    pub scenario: ScenarioSpec,
    /// Clients tuning in per (scenario × method) cell.
    pub population: usize,
    /// Client methods serving this population. Only methods driven
    /// through the `AirClient` interface are allowed (no `NrMemBound`,
    /// no `KnnAir`).
    pub methods: Vec<MethodKind>,
}

impl LoadSpec {
    /// Panics if the spec cannot be served (empty population/pool/method
    /// list, non-path workload, or a non-air method).
    pub fn validate(&self) {
        assert!(
            self.population > 0,
            "{}: empty population",
            self.scenario.name
        );
        assert!(
            self.scenario.workload.point_to_point > 0,
            "{}: empty query pool",
            self.scenario.name
        );
        assert_eq!(
            (self.scenario.workload.on_edge, self.scenario.workload.knn),
            (0, 0),
            "{}: load populations pose point-to-point queries only",
            self.scenario.name
        );
        assert!(
            !self.methods.is_empty(),
            "{}: no methods",
            self.scenario.name
        );
        for m in &self.methods {
            assert!(
                m.runs_paths() && *m != MethodKind::NrMemBound,
                "{}: {} is not an air client method",
                self.scenario.name,
                m.name()
            );
        }
    }
}

/// The paper-scale "germany-class" graph at `scale` (1.0 → 100k nodes).
pub fn paper_scale_graph(scale: f64) -> GraphSpec {
    assert!(scale > 0.0, "--scale must be positive");
    let nodes = ((PAPER_SCALE_BASE_NODES as f64 * scale).round() as usize).max(1_000);
    GraphSpec::PresetNodes {
        preset: NetworkPreset::Germany,
        nodes,
    }
}

fn base_scenario(name: &str, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        graph: GraphSpec::Grid {
            width: 16,
            height: 16,
        },
        partitioner: PartitionerKind::KdMedian,
        regions: 16,
        loss: LossSpec::Lossless,
        tune_in: TuneInSpec::Uniform,
        rate: ChannelRate::MOVING_3G,
        heap_budget_bytes: DeviceProfile::J2ME_PHONE.heap_bytes,
        workload: WorkloadMix::p2p(12),
        queue: QueuePolicy::Auto,
        seed,
    }
}

/// The default load matrix behind `BENCH_load.json`:
///
/// 1. the **paper-scale cell** — a germany-class network at
///    `scale × 100k` nodes serving a six-figure population per method
///    over one shared cycle (lossless, so the population replays exactly
///    from per-anchor session profiles);
/// 2. a mid-scale lossless cell including the whole-cycle baselines;
/// 3. two lossy cells (Bernoulli and bursty Gilbert–Elliott) whose
///    clients each run a full per-client session, exercising the §6.2
///    recovery paths at population scale.
pub fn default_load_matrix(scale: f64) -> Vec<LoadSpec> {
    let graph = paper_scale_graph(scale);
    let nodes = match graph {
        GraphSpec::PresetNodes { nodes, .. } => nodes,
        _ => unreachable!(),
    };
    let mut specs = Vec::new();

    // SPQ precomputes a full Dijkstra (and a quadtree) per node — the
    // costliest build of all methods — but the template-driven parallel
    // build (`SpqIndex::build_with_threads`) keeps the all-pairs pass
    // tractable at 100k nodes, so the paper-scale cell serves both
    // whole-cycle-index representatives: SPQ next to HiTi.
    let mut s = base_scenario(&format!("germany{}k-kd-lossless", nodes / 1000), 9001);
    s.graph = graph;
    s.regions = 64;
    s.workload = WorkloadMix::p2p(8);
    specs.push(LoadSpec {
        scenario: s,
        population: 120_000,
        methods: vec![
            MethodKind::Nr,
            MethodKind::Eb,
            MethodKind::Dj,
            MethodKind::SpqAir,
            MethodKind::HiTiAir,
        ],
    });

    let mut s = base_scenario("grid24-kd-lossless", 9002);
    s.graph = GraphSpec::Grid {
        width: 24,
        height: 24,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 50_000,
        methods: vec![
            MethodKind::Nr,
            MethodKind::Eb,
            MethodKind::Dj,
            MethodKind::Ld,
            MethodKind::Af,
            MethodKind::SpqAir,
            MethodKind::HiTiAir,
        ],
    });

    let mut s = base_scenario("grid16-kd-bernoulli2", 9003);
    s.loss = LossSpec::Bernoulli { rate: 0.02 };
    specs.push(LoadSpec {
        scenario: s,
        population: 12_000,
        methods: vec![MethodKind::Nr, MethodKind::Eb, MethodKind::Dj],
    });

    let mut s = base_scenario("grid16-grid-bursty5", 9004);
    s.partitioner = PartitionerKind::UniformGrid;
    s.loss = LossSpec::Bursty {
        rate: 0.05,
        burst: 6.0,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 8_000,
        methods: vec![MethodKind::Nr, MethodKind::Eb],
    });

    specs
}

/// Applies a `--population N` override: lossless cells — replayed in
/// O(1) per client — take exactly `n`; lossy cells, whose clients each
/// run a full session, are capped at `n` but never raised above their
/// spec'd population.
pub fn override_population(specs: &mut [LoadSpec], n: usize) {
    assert!(n > 0, "--population must be >= 1");
    for s in specs {
        if s.scenario.loss.is_lossy() {
            s.population = s.population.min(n);
        } else {
            s.population = n;
        }
    }
}

/// The CI smoke gate: two fast cells (one replayed lossless, one exact
/// lossy) that keep the harness from rotting between nightlies.
pub fn smoke_load_matrix() -> Vec<LoadSpec> {
    let mut specs = Vec::new();

    let mut s = base_scenario("smoke-grid10-kd-lossless", 9101);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.regions = 8;
    s.workload = WorkloadMix::p2p(6);
    specs.push(LoadSpec {
        scenario: s,
        population: 3_000,
        methods: vec![
            MethodKind::Nr,
            MethodKind::Eb,
            MethodKind::Dj,
            MethodKind::HiTiAir,
        ],
    });

    let mut s = base_scenario("smoke-grid8-kd-bernoulli5", 9102);
    s.graph = GraphSpec::Grid {
        width: 8,
        height: 8,
    };
    s.regions = 8;
    s.loss = LossSpec::Bernoulli { rate: 0.05 };
    s.workload = WorkloadMix::p2p(4);
    specs.push(LoadSpec {
        scenario: s,
        population: 1_200,
        methods: vec![MethodKind::Nr, MethodKind::Dj],
    });

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_validate_and_cover_the_acceptance_axes() {
        for spec in default_load_matrix(1.0).iter().chain(&smoke_load_matrix()) {
            spec.validate();
        }
        let default = default_load_matrix(1.0);
        // The paper-scale cell: >= 100k clients per method, covering NR,
        // EB, DJ and a hierarchical method.
        let paper = &default[0];
        assert!(paper.population >= 100_000);
        assert!(matches!(
            paper.scenario.graph,
            GraphSpec::PresetNodes { nodes, .. } if nodes >= PAPER_SCALE_BASE_NODES
        ));
        for m in [
            MethodKind::Nr,
            MethodKind::Eb,
            MethodKind::Dj,
            MethodKind::SpqAir,
            MethodKind::HiTiAir,
        ] {
            assert!(paper.methods.contains(&m));
        }
        // Both lossy channel families are represented.
        assert!(default
            .iter()
            .any(|s| matches!(s.scenario.loss, LossSpec::Bernoulli { .. })));
        assert!(default
            .iter()
            .any(|s| matches!(s.scenario.loss, LossSpec::Bursty { .. })));
        // Unique names and seeds.
        let mut names: Vec<&str> = default.iter().map(|s| s.scenario.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), default.len());
    }

    #[test]
    fn paper_scale_graph_tracks_the_scale_knob() {
        assert!(matches!(
            paper_scale_graph(1.0),
            GraphSpec::PresetNodes { nodes: 100_000, .. }
        ));
        assert!(matches!(
            paper_scale_graph(0.1),
            GraphSpec::PresetNodes { nodes: 10_000, .. }
        ));
        // Tiny scales clamp to a generatable floor.
        assert!(matches!(
            paper_scale_graph(0.001),
            GraphSpec::PresetNodes { nodes: 1_000, .. }
        ));
    }

    #[test]
    fn population_override_scales_lossless_and_caps_lossy() {
        let mut specs = default_load_matrix(1.0);
        override_population(&mut specs, 500_000);
        for s in &specs {
            if s.scenario.loss.is_lossy() {
                assert!(s.population <= 12_000, "{}", s.scenario.name);
            } else {
                assert_eq!(s.population, 500_000, "{}", s.scenario.name);
            }
        }
        let mut specs = default_load_matrix(1.0);
        override_population(&mut specs, 100);
        for s in &specs {
            assert_eq!(s.population, 100, "{}", s.scenario.name);
        }
    }

    #[test]
    #[should_panic(expected = "point-to-point")]
    fn validate_rejects_non_path_workloads() {
        let mut spec = smoke_load_matrix().remove(0);
        spec.scenario.workload.knn = 2;
        spec.validate();
    }
}
