//! Load-harness specifications and canned matrices.
//!
//! A [`LoadSpec`] is a [`ScenarioSpec`] (graph, partitioner, loss model,
//! channel rate, queue policy, seed — everything one simulated world
//! varies) plus the two load-specific knobs: how many clients tune in to
//! the shared air cycle, and which client methods serve them. The
//! scenario's `point_to_point` workload count doubles as the size of the
//! distinct-query pool the population draws from (each query still gets a
//! serial-Dijkstra oracle for conformance).

use spair_broadcast::{ChannelRate, DeviceProfile};
use spair_methods::{MethodId, MethodRegistry, MethodUnavailable};
use spair_roadnet::{NetworkPreset, QueuePolicy};
use spair_sim::{
    FaultSpec, GraphSpec, LossSpec, PartitionerKind, ScenarioSpec, TuneInSpec, WorkloadMix,
};

/// Node count of the paper-scale load network at `--scale 1.0`: a
/// "germany-class" topology (Germany's edge/node ratio from Table 2)
/// generated at 100k nodes — past the largest network the conformance
/// matrix exercises.
pub const PAPER_SCALE_BASE_NODES: usize = 100_000;

/// One load cell row: a scenario, its client population per method, and
/// the methods serving it.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// The simulated world. `workload.point_to_point` is the distinct
    /// query pool size; `on_edge`/`knn` must be 0.
    pub scenario: ScenarioSpec,
    /// Clients tuning in per (scenario × method) cell.
    pub population: usize,
    /// Client methods serving this population. Only methods whose
    /// descriptor declares `air_client` with a cycle of its own can be
    /// served (the §6.1 runner and the kNN client cannot).
    pub methods: Vec<MethodId>,
    /// Flash-crowd mode: the whole population tunes in within one
    /// broadcast cycle against a **shared** seeded fault plan (the
    /// scenario's [`FaultSpec`]), so correlated bursts hit neighbouring
    /// clients at the same wall-clock slots. Every client runs a full
    /// bounded-recovery supervised session, and the cell reports a
    /// fault/recovery summary next to the usual cost percentiles.
    pub flash: bool,
}

/// Why a [`LoadSpec`] cannot be served — surfaced by
/// [`LoadSpec::validate`] instead of the old `assert!`/`unreachable!`
/// dispatch panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadSpecError {
    /// Zero clients.
    EmptyPopulation(String),
    /// Zero point-to-point queries to draw from.
    EmptyQueryPool(String),
    /// The workload poses on-edge or kNN queries.
    NonPathWorkload(String),
    /// No methods to serve.
    NoMethods(String),
    /// The scenario injects faults but the cell is not a flash-crowd
    /// cell — only supervised flash sessions survive a faulty channel,
    /// so a faulty replay/exact cell would silently under-report.
    FaultsRequireFlash(String),
    /// A method the harness cannot serve (per its descriptor).
    Method {
        /// Scenario name.
        scenario: String,
        /// The typed capability error.
        err: MethodUnavailable,
    },
}

impl std::fmt::Display for LoadSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadSpecError::EmptyPopulation(s) => write!(f, "{s}: empty population"),
            LoadSpecError::EmptyQueryPool(s) => write!(f, "{s}: empty query pool"),
            LoadSpecError::NonPathWorkload(s) => {
                write!(f, "{s}: load populations pose point-to-point queries only")
            }
            LoadSpecError::NoMethods(s) => write!(f, "{s}: no methods"),
            LoadSpecError::FaultsRequireFlash(s) => {
                write!(f, "{s}: faulty scenarios must be flash-crowd cells")
            }
            LoadSpecError::Method { scenario, err } => write!(f, "{scenario}: {err}"),
        }
    }
}

impl std::error::Error for LoadSpecError {}

impl LoadSpec {
    /// Checks that the spec can be served: non-empty population, query
    /// pool and method list, a point-to-point-only workload, and —
    /// descriptor-driven — only air-client methods with a channel and a
    /// declared session shape.
    pub fn validate(&self) -> Result<(), LoadSpecError> {
        let name = || self.scenario.name.clone();
        if self.population == 0 {
            return Err(LoadSpecError::EmptyPopulation(name()));
        }
        if self.scenario.workload.point_to_point == 0 {
            return Err(LoadSpecError::EmptyQueryPool(name()));
        }
        if (self.scenario.workload.on_edge, self.scenario.workload.knn) != (0, 0) {
            return Err(LoadSpecError::NonPathWorkload(name()));
        }
        if self.methods.is_empty() {
            return Err(LoadSpecError::NoMethods(name()));
        }
        if self.scenario.fault.is_faulty() && !self.flash {
            return Err(LoadSpecError::FaultsRequireFlash(name()));
        }
        for m in &self.methods {
            let d = m.descriptor();
            let err = if !d.air_client || d.shape.is_none() {
                Some(MethodUnavailable::NotAirClient(d.name))
            } else if !d.own_channel {
                Some(MethodUnavailable::NoOwnChannel {
                    method: d.name,
                    reference: d.reference_cycle.unwrap_or(d.name),
                })
            } else {
                None
            };
            if let Some(err) = err {
                return Err(LoadSpecError::Method {
                    scenario: name(),
                    err,
                });
            }
        }
        Ok(())
    }
}

/// The paper-scale "germany-class" graph at `scale` (1.0 → 100k nodes).
pub fn paper_scale_graph(scale: f64) -> GraphSpec {
    assert!(scale > 0.0, "--scale must be positive");
    let nodes = ((PAPER_SCALE_BASE_NODES as f64 * scale).round() as usize).max(1_000);
    GraphSpec::PresetNodes {
        preset: NetworkPreset::Germany,
        nodes,
    }
}

fn base_scenario(name: &str, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        graph: GraphSpec::Grid {
            width: 16,
            height: 16,
        },
        partitioner: PartitionerKind::KdMedian,
        regions: 16,
        loss: LossSpec::Lossless,
        fault: FaultSpec::None,
        tune_in: TuneInSpec::Uniform,
        rate: ChannelRate::MOVING_3G,
        heap_budget_bytes: DeviceProfile::J2ME_PHONE.heap_bytes,
        workload: WorkloadMix::p2p(12),
        queue: QueuePolicy::Auto,
        seed,
    }
}

/// The default load matrix behind `BENCH_load.json`:
///
/// 1. the **paper-scale cell** — a germany-class network at
///    `scale × 100k` nodes serving a six-figure population per method
///    over one shared cycle (lossless, so the population replays exactly
///    from per-anchor session profiles);
/// 2. a mid-scale lossless cell including the whole-cycle baselines;
/// 3. two lossy cells (Bernoulli and bursty Gilbert–Elliott) whose
///    clients each run a full per-client session, exercising the §6.2
///    recovery paths at population scale.
pub fn default_load_matrix(scale: f64) -> Vec<LoadSpec> {
    let graph = paper_scale_graph(scale);
    let nodes = match graph {
        GraphSpec::PresetNodes { nodes, .. } => nodes,
        _ => unreachable!(),
    };
    let mut specs = Vec::new();

    // SPQ precomputes a full Dijkstra (and a quadtree) per node — the
    // costliest build of all methods — but the template-driven parallel
    // build (`SpqIndex::build_with_threads`) keeps the all-pairs pass
    // tractable at 100k nodes, so the paper-scale cell serves both
    // whole-cycle-index representatives: SPQ next to HiTi.
    let mut s = base_scenario(&format!("germany{}k-kd-lossless", nodes / 1000), 9001);
    s.graph = graph;
    s.regions = 64;
    s.workload = WorkloadMix::p2p(8);
    specs.push(LoadSpec {
        scenario: s,
        population: 120_000,
        methods: vec![
            MethodId::NR,
            MethodId::EB,
            MethodId::DJ,
            MethodId::SPQ_AIR,
            MethodId::HITI_AIR,
        ],
        flash: false,
    });

    // The mid-scale lossless cell serves every air method the registry
    // knows — including registry-registered newcomers like `astar_air`
    // and `bidi_air`, which the column set picks up by name with no
    // further edits here beyond these two lookups.
    let registry = MethodRegistry::standard();
    let mut s = base_scenario("grid24-kd-lossless", 9002);
    s.graph = GraphSpec::Grid {
        width: 24,
        height: 24,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 50_000,
        methods: vec![
            MethodId::NR,
            MethodId::EB,
            MethodId::DJ,
            MethodId::LD,
            MethodId::AF,
            MethodId::SPQ_AIR,
            MethodId::HITI_AIR,
            registry.get("astar_air").expect("registered"),
            registry.get("bidi_air").expect("registered"),
        ],
        flash: false,
    });

    let mut s = base_scenario("grid16-kd-bernoulli2", 9003);
    s.loss = LossSpec::Bernoulli { rate: 0.02 };
    specs.push(LoadSpec {
        scenario: s,
        population: 12_000,
        methods: vec![MethodId::NR, MethodId::EB, MethodId::DJ],
        flash: false,
    });

    let mut s = base_scenario("grid16-grid-bursty5", 9004);
    s.partitioner = PartitionerKind::UniformGrid;
    s.loss = LossSpec::Bursty {
        rate: 0.05,
        burst: 6.0,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 8_000,
        methods: vec![MethodId::NR, MethodId::EB],
        flash: false,
    });

    // Flash-crowd cells: the whole population tunes in within one cycle
    // of a *faulty* server — a shared seeded fault plan, so correlated
    // bursts hit neighbouring clients at the same wall-clock slots.
    // Every client runs a full supervised session (no replay), which
    // bounds the tractable population; the cells report typed-failure
    // rates and recovery-latency percentiles next to the usual costs.
    let mut s = base_scenario("flash-grid16-corrloss10", 9005);
    s.fault = FaultSpec::CorrelatedLoss {
        rate: 0.10,
        window: 16,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 10_000,
        methods: vec![MethodId::NR, MethodId::EB, MethodId::DJ],
        flash: true,
    });

    let mut s = base_scenario("flash-grid16-chaos1", 9006);
    s.fault = FaultSpec::Chaos {
        rate: 0.01,
        mean_cycles: 16.0,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 10_000,
        methods: vec![MethodId::NR, MethodId::EB],
        flash: true,
    });

    specs
}

/// Applies a `--population N` override: lossless cells — replayed in
/// O(1) per client — take exactly `n`; lossy and flash-crowd cells,
/// whose clients each run a full session, are capped at `n` but never
/// raised above their spec'd population (use
/// [`override_flash_population`] to raise flash cells deliberately).
pub fn override_population(specs: &mut [LoadSpec], n: usize) {
    assert!(n > 0, "--population must be >= 1");
    for s in specs {
        if s.scenario.loss.is_lossy() || s.flash {
            s.population = s.population.min(n);
        } else {
            s.population = n;
        }
    }
}

/// Applies a `--flash-population N` override: sets the population of
/// every flash-crowd cell to exactly `n` (other cells untouched). The
/// nightly chaos lane uses this to push one flash cell to 250k clients.
pub fn override_flash_population(specs: &mut [LoadSpec], n: usize) {
    assert!(n > 0, "--flash-population must be >= 1");
    for s in specs {
        if s.flash {
            s.population = n;
        }
    }
}

/// The CI smoke gate: two fast cells (one replayed lossless, one exact
/// lossy) that keep the harness from rotting between nightlies.
pub fn smoke_load_matrix() -> Vec<LoadSpec> {
    let mut specs = Vec::new();

    let mut s = base_scenario("smoke-grid10-kd-lossless", 9101);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.regions = 8;
    s.workload = WorkloadMix::p2p(6);
    specs.push(LoadSpec {
        scenario: s,
        population: 3_000,
        methods: vec![MethodId::NR, MethodId::EB, MethodId::DJ, MethodId::HITI_AIR],
        flash: false,
    });

    let mut s = base_scenario("smoke-grid8-kd-bernoulli5", 9102);
    s.graph = GraphSpec::Grid {
        width: 8,
        height: 8,
    };
    s.regions = 8;
    s.loss = LossSpec::Bernoulli { rate: 0.05 };
    s.workload = WorkloadMix::p2p(4);
    specs.push(LoadSpec {
        scenario: s,
        population: 1_200,
        methods: vec![MethodId::NR, MethodId::DJ],
        flash: false,
    });

    // A tiny flash-crowd cell keeps the supervised fault path alive
    // between nightlies.
    let mut s = base_scenario("smoke-flash-grid8-chaos1", 9103);
    s.graph = GraphSpec::Grid {
        width: 8,
        height: 8,
    };
    s.regions = 8;
    s.workload = WorkloadMix::p2p(4);
    s.fault = FaultSpec::Chaos {
        rate: 0.01,
        mean_cycles: 14.0,
    };
    specs.push(LoadSpec {
        scenario: s,
        population: 800,
        methods: vec![MethodId::NR, MethodId::DJ],
        flash: true,
    });

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_validate_and_cover_the_acceptance_axes() {
        for spec in default_load_matrix(1.0).iter().chain(&smoke_load_matrix()) {
            spec.validate().unwrap();
        }
        let default = default_load_matrix(1.0);
        // The paper-scale cell: >= 100k clients per method, covering NR,
        // EB, DJ and a hierarchical method.
        let paper = &default[0];
        assert!(paper.population >= 100_000);
        assert!(matches!(
            paper.scenario.graph,
            GraphSpec::PresetNodes { nodes, .. } if nodes >= PAPER_SCALE_BASE_NODES
        ));
        for m in [
            MethodId::NR,
            MethodId::EB,
            MethodId::DJ,
            MethodId::SPQ_AIR,
            MethodId::HITI_AIR,
        ] {
            assert!(paper.methods.contains(&m));
        }
        // The registry-proving methods serve the mid-scale cell.
        let mid = &default[1];
        for name in ["astar_air", "bidi_air"] {
            let m = MethodRegistry::standard().get(name).unwrap();
            assert!(
                mid.methods.contains(&m),
                "{name} missing from {}",
                mid.scenario.name
            );
        }
        // Both lossy channel families are represented.
        assert!(default
            .iter()
            .any(|s| matches!(s.scenario.loss, LossSpec::Bernoulli { .. })));
        assert!(default
            .iter()
            .any(|s| matches!(s.scenario.loss, LossSpec::Bursty { .. })));
        // Flash-crowd cells with real fault axes ride both matrices.
        assert!(default
            .iter()
            .any(|s| s.flash && s.scenario.fault.is_faulty()));
        assert!(smoke_load_matrix()
            .iter()
            .any(|s| s.flash && s.scenario.fault.is_faulty()));
        // Unique names and seeds.
        let mut names: Vec<&str> = default.iter().map(|s| s.scenario.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), default.len());
    }

    #[test]
    fn paper_scale_graph_tracks_the_scale_knob() {
        assert!(matches!(
            paper_scale_graph(1.0),
            GraphSpec::PresetNodes { nodes: 100_000, .. }
        ));
        assert!(matches!(
            paper_scale_graph(0.1),
            GraphSpec::PresetNodes { nodes: 10_000, .. }
        ));
        // Tiny scales clamp to a generatable floor.
        assert!(matches!(
            paper_scale_graph(0.001),
            GraphSpec::PresetNodes { nodes: 1_000, .. }
        ));
    }

    #[test]
    fn population_override_scales_lossless_and_caps_lossy() {
        let mut specs = default_load_matrix(1.0);
        override_population(&mut specs, 500_000);
        for s in &specs {
            if s.scenario.loss.is_lossy() || s.flash {
                assert!(s.population <= 12_000, "{}", s.scenario.name);
            } else {
                assert_eq!(s.population, 500_000, "{}", s.scenario.name);
            }
        }
        let mut specs = default_load_matrix(1.0);
        override_population(&mut specs, 100);
        for s in &specs {
            assert_eq!(s.population, 100, "{}", s.scenario.name);
        }
    }

    #[test]
    fn flash_population_override_touches_flash_cells_only() {
        let mut specs = default_load_matrix(1.0);
        let before: Vec<usize> = specs.iter().map(|s| s.population).collect();
        override_flash_population(&mut specs, 250_000);
        for (s, &b) in specs.iter().zip(&before) {
            if s.flash {
                assert_eq!(s.population, 250_000, "{}", s.scenario.name);
            } else {
                assert_eq!(s.population, b, "{}", s.scenario.name);
            }
        }
    }

    #[test]
    fn faulty_scenarios_must_be_flash_cells() {
        let mut spec = smoke_load_matrix()
            .into_iter()
            .find(|s| s.flash)
            .expect("smoke flash cell");
        spec.validate().unwrap();
        spec.flash = false;
        assert!(matches!(
            spec.validate().unwrap_err(),
            LoadSpecError::FaultsRequireFlash(_)
        ));
    }

    #[test]
    fn validate_rejects_non_path_workloads_and_non_air_methods() {
        let mut spec = smoke_load_matrix().remove(0);
        spec.scenario.workload.knn = 2;
        let err = spec.validate().unwrap_err();
        assert!(matches!(err, LoadSpecError::NonPathWorkload(_)));
        assert!(err.to_string().contains("point-to-point"));

        // The old `unreachable!` dispatch arms are now typed errors.
        let mut spec = smoke_load_matrix().remove(0);
        spec.methods.push(MethodId::NR_MEM_BOUND);
        let err = spec.validate().unwrap_err();
        assert!(matches!(
            err,
            LoadSpecError::Method {
                err: MethodUnavailable::NotAirClient("nr_mem_bound"),
                ..
            }
        ));
        let mut spec = smoke_load_matrix().remove(0);
        spec.methods = vec![MethodId::KNN_AIR];
        assert!(spec.validate().is_err());
    }
}
