//! The population-scale serving harness.
//!
//! The defining property of wireless broadcast is that server cost is
//! independent of the client count: one air cycle serves every tuned-in
//! device. The harness models that literally — [`prepare`] expands each
//! [`LoadSpec`] into one shared [`ScenarioContext`] (graph, partition,
//! broadcast programs, oracle-backed query pool) per scenario, and
//! [`run`] tunes **N seeded clients** (10^4–10^6) in at random cycle
//! offsets against the shared cycle of every (scenario × method) cell.
//!
//! Per-client cost must be O(1) for a million clients to be tractable,
//! and for a **lossless** channel it can be, exactly: every client method
//! either
//!
//! * downloads the whole cycle from wherever it tuned in (DJ, LD, AF,
//!   SPQ, and the registry-registered A*/bidirectional clients) — its
//!   §3.1 stats are independent of the tune-in offset — or
//! * listens to exactly one packet, follows that packet's next-index
//!   pointer, and sleeps to the pointed-at index copy (NR, EB, HiTi via
//!   `find_next_index`) — from that *anchor* on, the session is a pure
//!   function of (query, anchor).
//!
//! So the harness runs one real client session per (query, anchor class)
//! — the **session profile** — and replays each of the N clients as
//! `latency = profile.latency + pointer(offset)`, `tuning =
//! profile.tuning`. The replay is exact, not approximate; the
//! `replay_matches_real_sessions` tests certify it against full client
//! runs packet-for-packet. Lossy cells fall back to one full session per
//! client (the loss stream makes sessions client-unique), which bounds
//! their practical population; the canned matrices keep lossy cells on
//! small worlds.
//!
//! Results aggregate into streaming fixed-bucket histograms
//! ([`crate::hist`]) folded through
//! [`spair_roadnet::parallel::map_reduce_chunked`], so a million clients
//! cost O(buckets) memory and the report — like the conformance matrix —
//! is bit-identical for every thread count.

use crate::hist::StreamingHistogram;
use crate::report::{LoadCellReport, LoadFaultSummary, LoadReport, PercentileSummary};
use crate::spec::LoadSpec;
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::{
    BroadcastChannel, BroadcastCycle, ChannelRate, EnergyModel, FaultPlan, LossModel, QueryStats,
};
use spair_core::query::Query;
use spair_core::{supervise, AttemptReport, RecoveryBudget, SessionOutcome};
use spair_methods::{MethodId, SessionShape};
use spair_roadnet::{parallel, Distance};
use spair_sim::{ScenarioContext, WorkItem};
use std::collections::BTreeMap;
use std::time::Instant;

/// The recovery budget every flash-crowd client session runs under —
/// the same chaos budget the fault matrix certifies.
const FLASH_BUDGET: RecoveryBudget = RecoveryBudget::standard();

/// SplitMix64 — the same seed-derivation PRNG the scenario engine uses.
/// Every client's (query, offset, loss seed) is a pure function of
/// (scenario seed, method ordinal, client index), so populations are
/// reproducible for any thread schedule.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cell_seed(scenario_seed: u64, method: MethodId) -> u64 {
    splitmix64(scenario_seed ^ splitmix64(u64::from(method.ordinal()).wrapping_add(0x10AD)))
}

/// Salts a client's base seed per supervised re-tune attempt. Attempt 0
/// uses the base unchanged, so a fault-free supervised session draws
/// exactly the streams an unsupervised client would (same convention as
/// the fault matrix).
fn attempt_seed(base: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        base
    } else {
        splitmix64(base ^ u64::from(attempt))
    }
}

/// The consumption shape of an air client method — read straight off its
/// registry descriptor (the old per-method `match` with its
/// `unreachable!` arm is gone; `LoadSpec::validate` rejects shapeless
/// methods with a typed error before any cell is prepared).
pub fn session_shape(method: MethodId) -> SessionShape {
    method.descriptor().shape.unwrap_or_else(|| {
        panic!(
            "{}: no session shape; rejected by LoadSpec::validate",
            method
        )
    })
}

/// The air cycle of a validated cell's method.
fn air_cycle(ctx: &ScenarioContext, method: MethodId) -> &BroadcastCycle {
    ctx.cycle(method)
        .unwrap_or_else(|e| panic!("LoadSpec::validate admits only air methods: {e}"))
}

/// One real client session's measurements, recorded at a class
/// representative offset and replayed across the population.
#[derive(Debug, Clone, Copy)]
struct SessionProfile {
    tuning: u64,
    latency: u64,
    peak_memory_bytes: usize,
    /// Measured CPU milliseconds of this real session (timing-only —
    /// never digested; replayed cells report the per-profile mean).
    cpu_ms: f64,
    /// Distance matched the serial-Dijkstra oracle.
    exact: bool,
    /// The session returned an error (never expected; counted, not
    /// replayed into the histograms).
    failed: bool,
}

enum CellMode {
    /// Lossless: replay from per-(query × anchor-class) profiles.
    Replay {
        shape: SessionShape,
        /// Index-copy start offsets, ascending (empty for whole-cycle
        /// shapes, which have a single class).
        anchors: Vec<usize>,
        /// Query-major: `profiles[qi * classes + ci]`.
        profiles: Vec<SessionProfile>,
    },
    /// Lossy: every client runs a full session over its own loss stream.
    Exact,
    /// Flash crowd: every client runs a full bounded-recovery supervised
    /// session against this **shared** fault plan — one faulty server,
    /// the whole population tuned in within one cycle, correlated bursts
    /// hitting neighbouring clients at the same wall-clock slots.
    Supervised {
        /// The population-wide fault plan (seeded off the cell, not the
        /// client, so fault draws correlate across clients).
        plan: FaultPlan,
    },
}

/// Resolves a tune-in offset to `(class index, initial pointer
/// distance)` under a replay shape. `None` when the offset's packet
/// carries no index pointer or points outside the anchor set — possible
/// only for a cycle without usable index copies, where every anchored
/// session fails.
fn resolve_class(
    shape: SessionShape,
    anchors: &[usize],
    cycle: &BroadcastCycle,
    offset: usize,
) -> Option<(usize, u64)> {
    match shape {
        SessionShape::WholeCycle => Some((0, 0)),
        SessionShape::Anchored => {
            let ni = cycle.packet(offset).next_index();
            if ni == u32::MAX {
                return None;
            }
            let anchor = (offset + 1 + ni as usize) % cycle.len();
            let ci = anchors.binary_search(&anchor).ok()?;
            Some((ci, u64::from(ni)))
        }
    }
}

/// Profile classes of a replay shape (`profiles.len() = query_pool ×
/// classes`).
fn class_count(shape: SessionShape, anchors: &[usize]) -> usize {
    match shape {
        SessionShape::WholeCycle => 1,
        SessionShape::Anchored => anchors.len(),
    }
}

/// One (scenario × method) cell, ready to serve its population.
pub struct PreparedCell {
    scenario_idx: usize,
    method: MethodId,
    population: usize,
    mode: CellMode,
    profile_secs: f64,
}

impl PreparedCell {
    /// The method serving this cell.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// Real sessions run while profiling this cell (0 for lossy cells,
    /// whose sessions all happen at serve time).
    pub fn profile_sessions(&self) -> usize {
        match &self.mode {
            CellMode::Replay { profiles, .. } => profiles.len(),
            CellMode::Exact | CellMode::Supervised { .. } => 0,
        }
    }

    /// Wall-clock seconds spent profiling this cell.
    pub fn profile_secs(&self) -> f64 {
        self.profile_secs
    }
}

/// Everything [`run`] needs, built once: scenario contexts (shared air
/// cycles, query pools, oracles) and per-cell session profiles.
pub struct PreparedLoad {
    specs: Vec<LoadSpec>,
    contexts: Vec<ScenarioContext>,
    cells: Vec<PreparedCell>,
}

/// The query pool of a context: every P2p work item with its oracle.
fn query_pool(ctx: &ScenarioContext) -> Vec<(Query, Distance)> {
    ctx.workload
        .iter()
        .filter_map(|item| match item {
            WorkItem::P2p { query, oracle } => Some((*query, *oracle)),
            _ => None,
        })
        .collect()
}

/// Ascending start offsets of the cycle's index copies — the anchor set
/// of [`SessionShape::Anchored`] clients.
fn index_starts(ctx: &ScenarioContext, method: MethodId) -> Vec<usize> {
    air_cycle(ctx, method)
        .segments()
        .iter()
        .filter(|s| {
            s.len > 0
                && matches!(
                    s.kind,
                    SegmentKind::GlobalIndex | SegmentKind::LocalIndex(_)
                )
        })
        .map(|s| s.start)
        .collect()
}

/// Runs one real lossless session and records its profile.
fn probe_session(
    ctx: &ScenarioContext,
    method: MethodId,
    query: &Query,
    oracle: Distance,
    offset: usize,
) -> SessionProfile {
    let cycle = air_cycle(ctx, method);
    let mut ch = BroadcastChannel::tune_in(cycle, offset, LossModel::Lossless);
    let mut client = ctx
        .client(method)
        .unwrap_or_else(|e| panic!("LoadSpec::validate admits only air methods: {e}"));
    let start = Instant::now();
    let result = client.query(&mut ch, query);
    let cpu_ms = start.elapsed().as_secs_f64() * 1000.0;
    match result {
        Ok(out) => SessionProfile {
            tuning: out.stats.tuning_packets,
            latency: out.stats.latency_packets,
            peak_memory_bytes: out.stats.peak_memory_bytes,
            cpu_ms,
            exact: out.distance == oracle,
            failed: false,
        },
        Err(_) => SessionProfile {
            tuning: 0,
            latency: 0,
            peak_memory_bytes: 0,
            cpu_ms,
            exact: false,
            failed: true,
        },
    }
}

/// Builds the profile table for a lossless cell: one real session per
/// (query × anchor class), fanned out deterministically across threads.
fn build_profiles(ctx: &ScenarioContext, method: MethodId, threads: usize) -> CellMode {
    let shape = session_shape(method);
    let pool = query_pool(ctx);
    let len = air_cycle(ctx, method).len();
    let anchors = match shape {
        SessionShape::WholeCycle => Vec::new(),
        SessionShape::Anchored => index_starts(ctx, method),
    };
    // Representative tune-in offset per class: any offset for a
    // whole-cycle client (stats are offset-independent); for an anchored
    // client the packet *just before* the anchor, whose next-index
    // pointer is 0 — so the probe's initial sleep is zero and replaying
    // an arbitrary offset only adds that offset's pointer distance.
    let class_offsets: Vec<usize> = match shape {
        SessionShape::WholeCycle => vec![0],
        SessionShape::Anchored => anchors.iter().map(|&a| (a + len - 1) % len).collect(),
    };
    let sessions: Vec<(usize, usize)> = (0..pool.len())
        .flat_map(|qi| (0..class_offsets.len()).map(move |ci| (qi, ci)))
        .collect();
    let profiles = parallel::map_reduce_chunked(
        &sessions,
        threads,
        2,
        || (),
        Vec::new,
        |_, partial: &mut Vec<SessionProfile>, chunk, _| {
            for &(qi, ci) in chunk {
                let (query, oracle) = pool[qi];
                partial.push(probe_session(
                    ctx,
                    method,
                    &query,
                    oracle,
                    class_offsets[ci],
                ));
            }
        },
        |a, b| a.extend(b),
    )
    .unwrap_or_default();
    CellMode::Replay {
        shape,
        anchors,
        profiles,
    }
}

/// Expands every spec into its shared world and profiles its lossless
/// cells. Expensive (graph generation, precomputation, broadcast program
/// assembly, profile sessions) but fully seed-deterministic; [`run`] is
/// the cheap, replayable part.
pub fn prepare(specs: &[LoadSpec], threads: usize) -> PreparedLoad {
    for spec in specs {
        if let Err(e) = spec.validate() {
            panic!("invalid load spec: {e}");
        }
    }
    let contexts: Vec<ScenarioContext> = specs
        .iter()
        .map(|s| ScenarioContext::build(&s.scenario, &s.methods))
        .collect();
    let mut cells = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for &method in &spec.methods {
            let start = Instant::now();
            let mode = if spec.flash {
                // One plan for the whole population: seeded off the
                // cell, so every client shares the fault stream.
                let cycle_len = air_cycle(&contexts[si], method).len();
                let seed = cell_seed(spec.scenario.seed, method);
                CellMode::Supervised {
                    plan: spec
                        .scenario
                        .fault
                        .plan(splitmix64(seed ^ 0xFA17), cycle_len),
                }
            } else if spec.scenario.loss.is_lossy() {
                CellMode::Exact
            } else {
                build_profiles(&contexts[si], method, threads)
            };
            cells.push(PreparedCell {
                scenario_idx: si,
                method,
                population: spec.population,
                mode,
                profile_secs: start.elapsed().as_secs_f64(),
            });
        }
    }
    PreparedLoad {
        specs: specs.to_vec(),
        contexts,
        cells,
    }
}

impl PreparedLoad {
    /// The prepared (scenario × method) cells, in scenario-major order.
    pub fn cells(&self) -> &[PreparedCell] {
        &self.cells
    }

    /// Total real sessions run while profiling.
    pub fn profile_sessions(&self) -> usize {
        self.cells.iter().map(|c| c.profile_sessions()).sum()
    }

    /// "scenario/method" label of a prepared cell, for log lines.
    pub fn cell_label(&self, cell: usize) -> String {
        let c = &self.cells[cell];
        format!(
            "{}/{}",
            self.specs[c.scenario_idx].scenario.name,
            c.method.name()
        )
    }

    /// Index of the (scenario name × method) cell, if prepared.
    pub fn cell_index(&self, scenario: &str, method: MethodId) -> Option<usize> {
        self.cells.iter().position(|c| {
            self.specs[c.scenario_idx].scenario.name == scenario && c.method == method
        })
    }

    /// Replay prediction `(tuning, latency, sleep)` for a client of
    /// `cell` posing query-pool entry `query` from cycle offset
    /// `offset`. `None` for lossy (exact-mode) cells and failed
    /// profiles. Test hook: the prediction must match a real client
    /// session packet-for-packet.
    pub fn predicted_session(
        &self,
        cell: usize,
        query: usize,
        offset: usize,
    ) -> Option<(u64, u64, u64)> {
        let cell = &self.cells[cell];
        let ctx = &self.contexts[cell.scenario_idx];
        let cycle = air_cycle(ctx, cell.method);
        let CellMode::Replay {
            shape,
            anchors,
            profiles,
        } = &cell.mode
        else {
            return None;
        };
        let (ci, delta) = resolve_class(*shape, anchors, cycle, offset)?;
        let p = &profiles[query * class_count(*shape, anchors) + ci];
        if p.failed {
            return None;
        }
        let latency = p.latency + delta;
        Some((p.tuning, latency, latency - p.tuning))
    }
}

/// Fault/recovery aggregate of a supervised flash-crowd cell — the
/// streaming counterpart of the fault matrix's per-cell accumulator.
struct FaultAgg {
    typed_failures: u64,
    budget_violations: u64,
    attempts: u64,
    max_attempts: u32,
    retried: u64,
    recovery: StreamingHistogram,
    classes: BTreeMap<&'static str, u64>,
}

impl FaultAgg {
    fn new(cycle_len: usize) -> Self {
        Self {
            typed_failures: 0,
            budget_violations: 0,
            attempts: 0,
            max_attempts: 0,
            retried: 0,
            recovery: StreamingHistogram::with_bound((cycle_len as u64).max(1) * 64, HIST_BUCKETS),
            classes: BTreeMap::new(),
        }
    }

    /// Folds one supervised session's cost in. The budget ceiling allows
    /// the supervisor's one-attempt overshoot (each attempt is bounded
    /// by the client's own retry budget), same as the fault matrix.
    fn session(&mut self, attempts: u32, recovery: u64, cycle_len: usize) {
        self.attempts += u64::from(attempts);
        self.max_attempts = self.max_attempts.max(attempts);
        self.retried += u64::from(attempts > 1);
        self.recovery.record(recovery);
        if attempts > FLASH_BUDGET.max_attempts
            || recovery > FLASH_BUDGET.packet_budget(cycle_len).saturating_mul(2)
        {
            self.budget_violations += 1;
        }
    }

    fn failed(&mut self, class: &'static str) {
        self.typed_failures += 1;
        *self.classes.entry(class).or_insert(0) += 1;
    }

    fn absorb(&mut self, other: FaultAgg) {
        self.typed_failures += other.typed_failures;
        self.budget_violations += other.budget_violations;
        self.attempts += other.attempts;
        self.max_attempts = self.max_attempts.max(other.max_attempts);
        self.retried += other.retried;
        self.recovery.merge(&other.recovery);
        for (class, n) in other.classes {
            *self.classes.entry(class).or_insert(0) += n;
        }
    }
}

/// Streaming per-cell aggregate — the map-reduce partial. O(buckets)
/// memory regardless of population.
struct CellMetrics {
    latency: StreamingHistogram,
    tuning: StreamingHistogram,
    energy_uj: StreamingHistogram,
    mismatches: u64,
    failures: u64,
    peak_memory_bytes: usize,
    fault: Option<FaultAgg>,
    /// Measured CPU milliseconds summed over this worker's real client
    /// sessions (full-session cells only; timing-only, never digested).
    session_cpu_ms: f64,
    /// Real sessions behind `session_cpu_ms`.
    cpu_sessions: u64,
}

const HIST_BUCKETS: usize = 1024;

impl CellMetrics {
    fn new(cycle_len: usize, full_sessions: bool, supervised: bool, rate: ChannelRate) -> Self {
        // Lossless sessions finish within a couple of cycles; lossy and
        // supervised ones stretch by retry cycles and re-tunes. Values
        // beyond the bound stay exact in count/sum/max and fall into the
        // overflow bucket.
        let factor = if full_sessions { 24 } else { 4 };
        let latency_bound = (cycle_len as u64).max(1) * factor;
        let tuning_bound = (cycle_len as u64).max(1) * if full_sessions { 24 } else { 2 };
        let energy_bound = radio_uj(rate, tuning_bound, latency_bound);
        Self {
            latency: StreamingHistogram::with_bound(latency_bound, HIST_BUCKETS),
            tuning: StreamingHistogram::with_bound(tuning_bound, HIST_BUCKETS),
            energy_uj: StreamingHistogram::with_bound(energy_bound, HIST_BUCKETS),
            mismatches: 0,
            failures: 0,
            peak_memory_bytes: 0,
            fault: supervised.then(|| FaultAgg::new(cycle_len)),
            session_cpu_ms: 0.0,
            cpu_sessions: 0,
        }
    }

    fn record(&mut self, rate: ChannelRate, tuning: u64, latency: u64, peak: usize, exact: bool) {
        if !exact {
            self.mismatches += 1;
        }
        self.latency.record(latency);
        self.tuning.record(tuning);
        self.energy_uj
            .record(radio_uj(rate, tuning, latency - tuning));
        self.peak_memory_bytes = self.peak_memory_bytes.max(peak);
    }

    fn absorb(&mut self, other: CellMetrics) {
        self.latency.merge(&other.latency);
        self.tuning.merge(&other.tuning);
        self.energy_uj.merge(&other.energy_uj);
        self.mismatches += other.mismatches;
        self.failures += other.failures;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        if let (Some(a), Some(b)) = (self.fault.as_mut(), other.fault) {
            a.absorb(b);
        }
        self.session_cpu_ms += other.session_cpu_ms;
        self.cpu_sessions += other.cpu_sessions;
    }
}

/// Radio (receive + sleep) energy in micro-joules for the given packet
/// counts — WaveLAN figures, a pure function of the counts.
fn radio_uj(rate: ChannelRate, tuning: u64, sleep: u64) -> u64 {
    let stats = QueryStats {
        tuning_packets: tuning,
        sleep_packets: sleep,
        ..QueryStats::default()
    };
    let (rx, sl, _) = EnergyModel::WAVELAN_ARM.breakdown(&stats, rate);
    ((rx + sl) * 1e6).round() as u64
}

fn summarize(h: &StreamingHistogram) -> PercentileSummary {
    PercentileSummary {
        p50: h.percentile(0.50),
        p95: h.percentile(0.95),
        p99: h.percentile(0.99),
        max: h.max(),
        mean: h.mean(),
        overflow: h.overflow(),
        bucket_width: h.width(),
    }
}

/// Serves one cell's population and aggregates its streaming metrics.
fn run_cell(prep: &PreparedLoad, cell: &PreparedCell, threads: usize) -> LoadCellReport {
    let start = Instant::now();
    let spec = &prep.specs[cell.scenario_idx];
    let ctx = &prep.contexts[cell.scenario_idx];
    let cycle = air_cycle(ctx, cell.method);
    let cycle_len = cycle.len();
    let pool = query_pool(ctx);
    let supervised = matches!(cell.mode, CellMode::Supervised { .. });
    // Cells whose clients each run a real session (lossy or supervised
    // flash), as opposed to O(1) profile replay.
    let full_sessions = spec.scenario.loss.is_lossy() || supervised;
    let rate = spec.scenario.rate;
    let seed = cell_seed(spec.scenario.seed, cell.method);

    let clients: Vec<u32> = (0..cell.population as u32).collect();
    let metrics = parallel::map_reduce_chunked(
        &clients,
        threads,
        4,
        // Full-session workers reuse one client device's buffers across
        // their sessions (each session still opens a fresh channel).
        || match &cell.mode {
            CellMode::Exact | CellMode::Supervised { .. } => Some(
                ctx.client(cell.method)
                    .unwrap_or_else(|e| panic!("LoadSpec::validate admits only air methods: {e}")),
            ),
            CellMode::Replay { .. } => None,
        },
        || CellMetrics::new(cycle_len, full_sessions, supervised, rate),
        |client, partial: &mut CellMetrics, chunk, _| {
            for &i in chunk {
                let h = splitmix64(seed ^ splitmix64(u64::from(i) + 1));
                let qi = (h % pool.len() as u64) as usize;
                let offset = (splitmix64(h) % cycle_len as u64) as usize;
                match &cell.mode {
                    CellMode::Replay {
                        shape,
                        anchors,
                        profiles,
                    } => {
                        let Some((ci, delta)) = resolve_class(*shape, anchors, cycle, offset)
                        else {
                            partial.failures += 1;
                            continue;
                        };
                        let p = &profiles[qi * class_count(*shape, anchors) + ci];
                        if p.failed {
                            partial.failures += 1;
                        } else {
                            partial.record(
                                rate,
                                p.tuning,
                                p.latency + delta,
                                p.peak_memory_bytes,
                                p.exact,
                            );
                        }
                    }
                    CellMode::Exact => {
                        let loss_seed = splitmix64(h ^ 0x10C5);
                        let mut ch = BroadcastChannel::tune_in(
                            cycle,
                            offset,
                            spec.scenario.loss.model(loss_seed),
                        );
                        let device = client.as_mut().expect("full-session scratch");
                        let (query, oracle) = pool[qi];
                        let t0 = Instant::now();
                        let result = device.query(&mut ch, &query);
                        partial.session_cpu_ms += t0.elapsed().as_secs_f64() * 1000.0;
                        partial.cpu_sessions += 1;
                        match result {
                            Ok(out) => partial.record(
                                rate,
                                out.stats.tuning_packets,
                                out.stats.latency_packets,
                                out.stats.peak_memory_bytes,
                                out.distance == oracle,
                            ),
                            Err(_) => partial.failures += 1,
                        }
                    }
                    CellMode::Supervised { plan } => {
                        let device = client.as_mut().expect("full-session scratch");
                        let (query, oracle) = pool[qi];
                        let t0 = Instant::now();
                        let s = supervise(FLASH_BUDGET, cycle_len, |k| {
                            // Attempt 0 re-derives this client's own
                            // offset/loss stream; re-tunes draw fresh
                            // ones. The fault plan stays the shared
                            // population-wide schedule throughout.
                            let a = attempt_seed(h, k);
                            let mut ch = BroadcastChannel::tune_in_with_faults(
                                cycle,
                                (splitmix64(a) % cycle_len as u64) as usize,
                                spec.scenario.loss.model(splitmix64(a ^ 0x10C5)),
                                *plan,
                            );
                            let result = device.query(&mut ch, &query);
                            (result, AttemptReport::of(&ch, (0, 0)))
                        });
                        partial.session_cpu_ms += t0.elapsed().as_secs_f64() * 1000.0;
                        partial.cpu_sessions += 1;
                        partial.fault.as_mut().expect("supervised metrics").session(
                            s.attempts,
                            s.recovery_packets,
                            cycle_len,
                        );
                        match s.outcome {
                            SessionOutcome::Answered(out) => partial.record(
                                rate,
                                s.tuned_packets,
                                s.recovery_packets,
                                out.stats.peak_memory_bytes,
                                out.distance == oracle,
                            ),
                            // The pool is oracle-backed — every query is
                            // reachable — so a trusted negative is wrong.
                            SessionOutcome::Unreachable => partial.mismatches += 1,
                            SessionOutcome::Failed(e) => partial
                                .fault
                                .as_mut()
                                .expect("supervised metrics")
                                .failed(e.root_class()),
                        }
                    }
                }
            }
        },
        |a, b| a.absorb(b),
    )
    .unwrap_or_else(|| CellMetrics::new(cycle_len, full_sessions, supervised, rate));

    let fault = metrics.fault.map(|agg| LoadFaultSummary {
        fault: spec.scenario.fault.label(),
        typed_failures: agg.typed_failures,
        failure_rate: agg.typed_failures as f64 / (cell.population.max(1)) as f64,
        budget_violations: agg.budget_violations,
        attempts: agg.attempts,
        max_attempts: agg.max_attempts,
        retried: agg.retried,
        recovery: summarize(&agg.recovery),
        failure_classes: agg
            .classes
            .into_iter()
            .map(|(c, n)| (c.to_string(), n))
            .collect(),
    });

    // Mean measured CPU per real client session: the profile table for
    // replayed cells (their served clients are O(1) replays), the served
    // sessions themselves otherwise.
    let client_cpu_ms = match &cell.mode {
        CellMode::Replay { profiles, .. } => {
            let n = profiles.len().max(1);
            profiles.iter().map(|p| p.cpu_ms).sum::<f64>() / n as f64
        }
        CellMode::Exact | CellMode::Supervised { .. } => {
            metrics.session_cpu_ms / metrics.cpu_sessions.max(1) as f64
        }
    };

    LoadCellReport {
        scenario: spec.scenario.name.clone(),
        method: cell.method.name(),
        population: cell.population,
        query_pool: pool.len(),
        replayed: !full_sessions,
        profile_sessions: cell.profile_sessions(),
        mismatches: metrics.mismatches,
        failures: metrics.failures,
        cycle_packets: cycle_len,
        peak_memory_bytes: metrics.peak_memory_bytes,
        latency: summarize(&metrics.latency),
        tuning: summarize(&metrics.tuning),
        energy_uj: summarize(&metrics.energy_uj),
        radio_energy_joules_total: metrics.energy_uj.sum() as f64 / 1e6,
        fault,
        cpu_ms: start.elapsed().as_secs_f64() * 1000.0,
        client_cpu_ms,
    }
}

/// Serves every prepared cell's population across `threads` workers and
/// returns the aggregated report. Cheap relative to [`prepare`] for
/// lossless cells (replay is O(1) per client); deterministic for every
/// thread count.
pub fn run(prep: &PreparedLoad, threads: usize) -> LoadReport {
    LoadReport {
        cells: prep
            .cells
            .iter()
            .map(|cell| run_cell(prep, cell, threads))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seeds_differ_per_method_and_seed() {
        let a = cell_seed(1, MethodId::NR);
        let b = cell_seed(1, MethodId::EB);
        let c = cell_seed(2, MethodId::NR);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn shapes_cover_all_air_methods() {
        // Every servable method declares its shape on the descriptor;
        // the registry's air set is exactly the servable set.
        for m in spair_methods::MethodRegistry::standard().air_methods() {
            let _ = session_shape(m); // must not panic
        }
    }

    #[test]
    fn radio_uj_scales_with_tuning() {
        let rate = ChannelRate::MOVING_3G;
        let quiet = radio_uj(rate, 0, 1000);
        let loud = radio_uj(rate, 1000, 0);
        assert!(loud > 20 * quiet, "rx {loud} vs sleep {quiet}");
    }
}
