//! Population-scale broadcast-serving load harness.
//!
//! The paper's defining argument for air indexes is that a broadcast
//! server's cost is **independent of the client count** — one cycle on
//! the air serves a million tuned-in devices as cheaply as one. The
//! conformance matrix (`spair-sim`) certifies exactness per method; this
//! crate adds the scale story: [`harness::prepare`] expands each
//! [`LoadSpec`] into one shared world per scenario, and [`harness::run`]
//! tunes **N seeded clients** (10^4–10^6) in at random cycle offsets
//! against the shared air cycle of every (scenario × method) cell.
//!
//! Lossless populations replay exactly from per-anchor session profiles
//! (O(1) per client — see [`harness`] for why that is exact, and the
//! `replay_matches_real_sessions` tests for the proof); lossy
//! populations run full per-client sessions. Either way, results fold
//! into streaming fixed-bucket histograms ([`hist`]) yielding
//! p50/p95/p99/max access latency, tuning time and radio energy in
//! O(buckets) memory, merged deterministically so reports are
//! bit-identical for every thread count.
//!
//! ```text
//! cargo run --release -p spair-load --bin bench_load
//! ```
//! serves the default matrix (a ~100k-node "germany-class" network with
//! 120k clients per method, plus mid-scale and lossy cells) and emits
//! `BENCH_load.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod hist;
pub mod report;
pub mod socket;
pub mod spec;

pub use harness::{prepare, run, session_shape, PreparedCell, PreparedLoad};
pub use hist::StreamingHistogram;
pub use report::{LoadCellReport, LoadFaultSummary, LoadReport, PercentileSummary};
pub use socket::{
    run_socket_bench, socket_scenario, SocketBenchConfig, SocketCellReport, SocketReport,
    WorkerMode,
};
pub use spair_methods::SessionShape;
pub use spec::{
    default_load_matrix, override_flash_population, paper_scale_graph, smoke_load_matrix, LoadSpec,
    LoadSpecError, PAPER_SCALE_BASE_NODES,
};
