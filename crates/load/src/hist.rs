//! Streaming, mergeable fixed-bucket histograms.
//!
//! A [`StreamingHistogram`] accumulates one cost dimension (latency
//! packets, tuning packets, energy micro-joules) over an arbitrarily
//! large client population in O(buckets) memory: values land in
//! fixed-width buckets, exact `count`/`sum`/`min`/`max` ride along, and
//! two histograms over the same layout merge by element-wise addition —
//! the merge is associative and commutative, so the chunk-ordered
//! map-reduce fan-out produces bit-identical aggregates for every thread
//! count.
//!
//! Percentile queries return the inclusive upper edge of the bucket
//! holding the requested rank (clamped to the observed `min`/`max`), so a
//! streaming percentile is always within one bucket width of the exact
//! order statistic as long as the value fell below the configured bound;
//! values at or above the bound land in a dedicated overflow bucket whose
//! percentile answer is the exact maximum.

/// A fixed-bucket streaming histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingHistogram {
    width: u64,
    /// `buckets` regular buckets plus one trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl StreamingHistogram {
    /// A histogram expecting values in `[0, upper_bound)`, split into
    /// `buckets` equal-width buckets (width at least 1). Values at or
    /// above the bound still record exactly into `count`/`sum`/`max` but
    /// fall into the overflow bucket, widening that tail percentile's
    /// error to the distance between the bound and the maximum.
    pub fn with_bound(upper_bound: u64, buckets: usize) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        let width = upper_bound.max(1).div_ceil(buckets as u64).max(1);
        Self {
            width,
            counts: vec![0; buckets + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = ((v / self.width) as usize).min(self.counts.len() - 1);
        self.counts[b] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self`. Panics if the layouts (bucket width or
    /// count) differ — merging is only defined over identical layouts.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "bucket width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "layout mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) under the nearest-rank
    /// definition: the estimate for the `ceil(q * count)`-th smallest
    /// value. Returns the inclusive upper edge of the rank's bucket,
    /// clamped to the observed `[min, max]`; 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if b + 1 == self.counts.len() {
                    return self.max; // overflow bucket: exact max
                }
                let edge = (b as u64 + 1) * self.width - 1;
                return edge.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean as a float (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket width (the percentile error bound for non-overflowed
    /// values).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Values that fell at or beyond the configured bound.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("at least one bucket")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn records_and_reports_exact_extremes() {
        let mut h = StreamingHistogram::with_bound(1000, 10);
        for v in [3u64, 997, 42, 42, 500] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3 + 997 + 42 + 42 + 500);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 997);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = StreamingHistogram::with_bound(100, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_within_one_bucket_width() {
        let values: Vec<u64> = (0..500u64).map(|i| (i * 37) % 4000).collect();
        let mut h = StreamingHistogram::with_bound(4000, 64);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let est = h.percentile(q);
            assert!(
                est.abs_diff(exact) < h.width(),
                "q={q}: exact {exact}, streaming {est}, width {}",
                h.width()
            );
        }
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = StreamingHistogram::with_bound(100, 10);
        h.record(5);
        h.record(7_000);
        h.record(9_000);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.percentile(1.0), 9_000);
        assert_eq!(h.max(), 9_000);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mk = || StreamingHistogram::with_bound(1 << 20, 128);
        let values: Vec<u64> = (0..999u64).map(|i| i * i % (1 << 20)).collect();
        let mut whole = mk();
        for &v in &values {
            whole.record(v);
        }
        let (lo, hi) = values.split_at(333);
        let mut a = mk();
        let mut b = mk();
        for &v in lo {
            a.record(v);
        }
        for &v in hi {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let mut h = StreamingHistogram::with_bound(10_000, 32);
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1, 500, 9999]), mk(&[42, 42]), mk(&[7_777, 0]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = StreamingHistogram::with_bound(100, 10);
        let b = StreamingHistogram::with_bound(200, 10);
        a.merge(&b);
    }
}
