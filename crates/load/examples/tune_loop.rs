//! Per-client tune-loop micro-benchmark: the cost one DJ client pays for
//! one full session (whole-cycle reception, decode, store, search) on the
//! load harness's paper-scale germany-class network.
//!
//! This is the loop the ROADMAP's "hot-path raw speed" item targets —
//! run it before and after layout changes to see the per-client effect
//! without the harness's population replay around it:
//!
//! ```text
//! cargo run --release -p spair-load --example tune_loop -- [nodes] [clients]
//! ```

use spair_baselines::{DjClient, DjServer};
use spair_broadcast::{BroadcastChannel, LossModel};
use spair_core::query::{AirClient, Query};
use spair_load::spec::paper_scale_graph;
use spair_roadnet::NodeId;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args
        .next()
        .map(|a| a.parse().expect("nodes"))
        .unwrap_or(100_000);
    let clients: usize = args
        .next()
        .map(|a| a.parse().expect("clients"))
        .unwrap_or(20);

    let scale = nodes as f64 / 100_000.0;
    let t0 = Instant::now();
    let g = paper_scale_graph(scale).build(9001);
    eprintln!(
        "graph: {} nodes / {} edges in {:.1}s",
        g.num_nodes(),
        g.num_edges(),
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let program = DjServer::new(&g).build_program();
    eprintln!(
        "cycle: {} packets in {:.1}s",
        program.cycle().len(),
        t0.elapsed().as_secs_f64()
    );

    let n = g.num_nodes() as NodeId;
    let mut client = DjClient::new();
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for i in 0..clients {
        let s = (i as NodeId * 7919) % n;
        let t = (i as NodeId * 104_729 + n / 2) % n;
        let offset = (i * 131) % program.cycle().len();
        let mut ch = BroadcastChannel::tune_in(program.cycle(), offset, LossModel::Lossless);
        let out = client
            .query(&mut ch, &Query::for_nodes(&g, s, t))
            .expect("connected network");
        checksum = checksum.wrapping_add(out.distance);
    }
    let per_client = t0.elapsed().as_secs_f64() * 1000.0 / clients as f64;
    println!("per-client session: {per_client:.2} ms  (checksum {checksum})");
}
