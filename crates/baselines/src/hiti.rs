//! HiTi — hierarchical topographical index (Jung & Pramanik; paper §2.1).
//!
//! The network is partitioned by a grid; subgraphs are recursively grouped
//! (2×2 here) into higher-level subgraphs, and for each subgraph at each
//! level the shortest paths among its border nodes are precomputed and
//! stored. The paper's point (§3.2 and Table 1) is that the accumulated
//! super-edges make the index several times larger than the network, so a
//! broadcast client would have to receive an enormous cycle and hold it in
//! a heap it does not have: HiTi and SPQ are excluded from the per-query
//! experiments for exactly that reason.
//!
//! This module reproduces that verdict: it builds the full hierarchy (for
//! the size and precompute-time experiments) and provides an exact local
//! query over the level-0 contraction to validate the construction.
//!
//! The build path is fully flattened: group bucketing is a counting sort
//! into one CSR node array, the per-border restricted Dijkstras run over
//! stamp-versioned dense `dist`/`parent`/membership arrays reused across
//! every search a worker performs, and materialized path views live in
//! one shared `via` pool per level addressed by `(offset, len)` instead
//! of one heap `Vec` per super-edge. Output is bit-identical to the old
//! `HashMap`-based build (pinned by `tests/hiti_differential.rs`).

use spair_partition::{GridPartition, Partitioning, RegionId};
use spair_roadnet::parallel;
use spair_roadnet::{Distance, MinHeap, NodeId, RoadNetwork};
use std::time::Instant;

/// One precomputed border-pair shortest path (a super-edge). The interior
/// nodes of the materialized path view live in the owning
/// [`HiTiLevel`]'s shared pool — see [`HiTiLevel::via`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperEdge {
    /// Entry border node.
    pub from: NodeId,
    /// Exit border node.
    pub to: NodeId,
    /// Subgraph-restricted shortest distance.
    pub cost: Distance,
    /// Start of the interior path view in the level's `via` pool.
    via_off: u32,
    /// Interior hops of the path view (excludes both endpoints).
    via_len: u32,
}

impl SuperEdge {
    /// Hops of the materialized path (`via_len() + 1`).
    pub fn hops(&self) -> u32 {
        self.via_len + 1
    }

    /// Interior nodes of the path view (excludes both endpoints).
    pub fn via_len(&self) -> usize {
        self.via_len as usize
    }
}

/// One level of the HiTi hierarchy. Super-edges index into the level's
/// shared `via` pool: HiTi/HEPV store the paths, not just the costs —
/// that is what makes the index several times the network in Table 1.
#[derive(Debug, Clone, Default)]
pub struct HiTiLevel {
    /// Number of cells per side at this level.
    pub cells_per_side: usize,
    /// Super-edges of every subgraph at this level.
    pub super_edges: Vec<SuperEdge>,
    /// Interior path nodes of all super-edges, in travel order, one
    /// contiguous slab per edge.
    via_pool: Vec<NodeId>,
}

impl HiTiLevel {
    /// Interior nodes of `se`'s materialized path, in travel order.
    pub fn via(&self, se: &SuperEdge) -> &[NodeId] {
        &self.via_pool[se.via_off as usize..se.via_off as usize + se.via_len as usize]
    }

    /// The level's shared path pool (all interior nodes, edge-major).
    pub fn via_pool(&self) -> &[NodeId] {
        &self.via_pool
    }
}

/// The full HiTi index.
#[derive(Debug, Clone)]
pub struct HiTiIndex {
    /// Levels, finest first.
    pub levels: Vec<HiTiLevel>,
    /// Cell assignment of every node at the base level.
    base_cell: Vec<RegionId>,
    base_side: usize,
    /// Broadcastable geometry of the base grid.
    locator: spair_partition::GridLocator,
    /// Build wall-clock (Table 3 context).
    pub precompute_secs: f64,
}

/// Per-level build output: super-edges plus their shared path pool.
/// Chunk partials carry local pool offsets; the merge rebases them.
#[derive(Debug, Default)]
struct LevelPartial {
    edges: Vec<SuperEdge>,
    via_pool: Vec<NodeId>,
}

/// Reusable per-worker search state: stamp-versioned dense arrays, so
/// starting a new group or a new border search is O(1) instead of
/// clearing (or reallocating) node-sized maps.
struct GroupScratch {
    /// Tentative distance; live iff `stamp[v] == search`.
    dist: Vec<Distance>,
    /// Dijkstra parent; live iff `stamp[v] == search` and `v` != source.
    parent: Vec<NodeId>,
    stamp: Vec<u64>,
    /// Node is inside the current group iff `member[v] == group`.
    member: Vec<u64>,
    /// Node is a border of the current group iff `border[v] == group`.
    border: Vec<u64>,
    search: u64,
    group: u64,
    heap: MinHeap<NodeId>,
    /// Borders of the current group, in ascending node order.
    borders: Vec<NodeId>,
    /// Nodes reached by the current search, sorted ascending after it.
    touched: Vec<NodeId>,
}

impl GroupScratch {
    fn new(n: usize) -> Self {
        Self {
            dist: vec![0; n],
            parent: vec![0; n],
            stamp: vec![0; n],
            member: vec![0; n],
            border: vec![0; n],
            search: 0,
            group: 0,
            heap: MinHeap::new(),
            borders: Vec::new(),
            touched: Vec::new(),
        }
    }
}

impl HiTiIndex {
    /// Builds the hierarchy over a `side × side` base grid with
    /// `num_levels` levels (side halves per level; side must be a power
    /// of two and `>= 2^(num_levels-1)`).
    pub fn build(g: &RoadNetwork, side: usize, num_levels: usize) -> Self {
        Self::build_with_threads(g, side, num_levels, parallel::num_threads())
    }

    /// Builds the hierarchy on an explicit number of worker threads.
    /// Subgraphs are independent, so each level's groups fan out across
    /// workers; groups are processed and merged in ascending group-id
    /// order, making the super-edge list identical for every thread
    /// count (the `HashMap`-ordered serial build was not even
    /// deterministic across runs).
    pub fn build_with_threads(
        g: &RoadNetwork,
        side: usize,
        num_levels: usize,
        threads: usize,
    ) -> Self {
        assert!(side.is_power_of_two(), "grid side must be a power of two");
        assert!(num_levels >= 1 && side >> (num_levels - 1) >= 1);
        let start = Instant::now();
        let base = GridPartition::build(g, side, side);
        let base_cell: Vec<RegionId> = g.node_ids().map(|v| base.region_of(v)).collect();
        let n = g.num_nodes();

        let mut levels = Vec::with_capacity(num_levels);
        for level in 0..num_levels {
            let cells = side >> level;
            // Group id of a node at this level.
            let group_of = |v: NodeId| -> usize {
                let c = base_cell[v as usize] as usize;
                let (x, y) = (c % side, c / side);
                (y >> level) * cells + (x >> level)
            };
            // Counting-sort every node into its group: one CSR pass
            // instead of a map of per-group Vecs. Node order within a
            // group stays ascending (the fill walks ids in order).
            let num_groups = cells * cells;
            let mut group_start = vec![0u32; num_groups + 1];
            for v in g.node_ids() {
                group_start[group_of(v) + 1] += 1;
            }
            for gi in 0..num_groups {
                group_start[gi + 1] += group_start[gi];
            }
            let mut cursor: Vec<u32> = group_start[..num_groups].to_vec();
            let mut group_nodes = vec![0 as NodeId; n];
            for v in g.node_ids() {
                let gi = group_of(v);
                group_nodes[cursor[gi] as usize] = v;
                cursor[gi] += 1;
            }
            // Non-empty groups in ascending id order, matching the old
            // sorted map iteration (empty groups emit nothing anyway but
            // would skew chunk load balance).
            let group_list: Vec<&[NodeId]> = (0..num_groups)
                .map(|gi| &group_nodes[group_start[gi] as usize..group_start[gi + 1] as usize])
                .filter(|nodes| !nodes.is_empty())
                .collect();

            let partial = parallel::map_reduce_chunked(
                &group_list,
                threads,
                2,
                || GroupScratch::new(n),
                LevelPartial::default,
                |scratch, partial, chunk, _base| {
                    for nodes in chunk {
                        build_group_super_edges(g, nodes, scratch, partial);
                    }
                },
                |acc, p| {
                    let rebase = acc.via_pool.len() as u32;
                    acc.edges.extend(p.edges.iter().map(|se| SuperEdge {
                        via_off: se.via_off + rebase,
                        ..*se
                    }));
                    acc.via_pool.extend_from_slice(&p.via_pool);
                },
            )
            .unwrap_or_default();
            levels.push(HiTiLevel {
                cells_per_side: cells,
                super_edges: partial.edges,
                via_pool: partial.via_pool,
            });
        }

        Self {
            levels,
            base_cell,
            base_side: side,
            locator: base.locator(),
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Base grid side (cells per axis at level 0).
    pub fn base_side(&self) -> usize {
        self.base_side
    }

    /// Base-level cell of a node.
    pub fn base_cell_of(&self, v: NodeId) -> RegionId {
        self.base_cell[v as usize]
    }

    /// Broadcastable base-grid geometry.
    pub fn locator(&self) -> spair_partition::GridLocator {
        self.locator
    }

    /// Group index of base cell `cell` at `level` (0 = the cell itself).
    pub fn group_of_cell(&self, cell: RegionId, level: usize) -> usize {
        let (x, y) = (
            cell as usize % self.base_side,
            cell as usize / self.base_side,
        );
        let cells = self.base_side >> level;
        (y >> level) * cells + (x >> level)
    }

    /// Total index size in bytes: 12 per super-edge (two ids + cost) plus
    /// 4 bytes per interior hop of the materialized path view.
    pub fn index_bytes(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.super_edges.iter())
            .map(|se| 12 + 4 * se.via_len())
            .sum()
    }

    /// Index size in broadcast packets.
    pub fn index_packets(&self) -> usize {
        self.index_bytes()
            .div_ceil(spair_broadcast::packet::PAYLOAD_CAPACITY)
    }

    /// Bit-identity certificate: true iff every level's super-edge table
    /// and path pool match `other`'s exactly.
    pub fn same_tables(&self, other: &HiTiIndex) -> bool {
        self.levels.len() == other.levels.len()
            && self.levels.iter().zip(&other.levels).all(|(a, b)| {
                a.cells_per_side == b.cells_per_side
                    && a.super_edges == b.super_edges
                    && a.via_pool == b.via_pool
            })
    }

    /// Exact point-to-point query over the level-0 contraction: the cells
    /// of `s` and `t` stay raw, every other cell contributes only its
    /// super-edges, plus all cross-cell edges. Validates the construction.
    pub fn query(&self, g: &RoadNetwork, s: NodeId, t: NodeId) -> Option<Distance> {
        let n = g.num_nodes();
        let cs = self.base_cell[s as usize];
        let ct = self.base_cell[t as usize];
        // Adjacency of G' as a CSR: super-edges of non-terminal cells +
        // raw edges of terminal cells + all cross-cell edges. Two passes
        // (degree count, then fill) keep it one flat allocation; per-node
        // arc order matches the old per-node push order (super-edges
        // first, then raw edges).
        let level0 = &self.levels[0];
        let keeps_se = |se: &SuperEdge| {
            let c = self.base_cell[se.from as usize];
            c != cs && c != ct
        };
        let keeps_raw = |v: NodeId, u: NodeId| {
            let cv = self.base_cell[v as usize];
            self.base_cell[u as usize] != cv || cv == cs || cv == ct
        };
        let mut deg = vec![0u32; n + 1];
        for se in &level0.super_edges {
            if keeps_se(se) {
                deg[se.from as usize + 1] += 1;
            }
        }
        for v in g.node_ids() {
            for (u, _) in g.out_edges(v) {
                if keeps_raw(v, u) {
                    deg[v as usize + 1] += 1;
                }
            }
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let mut arcs = vec![(0 as NodeId, 0 as Distance); deg[n] as usize];
        let mut cursor: Vec<u32> = deg[..n].to_vec();
        for se in &level0.super_edges {
            if keeps_se(se) {
                arcs[cursor[se.from as usize] as usize] = (se.to, se.cost);
                cursor[se.from as usize] += 1;
            }
        }
        for v in g.node_ids() {
            for (u, w) in g.out_edges(v) {
                if keeps_raw(v, u) {
                    arcs[cursor[v as usize] as usize] = (u, w as Distance);
                    cursor[v as usize] += 1;
                }
            }
        }
        // Dijkstra over G' on a dense distance array.
        let mut dist = vec![Distance::MAX; n];
        let mut heap = MinHeap::new();
        dist[s as usize] = 0;
        heap.push(0, s);
        while let Some(e) = heap.pop() {
            let v = e.item;
            if dist[v as usize] != e.key {
                continue;
            }
            if v == t {
                return Some(e.key);
            }
            for &(u, c) in &arcs[deg[v as usize] as usize..deg[v as usize + 1] as usize] {
                let cand = e.key + c;
                if cand < dist[u as usize] {
                    dist[u as usize] = cand;
                    heap.push(cand, u);
                }
            }
        }
        None
    }
}

/// Emits all super-edges of one subgraph (border-pair restricted
/// shortest paths) into `out`, ordered by source border then target id.
fn build_group_super_edges(
    g: &RoadNetwork,
    nodes: &[NodeId],
    scratch: &mut GroupScratch,
    out: &mut LevelPartial,
) {
    scratch.group += 1;
    let group = scratch.group;
    for &v in nodes {
        scratch.member[v as usize] = group;
    }
    scratch.borders.clear();
    for &v in nodes {
        let outside = |u: NodeId| scratch.member[u as usize] != group;
        if g.out_edges(v).any(|(u, _)| outside(u)) || g.in_edges(v).any(|(u, _)| outside(u)) {
            scratch.borders.push(v);
            scratch.border[v as usize] = group;
        }
    }
    for bi in 0..scratch.borders.len() {
        let b = scratch.borders[bi];
        restricted_dijkstra(g, b, scratch);
        for ti in 0..scratch.touched.len() {
            let t = scratch.touched[ti];
            if t == b || scratch.border[t as usize] != group {
                continue;
            }
            // Interior nodes by walking parents back (excludes both
            // endpoints), written straight into the shared pool.
            let via_off = out.via_pool.len();
            let mut cur = t;
            while cur != b {
                let p = scratch.parent[cur as usize];
                if p == b {
                    break;
                }
                out.via_pool.push(p);
                cur = p;
            }
            out.via_pool[via_off..].reverse();
            out.edges.push(SuperEdge {
                from: b,
                to: t,
                cost: scratch.dist[t as usize],
                via_off: via_off as u32,
                via_len: (out.via_pool.len() - via_off) as u32,
            });
        }
    }
}

/// Dijkstra from `source` restricted to the current group, leaving
/// distances/parents in the stamped arrays and the reached set in
/// `scratch.touched`, sorted ascending (the deterministic order the
/// parallel build's merge relies on).
fn restricted_dijkstra(g: &RoadNetwork, source: NodeId, scratch: &mut GroupScratch) {
    scratch.search += 1;
    let s = scratch.search;
    scratch.touched.clear();
    scratch.dist[source as usize] = 0;
    scratch.stamp[source as usize] = s;
    scratch.touched.push(source);
    scratch.heap.clear();
    scratch.heap.push(0, source);
    while let Some(e) = scratch.heap.pop() {
        let v = e.item;
        if scratch.dist[v as usize] != e.key {
            continue;
        }
        for (u, w) in g.out_edges(v) {
            if scratch.member[u as usize] != scratch.group {
                continue;
            }
            let cand = e.key + w as Distance;
            let seen = scratch.stamp[u as usize] == s;
            if !seen || cand < scratch.dist[u as usize] {
                if !seen {
                    scratch.stamp[u as usize] = s;
                    scratch.touched.push(u);
                }
                scratch.dist[u as usize] = cand;
                scratch.parent[u as usize] = v;
                scratch.heap.push(cand, u);
            }
        }
    }
    scratch.touched.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn query_is_exact() {
        let g = small_grid(10, 10, 3);
        let idx = HiTiIndex::build(&g, 4, 2);
        for &(s, t) in &[(0u32, 99u32), (12, 87), (50, 51), (3, 3)] {
            assert_eq!(idx.query(&g, s, t), dijkstra_distance(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn hierarchy_levels_shrink() {
        let g = small_grid(8, 8, 1);
        let idx = HiTiIndex::build(&g, 4, 3);
        assert_eq!(idx.levels.len(), 3);
        assert_eq!(idx.levels[0].cells_per_side, 4);
        assert_eq!(idx.levels[1].cells_per_side, 2);
        assert_eq!(idx.levels[2].cells_per_side, 1);
        // The coarsest level is one all-covering subgraph: no borders, no
        // super-edges.
        assert!(idx.levels[2].super_edges.is_empty());
    }

    #[test]
    fn index_is_larger_than_the_network_data() {
        // The paper's Table 1 headline: HiTi's precomputed distances
        // dwarf the raw network.
        let g = small_grid(12, 12, 2);
        let idx = HiTiIndex::build(&g, 8, 3);
        let network_bytes = g.num_edges() * 8 + g.num_nodes() * 12;
        assert!(
            idx.index_bytes() > network_bytes,
            "index {} vs network {}",
            idx.index_bytes(),
            network_bytes
        );
    }

    #[test]
    fn super_edge_costs_are_subgraph_restricted_shortest() {
        let g = small_grid(6, 6, 4);
        let idx = HiTiIndex::build(&g, 2, 1);
        for se in &idx.levels[0].super_edges {
            // Cost can never beat the unrestricted shortest distance.
            let free = dijkstra_distance(&g, se.from, se.to).unwrap();
            assert!(se.cost >= free);
        }
    }

    #[test]
    fn via_views_are_consistent_paths() {
        // Every materialized view must be a real in-group path whose
        // weights sum to the super-edge cost.
        let g = small_grid(6, 6, 4);
        let idx = HiTiIndex::build(&g, 2, 1);
        let l0 = &idx.levels[0];
        for se in &l0.super_edges {
            let mut hops = Vec::with_capacity(se.via_len() + 2);
            hops.push(se.from);
            hops.extend_from_slice(l0.via(se));
            hops.push(se.to);
            let mut total = 0 as Distance;
            for pair in hops.windows(2) {
                let w = g
                    .out_edges(pair[0])
                    .find(|&(u, _)| u == pair[1])
                    .map(|(_, w)| w as Distance)
                    .expect("via hop is a real edge");
                total += w;
            }
            assert_eq!(total, se.cost);
            assert_eq!(se.hops(), se.via_len() as u32 + 1);
        }
    }

    #[test]
    fn build_is_identical_across_thread_counts() {
        let g = small_grid(8, 8, 5);
        let one = HiTiIndex::build_with_threads(&g, 4, 2, 1);
        for t in [2, 3, 6] {
            let multi = HiTiIndex::build_with_threads(&g, 4, 2, t);
            assert!(one.same_tables(&multi), "threads={t}");
        }
    }

    #[test]
    fn precompute_time_recorded() {
        let g = small_grid(5, 5, 0);
        let idx = HiTiIndex::build(&g, 2, 1);
        assert!(idx.precompute_secs >= 0.0);
    }
}
