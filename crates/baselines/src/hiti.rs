//! HiTi — hierarchical topographical index (Jung & Pramanik; paper §2.1).
//!
//! The network is partitioned by a grid; subgraphs are recursively grouped
//! (2×2 here) into higher-level subgraphs, and for each subgraph at each
//! level the shortest paths among its border nodes are precomputed and
//! stored. The paper's point (§3.2 and Table 1) is that the accumulated
//! super-edges make the index several times larger than the network, so a
//! broadcast client would have to receive an enormous cycle and hold it in
//! a heap it does not have: HiTi and SPQ are excluded from the per-query
//! experiments for exactly that reason.
//!
//! This module reproduces that verdict: it builds the full hierarchy (for
//! the size and precompute-time experiments) and provides an exact local
//! query over the level-0 contraction to validate the construction.

use spair_partition::{GridPartition, Partitioning, RegionId};
use spair_roadnet::parallel;
use spair_roadnet::{Distance, MinHeap, NodeId, RoadNetwork};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// One precomputed border-pair shortest path (a super-edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperEdge {
    /// Entry border node.
    pub from: NodeId,
    /// Exit border node.
    pub to: NodeId,
    /// Subgraph-restricted shortest distance.
    pub cost: Distance,
    /// Interior nodes of the materialized path view, in travel order
    /// (excludes both endpoints). HiTi/HEPV store the paths, not just the
    /// costs — that is what makes the index several times the network in
    /// Table 1.
    pub via: Vec<NodeId>,
}

impl SuperEdge {
    /// Hops of the materialized path (`via.len() + 1`).
    pub fn hops(&self) -> u32 {
        self.via.len() as u32 + 1
    }
}

/// One level of the HiTi hierarchy.
#[derive(Debug, Clone)]
pub struct HiTiLevel {
    /// Number of cells per side at this level.
    pub cells_per_side: usize,
    /// Super-edges of every subgraph at this level.
    pub super_edges: Vec<SuperEdge>,
}

/// The full HiTi index.
#[derive(Debug, Clone)]
pub struct HiTiIndex {
    /// Levels, finest first.
    pub levels: Vec<HiTiLevel>,
    /// Cell assignment of every node at the base level.
    base_cell: Vec<RegionId>,
    base_side: usize,
    /// Broadcastable geometry of the base grid.
    locator: spair_partition::GridLocator,
    /// Build wall-clock (Table 3 context).
    pub precompute_secs: f64,
}

impl HiTiIndex {
    /// Builds the hierarchy over a `side × side` base grid with
    /// `num_levels` levels (side halves per level; side must be a power
    /// of two and `>= 2^(num_levels-1)`).
    pub fn build(g: &RoadNetwork, side: usize, num_levels: usize) -> Self {
        Self::build_with_threads(g, side, num_levels, parallel::num_threads())
    }

    /// Builds the hierarchy on an explicit number of worker threads.
    /// Subgraphs are independent, so each level's groups fan out across
    /// workers; groups are processed and merged in ascending group-id
    /// order, making the super-edge list identical for every thread
    /// count (the `HashMap`-ordered serial build was not even
    /// deterministic across runs).
    pub fn build_with_threads(
        g: &RoadNetwork,
        side: usize,
        num_levels: usize,
        threads: usize,
    ) -> Self {
        assert!(side.is_power_of_two(), "grid side must be a power of two");
        assert!(num_levels >= 1 && side >> (num_levels - 1) >= 1);
        let start = Instant::now();
        let base = GridPartition::build(g, side, side);
        let base_cell: Vec<RegionId> = g.node_ids().map(|v| base.region_of(v)).collect();

        let mut levels = Vec::with_capacity(num_levels);
        for level in 0..num_levels {
            let cells = side >> level;
            // Group id of a node at this level.
            let group_of = |v: NodeId| -> usize {
                let c = base_cell[v as usize] as usize;
                let (x, y) = (c % side, c / side);
                (y >> level) * cells + (x >> level)
            };
            // Collect each group's nodes, in ascending group-id order.
            let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
            for v in g.node_ids() {
                groups.entry(group_of(v)).or_default().push(v);
            }
            let mut group_list: Vec<(usize, Vec<NodeId>)> = groups.into_iter().collect();
            group_list.sort_unstable_by_key(|&(gid, _)| gid);

            let super_edges = parallel::map_reduce_chunked(
                &group_list,
                threads,
                2,
                || (),
                Vec::<SuperEdge>::new,
                |_, partial, chunk, _base| {
                    for (_, nodes) in chunk {
                        build_group_super_edges(g, nodes, partial);
                    }
                },
                |acc, p| acc.extend(p),
            )
            .unwrap_or_default();
            levels.push(HiTiLevel {
                cells_per_side: cells,
                super_edges,
            });
        }

        Self {
            levels,
            base_cell,
            base_side: side,
            locator: base.locator(),
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Base grid side (cells per axis at level 0).
    pub fn base_side(&self) -> usize {
        self.base_side
    }

    /// Base-level cell of a node.
    pub fn base_cell_of(&self, v: NodeId) -> RegionId {
        self.base_cell[v as usize]
    }

    /// Broadcastable base-grid geometry.
    pub fn locator(&self) -> spair_partition::GridLocator {
        self.locator
    }

    /// Group index of base cell `cell` at `level` (0 = the cell itself).
    pub fn group_of_cell(&self, cell: RegionId, level: usize) -> usize {
        let (x, y) = (
            cell as usize % self.base_side,
            cell as usize / self.base_side,
        );
        let cells = self.base_side >> level;
        (y >> level) * cells + (x >> level)
    }

    /// Total index size in bytes: 12 per super-edge (two ids + cost) plus
    /// 4 bytes per interior hop of the materialized path view.
    pub fn index_bytes(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.super_edges.iter())
            .map(|se| 12 + 4 * se.via.len())
            .sum()
    }

    /// Index size in broadcast packets.
    pub fn index_packets(&self) -> usize {
        self.index_bytes()
            .div_ceil(spair_broadcast::packet::PAYLOAD_CAPACITY)
    }

    /// Exact point-to-point query over the level-0 contraction: the cells
    /// of `s` and `t` stay raw, every other cell contributes only its
    /// super-edges, plus all cross-cell edges. Validates the construction.
    pub fn query(&self, g: &RoadNetwork, s: NodeId, t: NodeId) -> Option<Distance> {
        let cs = self.base_cell[s as usize];
        let ct = self.base_cell[t as usize];
        // Adjacency of G': super-edges of non-terminal cells + raw edges
        // of terminal cells + all cross-cell edges.
        let mut adj: HashMap<NodeId, Vec<(NodeId, Distance)>> = HashMap::new();
        for se in &self.levels[0].super_edges {
            let c = self.base_cell[se.from as usize];
            if c != cs && c != ct {
                adj.entry(se.from).or_default().push((se.to, se.cost));
            }
        }
        for v in g.node_ids() {
            let cv = self.base_cell[v as usize];
            for (u, w) in g.out_edges(v) {
                let cu = self.base_cell[u as usize];
                if cu != cv || cv == cs || cv == ct {
                    adj.entry(v).or_default().push((u, w as Distance));
                }
            }
        }
        // Dijkstra over G'.
        let mut dist: HashMap<NodeId, Distance> = HashMap::new();
        let mut heap = MinHeap::new();
        dist.insert(s, 0);
        heap.push(0, s);
        while let Some(e) = heap.pop() {
            let v = e.item;
            if dist.get(&v) != Some(&e.key) {
                continue;
            }
            if v == t {
                return Some(e.key);
            }
            for &(u, c) in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let cand = e.key + c;
                if dist.get(&u).is_none_or(|&d| cand < d) {
                    dist.insert(u, cand);
                    heap.push(cand, u);
                }
            }
        }
        None
    }
}

/// Emits all super-edges of one subgraph (border-pair restricted
/// shortest paths) into `out`, ordered by source border then target id.
fn build_group_super_edges(g: &RoadNetwork, nodes: &[NodeId], out: &mut Vec<SuperEdge>) {
    let inside: HashSet<NodeId> = nodes.iter().copied().collect();
    let borders: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&v| {
            g.out_edges(v).any(|(u, _)| !inside.contains(&u))
                || g.in_edges(v).any(|(u, _)| !inside.contains(&u))
        })
        .collect();
    let border_set: HashSet<NodeId> = borders.iter().copied().collect();
    for &b in &borders {
        for (t, d, via) in restricted_dijkstra(g, b, &inside) {
            if t != b && border_set.contains(&t) {
                out.push(SuperEdge {
                    from: b,
                    to: t,
                    cost: d,
                    via,
                });
            }
        }
    }
}

/// Dijkstra restricted to `inside`, returning all reached
/// `(node, dist, interior path nodes)` in ascending node order (the
/// deterministic order the parallel build's merge relies on).
fn restricted_dijkstra(
    g: &RoadNetwork,
    source: NodeId,
    inside: &HashSet<NodeId>,
) -> Vec<(NodeId, Distance, Vec<NodeId>)> {
    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = MinHeap::new();
    dist.insert(source, 0);
    heap.push(0, source);
    while let Some(e) = heap.pop() {
        let v = e.item;
        if dist.get(&v) != Some(&e.key) {
            continue;
        }
        for (u, w) in g.out_edges(v) {
            if !inside.contains(&u) {
                continue;
            }
            let cand = e.key + w as Distance;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                parent.insert(u, v);
                heap.push(cand, u);
            }
        }
    }
    let mut reached: Vec<(NodeId, Distance)> = dist.into_iter().collect();
    reached.sort_unstable_by_key(|&(v, _)| v);
    reached
        .into_iter()
        .map(|(v, d)| {
            // Interior nodes by walking parents back (excludes endpoints).
            let mut via = Vec::new();
            let mut cur = v;
            while let Some(&p) = parent.get(&cur) {
                if p == source {
                    break;
                }
                via.push(p);
                cur = p;
            }
            via.reverse();
            (v, d, via)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn query_is_exact() {
        let g = small_grid(10, 10, 3);
        let idx = HiTiIndex::build(&g, 4, 2);
        for &(s, t) in &[(0u32, 99u32), (12, 87), (50, 51), (3, 3)] {
            assert_eq!(idx.query(&g, s, t), dijkstra_distance(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn hierarchy_levels_shrink() {
        let g = small_grid(8, 8, 1);
        let idx = HiTiIndex::build(&g, 4, 3);
        assert_eq!(idx.levels.len(), 3);
        assert_eq!(idx.levels[0].cells_per_side, 4);
        assert_eq!(idx.levels[1].cells_per_side, 2);
        assert_eq!(idx.levels[2].cells_per_side, 1);
        // The coarsest level is one all-covering subgraph: no borders, no
        // super-edges.
        assert!(idx.levels[2].super_edges.is_empty());
    }

    #[test]
    fn index_is_larger_than_the_network_data() {
        // The paper's Table 1 headline: HiTi's precomputed distances
        // dwarf the raw network.
        let g = small_grid(12, 12, 2);
        let idx = HiTiIndex::build(&g, 8, 3);
        let network_bytes = g.num_edges() * 8 + g.num_nodes() * 12;
        assert!(
            idx.index_bytes() > network_bytes,
            "index {} vs network {}",
            idx.index_bytes(),
            network_bytes
        );
    }

    #[test]
    fn super_edge_costs_are_subgraph_restricted_shortest() {
        let g = small_grid(6, 6, 4);
        let idx = HiTiIndex::build(&g, 2, 1);
        for se in &idx.levels[0].super_edges {
            // Cost can never beat the unrestricted shortest distance.
            let free = dijkstra_distance(&g, se.from, se.to).unwrap();
            assert!(se.cost >= free);
        }
    }

    #[test]
    fn build_is_identical_across_thread_counts() {
        let g = small_grid(8, 8, 5);
        let one = HiTiIndex::build_with_threads(&g, 4, 2, 1);
        for t in [2, 3, 6] {
            let multi = HiTiIndex::build_with_threads(&g, 4, 2, t);
            for (a, b) in one.levels.iter().zip(&multi.levels) {
                assert_eq!(a.super_edges, b.super_edges, "threads={t}");
            }
        }
    }

    #[test]
    fn precompute_time_recorded() {
        let g = small_grid(5, 5, 0);
        let idx = HiTiIndex::build(&g, 2, 1);
        assert!(idx.precompute_secs >= 0.0);
    }
}
