//! SPQ — the shortest-path quadtree of Samet, Sankaranarayanan & Alborzi
//! (SIGMOD 2008; paper §2.1).
//!
//! For every node `v`, all other nodes are colored by the incident edge of
//! `v` their shortest path leaves through; a region quadtree over the
//! node coordinates coalesces same-colored areas. A query walks: look up
//! `v_t`'s color in `v_s`'s quadtree, follow that edge, repeat from the
//! next node until `v_t` is reached.
//!
//! As with HiTi, the paper keeps SPQ out of the per-query broadcast
//! experiments: storing one quadtree per node multiplies the cycle length
//! (Table 1: 52 337 packets versus Dijkstra's 14 019 on Germany) and the
//! client would have to hold all trees on the path. Building is also the
//! costliest of all methods (one full Dijkstra per node), which used to
//! lock SPQ out of the paper-scale load cell entirely. The production
//! build ([`SpqIndex::build_with_threads`]) makes it tractable with three
//! ingredients, each differentially tested against a slow oracle:
//!
//! * colors come from [`spair_roadnet::first_hop`]'s one-sweep DP over a
//!   reusable [`DijkstraWorkspace`] (no per-root allocation, no per-target
//!   path reconstruction);
//! * per-root quadtrees are built by walking a [`QuadTemplate`] — the
//!   node coordinates are quadrant-sorted **once per graph**, so a root's
//!   tree costs one color scan over the shared order instead of
//!   re-bucketing every point at every recursion level;
//! * roots fan out across worker threads through
//!   [`parallel::map_reduce_chunked`] with a chunk-ordered merge, so the
//!   index is bit-identical ([`SpqIndex::same_trees`]) for every thread
//!   count — and identical to [`SpqIndex::build_reference`], the naive
//!   per-root recursive builder retained as the differential oracle.

use spair_roadnet::dijkstra::{DijkstraWorkspace, Direction};
use spair_roadnet::first_hop::{first_hops_from_tree, first_hops_from_workspace};
use spair_roadnet::{dijkstra_full, parallel, NodeId, Point, RoadNetwork};
use std::time::Instant;

/// Color = index of the first edge out of the root node (255 = none).
pub type Color = u8;

/// No-path marker (also [`spair_roadnet::first_hop::NO_FIRST_HOP`], which
/// the first-hop sweep shares).
pub const NO_COLOR: Color = u8::MAX;

/// A region quadtree over node coordinates with per-leaf colors.
#[derive(Debug, Clone, PartialEq)]
pub enum Quadtree {
    /// All points below share one color.
    Leaf(Color),
    /// Four children (quadrant order: SW, SE, NW, NE).
    Internal(Box<[Quadtree; 4]>),
    /// Depth-capped or duplicate-coordinate mixed leaf: explicit
    /// `(point, color)` list.
    Mixed(Vec<(Point, Color)>),
}

impl Quadtree {
    /// Number of tree blocks (nodes), the size measure of the paper.
    pub fn blocks(&self) -> usize {
        match self {
            Quadtree::Leaf(_) => 1,
            Quadtree::Mixed(pts) => 1 + pts.len(),
            Quadtree::Internal(ch) => 1 + ch.iter().map(Quadtree::blocks).sum::<usize>(),
        }
    }

    /// Color lookup for an exact node coordinate.
    pub fn color_at(&self, p: Point, bbox: (Point, Point)) -> Color {
        match self {
            Quadtree::Leaf(c) => *c,
            Quadtree::Mixed(pts) => pts
                .iter()
                .find(|(q, _)| q.x == p.x && q.y == p.y)
                .map(|(_, c)| *c)
                .unwrap_or(NO_COLOR),
            Quadtree::Internal(ch) => {
                let (min, max) = bbox;
                let mid = Point::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
                let (qi, sub) = quadrant(p, min, mid, max);
                ch[qi].color_at(p, sub)
            }
        }
    }
}

fn quadrant(p: Point, min: Point, mid: Point, max: Point) -> (usize, (Point, Point)) {
    let east = p.x >= mid.x;
    let north = p.y >= mid.y;
    let idx = usize::from(north) * 2 + usize::from(east);
    let sub = (
        Point::new(
            if east { mid.x } else { min.x },
            if north { mid.y } else { min.y },
        ),
        Point::new(
            if east { max.x } else { mid.x },
            if north { max.y } else { mid.y },
        ),
    );
    (idx, sub)
}

const MAX_DEPTH: usize = 20;

fn build_tree(points: &[(Point, Color)], bbox: (Point, Point), depth: usize) -> Quadtree {
    if points.is_empty() {
        return Quadtree::Leaf(NO_COLOR);
    }
    let first = points[0].1;
    if points.iter().all(|&(_, c)| c == first) {
        return Quadtree::Leaf(first);
    }
    if depth >= MAX_DEPTH {
        return Quadtree::Mixed(points.to_vec());
    }
    // Degenerate: every point shares one coordinate, so no split can ever
    // separate them. (Only this case may bail: distinct coordinates that
    // happen to land in one quadrant of a non-tight bbox still separate
    // under further splits, and the depth cap bounds the recursion.)
    let p0 = points[0].0;
    if points.iter().all(|&(p, _)| p == p0) {
        return Quadtree::Mixed(points.to_vec());
    }
    let (min, max) = bbox;
    let mid = Point::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
    let mut buckets: [Vec<(Point, Color)>; 4] = Default::default();
    let mut boxes = [bbox; 4];
    for &(p, c) in points {
        let (qi, sub) = quadrant(p, min, mid, max);
        buckets[qi].push((p, c));
        boxes[qi] = sub;
    }
    let children: Vec<Quadtree> = buckets
        .iter()
        .zip(boxes.iter())
        .map(|(b, &bx)| build_tree(b, bx, depth + 1))
        .collect();
    Quadtree::Internal(Box::new(
        children.try_into().expect("exactly four children"),
    ))
}

/// A root-independent quadrant subdivision of the node coordinates.
///
/// Every per-root quadtree recurses over the *same* spatial structure —
/// only the colors differ — so the template sorts the nodes into
/// quadrant-recursive order **once per graph** (each template cell covers
/// a contiguous range of `order`, stably preserving ascending node-id
/// order within the range). A root's colored tree is then a single walk:
/// scan a cell's color range; uniform → `Leaf`, terminal or
/// duplicate-coordinate → `Mixed`, otherwise recurse into the four child
/// cells. No per-root re-bucketing, no allocation besides the output.
///
/// [`QuadTemplate::colored_tree`] reproduces [`build_tree`] over the
/// root-excluded point set exactly; the `template_build_matches_*` tests
/// hold the two builders bit-identical.
#[derive(Debug)]
pub(crate) struct QuadTemplate {
    /// Node ids in quadrant-recursive order.
    order: Vec<NodeId>,
    /// Cells, preorder; cell 0 covers the whole `order`.
    cells: Vec<TemplateCell>,
}

#[derive(Debug, Clone, Copy)]
struct TemplateCell {
    lo: u32,
    hi: u32,
    /// SW/SE/NW/NE child cells; `None` for terminal cells (singleton,
    /// shared-coordinate, or depth-capped ranges).
    children: Option<[u32; 4]>,
}

impl QuadTemplate {
    pub(crate) fn build(g: &RoadNetwork) -> Self {
        let mut order: Vec<NodeId> = g.node_ids().collect();
        let mut cells = Vec::new();
        let n = order.len();
        subdivide(g, &mut order, 0, n, g.bounding_box(), 0, &mut cells);
        Self { order, cells }
    }

    /// Builds `root`'s colored quadtree from per-node colors (indexed by
    /// node id; the root itself is skipped, matching the per-root point
    /// sets of the recursive builder).
    pub(crate) fn colored_tree(&self, g: &RoadNetwork, colors: &[Color], root: NodeId) -> Quadtree {
        self.walk(g, 0, colors, root)
    }

    fn walk(&self, g: &RoadNetwork, cell: u32, colors: &[Color], root: NodeId) -> Quadtree {
        let c = self.cells[cell as usize];
        let range = &self.order[c.lo as usize..c.hi as usize];
        let mut it = range.iter().copied().filter(|&v| v != root);
        let Some(first) = it.next() else {
            return Quadtree::Leaf(NO_COLOR);
        };
        let first_color = colors[first as usize];
        let first_point = g.point(first);
        let mut uniform = true;
        let mut shared_coord = true;
        for v in it {
            uniform &= colors[v as usize] == first_color;
            shared_coord &= g.point(v) == first_point;
            if !uniform && !shared_coord {
                break;
            }
        }
        if uniform {
            return Quadtree::Leaf(first_color);
        }
        match c.children {
            Some(ch) if !shared_coord => Quadtree::Internal(Box::new([
                self.walk(g, ch[0], colors, root),
                self.walk(g, ch[1], colors, root),
                self.walk(g, ch[2], colors, root),
                self.walk(g, ch[3], colors, root),
            ])),
            // Terminal cell (depth cap) or all remaining points at one
            // coordinate — build_tree's Mixed cases.
            _ => Quadtree::Mixed(
                range
                    .iter()
                    .copied()
                    .filter(|&v| v != root)
                    .map(|v| (g.point(v), colors[v as usize]))
                    .collect(),
            ),
        }
    }
}

/// Recursive quadrant sort behind [`QuadTemplate::build`]. Mirrors
/// [`build_tree`]'s geometry exactly: same midpoints, same quadrant
/// assignment, same depth cap, same shared-coordinate bail.
fn subdivide(
    g: &RoadNetwork,
    order: &mut [NodeId],
    lo: usize,
    hi: usize,
    bbox: (Point, Point),
    depth: usize,
    cells: &mut Vec<TemplateCell>,
) -> u32 {
    let idx = cells.len() as u32;
    cells.push(TemplateCell {
        lo: lo as u32,
        hi: hi as u32,
        children: None,
    });
    if hi - lo <= 1 || depth >= MAX_DEPTH {
        return idx;
    }
    let p0 = g.point(order[lo]);
    if order[lo..hi].iter().all(|&v| g.point(v) == p0) {
        return idx;
    }
    let (min, max) = bbox;
    let mid = Point::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
    let mut buckets: [Vec<NodeId>; 4] = Default::default();
    let mut boxes = [bbox; 4];
    for &v in order[lo..hi].iter() {
        let (qi, sub) = quadrant(g.point(v), min, mid, max);
        buckets[qi].push(v);
        boxes[qi] = sub;
    }
    // Write the stable 4-way partition back, then recurse per quadrant.
    let mut cursor = lo;
    let mut ranges = [(0usize, 0usize); 4];
    for (qi, bucket) in buckets.iter().enumerate() {
        order[cursor..cursor + bucket.len()].copy_from_slice(bucket);
        ranges[qi] = (cursor, cursor + bucket.len());
        cursor += bucket.len();
    }
    let mut children = [0u32; 4];
    for qi in 0..4 {
        let (clo, chi) = ranges[qi];
        children[qi] = subdivide(g, order, clo, chi, boxes[qi], depth + 1, cells);
    }
    cells[idx as usize].children = Some(children);
    idx
}

/// The SPQ index: one colored quadtree per node.
#[derive(Debug, Clone)]
pub struct SpqIndex {
    trees: Vec<Quadtree>,
    bbox: (Point, Point),
    /// Build wall-clock.
    pub precompute_secs: f64,
}

/// Per-worker scratch of the fan-out build: one reusable Dijkstra
/// workspace plus one color buffer, shared across every root the worker
/// claims.
struct RootScratch {
    ws: DijkstraWorkspace,
    colors: Vec<Color>,
}

impl SpqIndex {
    /// Builds all quadtrees with the detected worker count (one full
    /// Dijkstra per node — still the method's documented weakness, but
    /// parallel, allocation-free per root, and template-driven).
    pub fn build(g: &RoadNetwork) -> Self {
        Self::build_with_threads(g, parallel::num_threads())
    }

    /// Single-threaded [`SpqIndex::build_with_threads`] — the reference
    /// order the chunk-ordered parallel merge reproduces.
    pub fn build_serial(g: &RoadNetwork) -> Self {
        Self::build_with_threads(g, 1)
    }

    /// Builds the index with an explicit worker count. Bit-identical to
    /// [`SpqIndex::build_serial`] for every `threads` (chunk-ordered
    /// merge) and to [`SpqIndex::build_reference`] (shared tie rule and
    /// template/recursive tree equivalence).
    ///
    /// The per-worker workspace is heap-driven on purpose: its settle
    /// order — and therefore its shortest-path-tie parents, which the
    /// colors inherit — is identical to `dijkstra_full`'s, the tie rule
    /// documented in [`spair_roadnet::first_hop`].
    pub fn build_with_threads(g: &RoadNetwork, threads: usize) -> Self {
        let start = Instant::now();
        let bbox = g.bounding_box();
        let template = QuadTemplate::build(g);
        let roots: Vec<NodeId> = g.node_ids().collect();
        let trees = parallel::map_reduce_chunked(
            &roots,
            threads,
            2,
            || RootScratch {
                ws: DijkstraWorkspace::new(g.num_nodes()),
                colors: vec![NO_COLOR; g.num_nodes()],
            },
            Vec::new,
            |scratch, partial: &mut Vec<Quadtree>, chunk, _| {
                for &v in chunk {
                    scratch.ws.run(g, v, Direction::Forward);
                    first_hops_from_workspace(g, &scratch.ws, &mut scratch.colors);
                    partial.push(template.colored_tree(g, &scratch.colors, v));
                }
            },
            |a, b| a.extend(b),
        )
        .unwrap_or_default();
        Self {
            trees,
            bbox,
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// The naive builder: a fresh full Dijkstra and a recursive
    /// [`build_tree`] per root. Quadratic allocations and re-bucketing —
    /// kept (and exercised by the test battery) as the differential
    /// oracle the fast path must match tree-for-tree.
    pub fn build_reference(g: &RoadNetwork) -> Self {
        let start = Instant::now();
        let bbox = g.bounding_box();
        let mut trees = Vec::with_capacity(g.num_nodes());
        let mut colors = vec![NO_COLOR; g.num_nodes()];
        let mut points = Vec::with_capacity(g.num_nodes().saturating_sub(1));
        for v in g.node_ids() {
            let tree = dijkstra_full(g, v);
            first_hops_from_tree(g, &tree, &mut colors);
            points.clear();
            points.extend(
                g.node_ids()
                    .filter(|&u| u != v)
                    .map(|u| (g.point(u), colors[u as usize])),
            );
            trees.push(build_tree(&points, bbox, 0));
        }
        Self {
            trees,
            bbox,
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Whether two indexes hold bit-identical trees over the same
    /// bounding box (the `same_tables` of the SPQ build: the parallel
    /// fan-out and the template walk must not change a single block).
    pub fn same_trees(&self, other: &Self) -> bool {
        self.bbox == other.bbox && self.trees == other.trees
    }

    /// The colored quadtree of node `v`.
    pub fn tree(&self, v: NodeId) -> &Quadtree {
        &self.trees[v as usize]
    }

    /// Total quadtree blocks.
    pub fn total_blocks(&self) -> usize {
        self.trees.iter().map(Quadtree::blocks).sum()
    }

    /// Index size in bytes (2 bytes per block: path-encoded quadrant +
    /// color, the compact representation of the original paper).
    pub fn index_bytes(&self) -> usize {
        self.total_blocks() * 2
    }

    /// Index size in broadcast packets.
    pub fn index_packets(&self) -> usize {
        self.index_bytes()
            .div_ceil(spair_broadcast::packet::PAYLOAD_CAPACITY)
    }

    /// Point-to-point query by repeated quadtree lookups. Returns the
    /// traversed path (including both endpoints).
    pub fn query(&self, g: &RoadNetwork, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![s];
        let mut cur = s;
        for _ in 0..g.num_nodes() {
            if cur == t {
                return Some(path);
            }
            let color = self.trees[cur as usize].color_at(g.point(t), self.bbox);
            if color == NO_COLOR {
                return None;
            }
            let next = g.out_edges(cur).nth(color as usize)?.0;
            path.push(next);
            cur = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::dijkstra_to_target;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::{Distance, GraphBuilder};

    #[test]
    fn query_paths_are_shortest() {
        let g = small_grid(6, 6, 5);
        let idx = SpqIndex::build(&g);
        for &(s, t) in &[(0u32, 35u32), (5, 30), (17, 18)] {
            let path = idx.query(&g, s, t).unwrap();
            let mut acc: Distance = 0;
            for w in path.windows(2) {
                acc += g.weight_between(w[0], w[1]).unwrap() as Distance;
            }
            let (want, _) = dijkstra_to_target(&g, s, t).unwrap();
            assert_eq!(acc, want, "{s}->{t}");
        }
    }

    #[test]
    fn trivial_query() {
        let g = small_grid(4, 4, 1);
        let idx = SpqIndex::build(&g);
        assert_eq!(idx.query(&g, 3, 3), Some(vec![3]));
    }

    #[test]
    fn block_count_is_positive_and_large() {
        let g = small_grid(8, 8, 2);
        let idx = SpqIndex::build(&g);
        // One tree per node, each with at least one block.
        assert!(idx.total_blocks() >= g.num_nodes());
        assert_eq!(idx.index_bytes(), idx.total_blocks() * 2);
    }

    #[test]
    fn index_dwarfs_network_data() {
        // Table 1's qualitative point for SPQ.
        let g = small_grid(10, 10, 3);
        let idx = SpqIndex::build(&g);
        let network_bytes = g.num_edges() * 8 + g.num_nodes() * 12;
        assert!(idx.index_bytes() > network_bytes);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        let idx = SpqIndex::build(&g);
        assert_eq!(idx.query(&g, 0, 1), None);
    }

    #[test]
    fn template_build_matches_reference_on_grids() {
        for seed in [1u64, 7, 23] {
            let g = small_grid(7, 7, seed);
            let fast = SpqIndex::build_serial(&g);
            let slow = SpqIndex::build_reference(&g);
            assert!(fast.same_trees(&slow), "seed {seed}");
            assert_eq!(fast.total_blocks(), slow.total_blocks());
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let g = small_grid(8, 8, 11);
        let serial = SpqIndex::build_serial(&g);
        for threads in [2usize, 3, 4] {
            let par = SpqIndex::build_with_threads(&g, threads);
            assert!(serial.same_trees(&par), "threads {threads}");
        }
    }

    // ---- quadtree shape battery -----------------------------------------

    /// True if any node of the tree is a `Mixed` leaf.
    fn has_mixed(t: &Quadtree) -> bool {
        match t {
            Quadtree::Leaf(_) => false,
            Quadtree::Mixed(_) => true,
            Quadtree::Internal(ch) => ch.iter().any(has_mixed),
        }
    }

    /// Brute-force comparator: every listed point must resolve to the
    /// color of the first list entry at its exact coordinate.
    fn assert_colors_match_scan(tree: &Quadtree, points: &[(Point, Color)], bbox: (Point, Point)) {
        for &(p, _) in points {
            let want = points
                .iter()
                .find(|(q, _)| q.x == p.x && q.y == p.y)
                .map(|&(_, c)| c)
                .unwrap();
            assert_eq!(tree.color_at(p, bbox), want, "point ({}, {})", p.x, p.y);
        }
    }

    #[test]
    fn depth_cap_produces_mixed_leaf() {
        // Two points 1e-7 apart inside a unit bbox stay in one quadrant
        // for > MAX_DEPTH halvings: the cap must bail to Mixed, and the
        // lookup must still resolve both exactly.
        let bbox = (Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let points = vec![(Point::new(0.0, 0.0), 1), (Point::new(1e-7, 0.0), 2)];
        let tree = build_tree(&points, bbox, 0);
        assert!(has_mixed(&tree), "depth cap must produce a Mixed leaf");
        assert_colors_match_scan(&tree, &points, bbox);
    }

    #[test]
    fn degenerate_single_quadrant_recurses_on_distinct_coordinates() {
        // Regression for the over-eager degenerate-split bail: both
        // points land in the SW quadrant of the (non-tight) unit bbox,
        // but they are distinct and two further splits separate them.
        // The old check returned Mixed immediately.
        let bbox = (Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let points = vec![(Point::new(0.1, 0.1), 3), (Point::new(0.2, 0.2), 4)];
        let tree = build_tree(&points, bbox, 0);
        assert!(
            !has_mixed(&tree),
            "distinct coordinates must separate into leaves, got {tree:?}"
        );
        assert_colors_match_scan(&tree, &points, bbox);
    }

    #[test]
    fn duplicate_coordinates_bail_to_mixed_with_first_match_lookup() {
        let bbox = (Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let points = vec![
            (Point::new(0.5, 0.5), 1),
            (Point::new(0.5, 0.5), 2),
            (Point::new(0.5, 0.5), 3),
        ];
        let tree = build_tree(&points, bbox, 0);
        assert_eq!(tree, Quadtree::Mixed(points.clone()));
        // First-match semantics of the Mixed scan.
        assert_eq!(tree.color_at(Point::new(0.5, 0.5), bbox), 1);
        assert_eq!(tree.color_at(Point::new(0.4, 0.5), bbox), NO_COLOR);
    }

    #[test]
    fn collinear_points_separate_into_leaves() {
        let bbox = (Point::new(0.0, 0.0), Point::new(7.0, 0.0));
        let points: Vec<(Point, Color)> = (0..8)
            .map(|i| (Point::new(i as f64, 0.0), (i % 3) as Color))
            .collect();
        let tree = build_tree(&points, bbox, 0);
        assert!(!has_mixed(&tree), "collinear distinct points separate");
        assert_colors_match_scan(&tree, &points, bbox);
    }

    #[test]
    fn template_matches_reference_with_duplicate_coordinates() {
        // Two nodes at the same coordinate (and a third elsewhere): both
        // builders must agree on the Mixed bail and the root exclusion.
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 1.0));
        b.add_undirected_edge(0, 2, 1);
        b.add_undirected_edge(1, 2, 3);
        b.add_undirected_edge(0, 1, 5);
        let g = b.finish();
        let fast = SpqIndex::build_serial(&g);
        let slow = SpqIndex::build_reference(&g);
        assert!(fast.same_trees(&slow));
        for (s, t) in [(0u32, 2u32), (2, 0), (1, 2)] {
            let path = fast.query(&g, s, t).unwrap();
            assert_eq!(path.first(), Some(&s));
            assert_eq!(path.last(), Some(&t));
        }
    }

    #[test]
    fn single_node_graph_has_an_empty_leaf() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        let g = b.finish();
        let idx = SpqIndex::build(&g);
        assert_eq!(idx.tree(0), &Quadtree::Leaf(NO_COLOR));
    }
}
