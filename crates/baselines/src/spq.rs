//! SPQ — the shortest-path quadtree of Samet, Sankaranarayanan & Alborzi
//! (SIGMOD 2008; paper §2.1).
//!
//! For every node `v`, all other nodes are colored by the incident edge of
//! `v` their shortest path leaves through; a region quadtree over the
//! node coordinates coalesces same-colored areas. A query walks: look up
//! `v_t`'s color in `v_s`'s quadtree, follow that edge, repeat from the
//! next node until `v_t` is reached.
//!
//! As with HiTi, the paper keeps SPQ out of the per-query broadcast
//! experiments: storing one quadtree per node multiplies the cycle length
//! (Table 1: 52 337 packets versus Dijkstra's 14 019 on Germany) and the
//! client would have to hold all trees on the path. Building is also the
//! costliest of all methods (one full Dijkstra per node), so full-scale
//! builds are reserved for `--full` experiment runs.

use spair_roadnet::dijkstra::dijkstra_full;
use spair_roadnet::{NodeId, Point, RoadNetwork};
use std::time::Instant;

/// Color = index of the first edge out of the root node (255 = none).
pub type Color = u8;

/// No-path marker.
pub const NO_COLOR: Color = u8::MAX;

/// A region quadtree over node coordinates with per-leaf colors.
#[derive(Debug, Clone)]
pub enum Quadtree {
    /// All points below share one color.
    Leaf(Color),
    /// Four children (quadrant order: SW, SE, NW, NE).
    Internal(Box<[Quadtree; 4]>),
    /// Depth-capped mixed leaf: explicit `(point, color)` list.
    Mixed(Vec<(Point, Color)>),
}

impl Quadtree {
    /// Number of tree blocks (nodes), the size measure of the paper.
    pub fn blocks(&self) -> usize {
        match self {
            Quadtree::Leaf(_) => 1,
            Quadtree::Mixed(pts) => 1 + pts.len(),
            Quadtree::Internal(ch) => 1 + ch.iter().map(Quadtree::blocks).sum::<usize>(),
        }
    }

    /// Color lookup for an exact node coordinate.
    pub fn color_at(&self, p: Point, bbox: (Point, Point)) -> Color {
        match self {
            Quadtree::Leaf(c) => *c,
            Quadtree::Mixed(pts) => pts
                .iter()
                .find(|(q, _)| q.x == p.x && q.y == p.y)
                .map(|(_, c)| *c)
                .unwrap_or(NO_COLOR),
            Quadtree::Internal(ch) => {
                let (min, max) = bbox;
                let mid = Point::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
                let (qi, sub) = quadrant(p, min, mid, max);
                ch[qi].color_at(p, sub)
            }
        }
    }
}

fn quadrant(p: Point, min: Point, mid: Point, max: Point) -> (usize, (Point, Point)) {
    let east = p.x >= mid.x;
    let north = p.y >= mid.y;
    let idx = usize::from(north) * 2 + usize::from(east);
    let sub = (
        Point::new(
            if east { mid.x } else { min.x },
            if north { mid.y } else { min.y },
        ),
        Point::new(
            if east { max.x } else { mid.x },
            if north { max.y } else { mid.y },
        ),
    );
    (idx, sub)
}

const MAX_DEPTH: usize = 20;

fn build_tree(points: &[(Point, Color)], bbox: (Point, Point), depth: usize) -> Quadtree {
    if points.is_empty() {
        return Quadtree::Leaf(NO_COLOR);
    }
    let first = points[0].1;
    if points.iter().all(|&(_, c)| c == first) {
        return Quadtree::Leaf(first);
    }
    if depth >= MAX_DEPTH {
        return Quadtree::Mixed(points.to_vec());
    }
    let (min, max) = bbox;
    let mid = Point::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
    let mut buckets: [Vec<(Point, Color)>; 4] = Default::default();
    let mut boxes = [bbox; 4];
    for &(p, c) in points {
        let (qi, sub) = quadrant(p, min, mid, max);
        buckets[qi].push((p, c));
        boxes[qi] = sub;
    }
    // Degenerate: all points landed in one child without progress.
    if buckets.iter().filter(|b| !b.is_empty()).count() == 1 {
        return Quadtree::Mixed(points.to_vec());
    }
    let children: Vec<Quadtree> = buckets
        .iter()
        .zip(boxes.iter())
        .map(|(b, &bx)| build_tree(b, bx, depth + 1))
        .collect();
    Quadtree::Internal(Box::new(
        children.try_into().expect("exactly four children"),
    ))
}

/// The SPQ index: one colored quadtree per node.
#[derive(Debug, Clone)]
pub struct SpqIndex {
    trees: Vec<Quadtree>,
    bbox: (Point, Point),
    /// Build wall-clock.
    pub precompute_secs: f64,
}

impl SpqIndex {
    /// Builds all quadtrees (one full Dijkstra per node — expensive by
    /// design; this is the method's documented weakness).
    pub fn build(g: &RoadNetwork) -> Self {
        let start = Instant::now();
        let bbox = g.bounding_box();
        let mut trees = Vec::with_capacity(g.num_nodes());
        let mut colors = vec![NO_COLOR; g.num_nodes()];
        for v in g.node_ids() {
            let tree = dijkstra_full(g, v);
            // First-hop DP over the settle order.
            let first_edges: Vec<NodeId> = g.out_edges(v).map(|(u, _)| u).collect();
            for &u in tree.settle_order() {
                colors[u as usize] = if u == v {
                    NO_COLOR
                } else {
                    match tree.parent(u) {
                        Some(p) if p == v => first_edges
                            .iter()
                            .position(|&x| x == u)
                            .map(|i| i as Color)
                            .unwrap_or(NO_COLOR),
                        Some(p) => colors[p as usize],
                        None => NO_COLOR,
                    }
                };
            }
            let points: Vec<(Point, Color)> = g
                .node_ids()
                .filter(|&u| u != v)
                .map(|u| (g.point(u), colors[u as usize]))
                .collect();
            trees.push(build_tree(&points, bbox, 0));
            // Reset colors for unreached nodes next round.
            for c in colors.iter_mut() {
                *c = NO_COLOR;
            }
        }
        Self {
            trees,
            bbox,
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// The colored quadtree of node `v`.
    pub fn tree(&self, v: NodeId) -> &Quadtree {
        &self.trees[v as usize]
    }

    /// Total quadtree blocks.
    pub fn total_blocks(&self) -> usize {
        self.trees.iter().map(Quadtree::blocks).sum()
    }

    /// Index size in bytes (2 bytes per block: path-encoded quadrant +
    /// color, the compact representation of the original paper).
    pub fn index_bytes(&self) -> usize {
        self.total_blocks() * 2
    }

    /// Index size in broadcast packets.
    pub fn index_packets(&self) -> usize {
        self.index_bytes()
            .div_ceil(spair_broadcast::packet::PAYLOAD_CAPACITY)
    }

    /// Point-to-point query by repeated quadtree lookups. Returns the
    /// traversed path (including both endpoints).
    pub fn query(&self, g: &RoadNetwork, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![s];
        let mut cur = s;
        for _ in 0..g.num_nodes() {
            if cur == t {
                return Some(path);
            }
            let color = self.trees[cur as usize].color_at(g.point(t), self.bbox);
            if color == NO_COLOR {
                return None;
            }
            let next = g.out_edges(cur).nth(color as usize)?.0;
            path.push(next);
            cur = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::dijkstra_to_target;
    use spair_roadnet::generators::small_grid;
    use spair_roadnet::Distance;

    #[test]
    fn query_paths_are_shortest() {
        let g = small_grid(6, 6, 5);
        let idx = SpqIndex::build(&g);
        for &(s, t) in &[(0u32, 35u32), (5, 30), (17, 18)] {
            let path = idx.query(&g, s, t).unwrap();
            let mut acc: Distance = 0;
            for w in path.windows(2) {
                acc += g.weight_between(w[0], w[1]).unwrap() as Distance;
            }
            let (want, _) = dijkstra_to_target(&g, s, t).unwrap();
            assert_eq!(acc, want, "{s}->{t}");
        }
    }

    #[test]
    fn trivial_query() {
        let g = small_grid(4, 4, 1);
        let idx = SpqIndex::build(&g);
        assert_eq!(idx.query(&g, 3, 3), Some(vec![3]));
    }

    #[test]
    fn block_count_is_positive_and_large() {
        let g = small_grid(8, 8, 2);
        let idx = SpqIndex::build(&g);
        // One tree per node, each with at least one block.
        assert!(idx.total_blocks() >= g.num_nodes());
        assert_eq!(idx.index_bytes(), idx.total_blocks() * 2);
    }

    #[test]
    fn index_dwarfs_network_data() {
        // Table 1's qualitative point for SPQ.
        let g = small_grid(10, 10, 3);
        let idx = SpqIndex::build(&g);
        let network_bytes = g.num_edges() * 8 + g.num_nodes() * 12;
        assert!(idx.index_bytes() > network_bytes);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = spair_roadnet::GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let g = b.finish();
        let idx = SpqIndex::build(&g);
        assert_eq!(idx.query(&g, 0, 1), None);
    }
}
