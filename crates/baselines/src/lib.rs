//! Broadcast adaptations of classical shortest-path methods (paper §2.1,
//! §3.2) — the competitors EB and NR are evaluated against.
//!
//! * [`dj`] — Dijkstra on air: the shortest possible cycle (network data
//!   only); the client listens to the *entire* cycle and searches locally.
//! * [`arcflag`] — ArcFlag: per-edge region bit vectors restrict the
//!   client's search, but the whole cycle (data + flags) must be received.
//! * [`landmark`] — Landmark (ALT): per-node distance vectors to a few
//!   anchor nodes provide A* lower bounds; again whole-cycle reception.
//! * [`hiti`] — HiTi: hierarchical grids with precomputed border-pair
//!   shortest paths. Its index is several times the network itself
//!   (Table 1), which is exactly why the paper excludes it from the
//!   per-query experiments: it cannot fit the 8 MB device heap. The
//!   builder and a (local) exact query are implemented for the size and
//!   applicability experiments.
//! * [`spq`] — the shortest-path quadtree of Samet et al.: per-node
//!   colored quadtrees over first-edge colors; also excluded from
//!   per-query runs for its size.
//!
//! §3.2's verdict, reproduced by these implementations: none of the
//! pre-computation methods can selectively tune (the next node to visit
//! may already have been broadcast), so their clients fall back to
//! whole-cycle reception, paying in tuning time and client memory. That
//! failure mode is what motivates EB and NR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arcflag;
pub mod dj;
pub mod hiti;
pub mod hiti_air;
pub mod landmark;
pub mod spq;
pub mod spq_air;

pub use arcflag::{ArcFlagClient, ArcFlagProgram, ArcFlagServer};
pub use dj::{DjClient, DjProgram, DjServer};
pub use hiti::HiTiIndex;
pub use hiti_air::{HiTiAirClient, HiTiAirServer, HiTiProgram};
pub use landmark::{LandmarkClient, LandmarkProgram, LandmarkServer};
pub use spq::SpqIndex;
pub use spq_air::{SpqAirServer, SpqClient, SpqProgram};
