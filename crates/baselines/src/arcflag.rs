//! ArcFlag on air (paper §2.1, §3.2).
//!
//! Server: partition the nodes (kd-tree, as fine-tuned in the paper), and
//! give every directed edge a bit vector with one bit per region: bit `R`
//! is set iff the edge lies on some shortest path ending in region `R`
//! (computed by one backward Dijkstra per border node of `R`; an edge
//! `(u,v)` is on a shortest path towards border `b` iff
//! `d(u→b) = w(u,v) + d(v→b)`, which marks the whole shortest-path DAG and
//! therefore covers ties). Intra-target edges are flagged for their own
//! region.
//!
//! Client: selective tuning is impossible (§3.2), so the whole cycle —
//! adjacency data *and* flags — is received; the flags then prune the
//! local Dijkstra to edges whose bit for `Rt`'s region is set. Flags ride
//! in separate Aux packets so a lost flag packet degrades to "all bits
//! set" for those edges (§6.2) instead of corrupting adjacency data.

use spair_broadcast::codec::{u16_of, EncodeError, PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{
    BroadcastChannel, BroadcastCycle, CpuMeter, CycleBuilder, MemoryMeter, QueryStats,
};
use spair_core::netcodec::{decode_payload, encode_nodes, ReceivedGraph};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_partition::{BorderInfo, KdLocator, KdTreePartition, Partitioning, RegionId};
use spair_roadnet::dijkstra::{DijkstraWorkspace, Direction};
use spair_roadnet::parallel;
use spair_roadnet::{Distance, MinHeap, NodeId, RoadNetwork, DIST_INF};
use std::collections::HashMap;
use std::time::Instant;

const AUX_MAGIC: u8 = 0xAF;
const SPLITS_MAGIC: u8 = 0x5F;

/// Server-side ArcFlag computation.
#[derive(Debug, Clone)]
pub struct ArcFlagIndex {
    /// Words per edge flag vector.
    words: usize,
    /// Flags, row-major by dense forward edge id.
    flags: Vec<u64>,
    /// Number of regions.
    pub num_regions: usize,
    /// Build wall-clock (Table 3).
    pub precompute_secs: f64,
}

impl ArcFlagIndex {
    /// Builds flags with one backward Dijkstra per border node, fanned
    /// out across [`parallel::num_threads`] workers.
    pub fn build(g: &RoadNetwork, part: &KdTreePartition) -> Self {
        Self::build_with_threads(g, part, parallel::num_threads())
    }

    /// Builds on an explicit number of worker threads. Flag bits depend
    /// only on exact distances (never on tie-broken parents), and
    /// per-source contributions merge by bitwise or, so the index is
    /// identical for every thread count.
    pub fn build_with_threads(g: &RoadNetwork, part: &KdTreePartition, threads: usize) -> Self {
        let start = Instant::now();
        let n = part.num_regions();
        let words = n.div_ceil(64);
        let m = g.num_edges();
        let mut flags = vec![0u64; m * words];

        // Intra-target flags: edge (u,v) gets the bit of region(v).
        for u in g.node_ids() {
            for (e, _) in g.out_edge_ids(u).zip(0u32..) {
                let v = g.edge_target(e);
                let r = part.region_of(v) as usize;
                flags[e as usize * words + r / 64] |= 1 << (r % 64);
            }
        }

        let borders = BorderInfo::compute(g, part);
        let merged = parallel::map_reduce_chunked(
            borders.all(),
            threads,
            4,
            || DijkstraWorkspace::new(g.num_nodes()),
            || vec![0u64; m * words],
            |ws, partial: &mut Vec<u64>, sources, _base| {
                for &b in sources {
                    let rb = part.region_of(b) as usize;
                    // An edge (u,v) lies on a shortest path towards b
                    // iff d(u→b) = w(u,v) + d(v→b) — marks the whole
                    // shortest-path DAG, covering ties.
                    ws.run(g, b, Direction::Reverse); // d(x -> b)
                    for u in g.node_ids() {
                        let du = ws.distance(u);
                        if du == DIST_INF {
                            continue;
                        }
                        for e in g.out_edge_ids(u) {
                            let v = g.edge_target(e);
                            let dv = ws.distance(v);
                            if dv != DIST_INF && du == dv + g.edge_weight(e) as Distance {
                                partial[e as usize * words + rb / 64] |= 1 << (rb % 64);
                            }
                        }
                    }
                }
            },
            |acc, p| {
                for (a, b) in acc.iter_mut().zip(&p) {
                    *a |= b;
                }
            },
        );
        if let Some(partial) = merged {
            for (a, b) in flags.iter_mut().zip(&partial) {
                *a |= b;
            }
        }

        Self {
            words,
            flags,
            num_regions: n,
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Whether edge `e`'s bit for region `r` is set.
    pub fn flag(&self, e: u32, r: RegionId) -> bool {
        (self.flags[e as usize * self.words + r as usize / 64] >> (r as usize % 64)) & 1 == 1
    }

    /// Bit-identity certificate: same flag words, word for word (build
    /// timing excluded).
    pub fn same_flags(&self, other: &Self) -> bool {
        self.words == other.words
            && self.num_regions == other.num_regions
            && self.flags == other.flags
    }
}

/// The ArcFlag broadcast program.
#[derive(Debug)]
pub struct ArcFlagProgram {
    cycle: BroadcastCycle,
    num_regions: usize,
}

impl ArcFlagProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }
}

/// ArcFlag server.
pub struct ArcFlagServer<'a> {
    g: &'a RoadNetwork,
    part: &'a KdTreePartition,
    index: &'a ArcFlagIndex,
}

impl<'a> ArcFlagServer<'a> {
    /// Binds the server to its inputs.
    pub fn new(g: &'a RoadNetwork, part: &'a KdTreePartition, index: &'a ArcFlagIndex) -> Self {
        assert_eq!(part.num_regions(), index.num_regions);
        Self { g, part, index }
    }

    /// Assembles the cycle: kd splits, adjacency data, then flag vectors.
    /// Fails with a typed [`EncodeError`] when the partition exceeds a
    /// wire field of the splits format (instead of silently truncating).
    pub fn build_program(&self) -> Result<ArcFlagProgram, EncodeError> {
        let n = self.part.num_regions();
        let flag_bytes = n.div_ceil(8);
        let nodes: Vec<NodeId> = self.g.node_ids().collect();
        let mut b = CycleBuilder::new();

        // Tiny global index: the kd splitting values, so the client can
        // map the target to its region.
        let mut w = RecordWriter::new();
        let mut rec = RecordBuf::new();
        // Full f64 splits: kd split values are exact node coordinates and
        // the locator compares `>=`, so narrowing could flip the target's
        // region and unsoundly prune flagged edges.
        for (ci, chunk) in self.part.splits().chunks(12).enumerate() {
            rec.clear();
            rec.put_u8(SPLITS_MAGIC)
                .put_u16(u16_of(ci * 12, "arcflag splits chunk start")?)
                .put_u16(u16_of(self.part.splits().len(), "arcflag splits count")?)
                .put_u8(chunk.len() as u8);
            for &s in chunk {
                rec.put_f64(s);
            }
            w.push_record(rec.as_slice());
        }
        b.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, w.finish());

        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            encode_nodes(self.g, &nodes),
        );

        // Flags: per node, (target, flagbytes) pairs keyed by edge target
        // so loss-recovery reordering cannot misalign them.
        let mut w = RecordWriter::new();
        for u in self.g.node_ids() {
            let edges: Vec<u32> = self.g.out_edge_ids(u).collect();
            for chunk in edges.chunks(10) {
                rec.clear();
                rec.put_u8(AUX_MAGIC).put_u32(u).put_u8(chunk.len() as u8);
                for &e in chunk {
                    rec.put_u32(self.g.edge_target(e));
                    for byte in 0..flag_bytes {
                        let mut v = 0u8;
                        for bit in 0..8 {
                            let r = byte * 8 + bit;
                            if r < n && self.index.flag(e, r as RegionId) {
                                v |= 1 << bit;
                            }
                        }
                        rec.put_u8(v);
                    }
                }
                w.push_record(rec.as_slice());
            }
        }
        b.push_segment(SegmentKind::AuxData, PacketKind::Aux, w.finish());

        Ok(ArcFlagProgram {
            cycle: b.finish(),
            num_regions: n,
        })
    }
}

/// Decodes one flag payload into `(from, to, flagbytes)` entries.
fn decode_flags(payload: &[u8], flag_bytes: usize) -> Option<Vec<(NodeId, NodeId, Vec<u8>)>> {
    let mut r = PayloadReader::new(payload);
    let mut out = Vec::new();
    while !r.is_empty() {
        if r.read_u8()? != AUX_MAGIC {
            return None;
        }
        let u = r.read_u32()?;
        let count = r.read_u8()? as usize;
        for _ in 0..count {
            let v = r.read_u32()?;
            let mut bytes = Vec::with_capacity(flag_bytes);
            for _ in 0..flag_bytes {
                bytes.push(r.read_u8()?);
            }
            out.push((u, v, bytes));
        }
    }
    Some(out)
}

fn decode_splits(payload: &[u8], splits: &mut Vec<Option<f64>>) -> bool {
    let mut r = PayloadReader::new(payload);
    while !r.is_empty() {
        let Some(SPLITS_MAGIC) = r.read_u8() else {
            return false;
        };
        let (Some(start), Some(total), Some(count)) = (r.read_u16(), r.read_u16(), r.read_u8())
        else {
            return false;
        };
        if splits.is_empty() {
            splits.resize(total as usize, None);
        }
        for k in 0..count as usize {
            let Some(v) = r.read_f64() else { return false };
            if let Some(slot) = splits.get_mut(start as usize + k) {
                *slot = Some(v);
            }
        }
    }
    true
}

/// The ArcFlag client.
#[derive(Debug, Clone)]
pub struct ArcFlagClient {
    num_regions: usize,
}

impl ArcFlagClient {
    /// New client for a program with `num_regions` regions.
    pub fn new(num_regions: usize) -> Self {
        Self { num_regions }
    }
}

impl AirClient for ArcFlagClient {
    fn method_name(&self) -> &'static str {
        "ArcFlag"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }
        let flag_bytes = self.num_regions.div_ceil(8);
        let mut store = ReceivedGraph::new();
        let mut flags: HashMap<(NodeId, NodeId), Vec<u8>> = HashMap::new();
        let mut splits: Vec<Option<f64>> = Vec::new();
        crate::dj::receive_whole_cycle(ch, &mut mem, |kind, payload, mem| match kind {
            PacketKind::Data => {
                if let Some(records) = decode_payload(payload) {
                    for rec in records {
                        mem.alloc(store.ingest(rec));
                    }
                }
            }
            PacketKind::Aux => {
                if let Some(entries) = decode_flags(payload, flag_bytes) {
                    for (u, v, bytes) in entries {
                        mem.alloc(16 + bytes.len());
                        flags.insert((u, v), bytes);
                    }
                }
            }
            PacketKind::Index => {
                decode_splits(payload, &mut splits);
            }
            _ => {}
        })?;

        // Region of the target (lost splits => no pruning at all, the
        // all-flags-set degradation of §6.2).
        let rt: Option<RegionId> = splits
            .iter()
            .copied()
            .collect::<Option<Vec<f64>>>()
            .map(|s| KdLocator::from_splits(s).locate(q.target_pt));

        let allowed = |u: NodeId, v: NodeId| -> bool {
            let Some(rt) = rt else { return true };
            match flags.get(&(u, v)) {
                Some(bytes) => (bytes[rt as usize / 8] >> (rt as usize % 8)) & 1 == 1,
                None => true, // lost flags: assume all bits set (§6.2)
            }
        };

        mem.alloc(store.num_nodes() * 24);
        let (res, settled) = cpu.time(|| {
            // Flag-pruned Dijkstra over the received store.
            let mut dist: HashMap<NodeId, Distance> = HashMap::new();
            let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
            let mut heap = MinHeap::new();
            let mut settled = 0usize;
            dist.insert(q.source, 0);
            heap.push(0, q.source);
            while let Some(e) = heap.pop() {
                let v = e.item;
                if dist.get(&v) != Some(&e.key) {
                    continue;
                }
                settled += 1;
                if v == q.target {
                    let mut path = vec![v];
                    let mut cur = v;
                    while let Some(&p) = parent.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return (Some((e.key, path)), settled);
                }
                for &(u, w) in store.out_edges(v) {
                    if !allowed(v, u) {
                        continue;
                    }
                    let cand = e.key + w as Distance;
                    if dist.get(&u).is_none_or(|&d| cand < d) {
                        dist.insert(u, cand);
                        parent.insert(u, v);
                        heap.push(cand, u);
                    }
                }
            }
            (None, settled)
        });
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::LossModel;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    fn setup(seed: u64, regions: usize) -> (RoadNetwork, ArcFlagProgram) {
        let g = small_grid(9, 9, seed);
        let part = KdTreePartition::build(&g, regions);
        let index = ArcFlagIndex::build(&g, &part);
        let program = ArcFlagServer::new(&g, &part, &index)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn flags_preserve_shortest_distances() {
        let g = small_grid(8, 8, 1);
        let part = KdTreePartition::build(&g, 8);
        let index = ArcFlagIndex::build(&g, &part);
        // Pruned search on the raw graph must match plain Dijkstra.
        for &(s, t) in &[(0u32, 63u32), (7, 56), (20, 43)] {
            let rt = part.region_of(t);
            let mut dist = vec![DIST_INF; g.num_nodes()];
            let mut heap = MinHeap::new();
            dist[s as usize] = 0;
            heap.push(0, s);
            while let Some(e) = heap.pop() {
                let v = e.item;
                if e.key != dist[v as usize] {
                    continue;
                }
                for eid in g.out_edge_ids(v) {
                    if !index.flag(eid, rt) {
                        continue;
                    }
                    let u = g.edge_target(eid);
                    let cand = e.key + g.edge_weight(eid) as Distance;
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                        heap.push(cand, u);
                    }
                }
            }
            assert_eq!(Some(dist[t as usize]), dijkstra_distance(&g, s, t));
        }
    }

    #[test]
    fn build_is_identical_across_thread_counts() {
        let g = small_grid(8, 8, 7);
        let part = KdTreePartition::build(&g, 8);
        let one = ArcFlagIndex::build_with_threads(&g, &part, 1);
        for t in [2, 4, 7] {
            let multi = ArcFlagIndex::build_with_threads(&g, &part, t);
            assert_eq!(one.flags, multi.flags, "threads={t}");
        }
    }

    #[test]
    fn client_matches_dijkstra() {
        let (g, program) = setup(2, 8);
        let mut client = ArcFlagClient::new(8);
        for &(s, t) in &[(0u32, 80u32), (9, 45), (77, 3)] {
            let mut ch = BroadcastChannel::lossless(program.cycle());
            let out = client.query(&mut ch, &Query::for_nodes(&g, s, t)).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t));
        }
    }

    #[test]
    fn pruning_settles_fewer_nodes_than_dj() {
        let (g, program) = setup(3, 16);
        let dj_program = crate::dj::DjServer::new(&g).build_program();
        let q = Query::for_nodes(&g, 0, 80);
        let mut af = ArcFlagClient::new(16);
        let mut dj = crate::dj::DjClient::new();
        let mut ch1 = BroadcastChannel::lossless(program.cycle());
        let mut ch2 = BroadcastChannel::lossless(dj_program.cycle());
        let a = af.query(&mut ch1, &q).unwrap();
        let b = dj.query(&mut ch2, &q).unwrap();
        assert_eq!(a.distance, b.distance);
        assert!(a.stats.settled_nodes <= b.stats.settled_nodes);
    }

    #[test]
    fn cycle_much_longer_than_dj() {
        let (g, program) = setup(4, 16);
        let dj = crate::dj::DjServer::new(&g).build_program();
        // Paper Table 1: ArcFlag's cycle is roughly twice Dijkstra's.
        assert!(program.cycle().len() as f64 > dj.cycle().len() as f64 * 1.3);
    }

    #[test]
    fn correct_under_loss() {
        let (g, program) = setup(5, 8);
        let mut client = ArcFlagClient::new(8);
        let q = Query::for_nodes(&g, 4, 76);
        for seed in 0..3 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 11, LossModel::bernoulli(0.1, seed));
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, 4, 76));
        }
    }

    /// Decoder panic audit: every payload — random, truncated, or
    /// bit-flipped — must yield a typed reject or a partial decode,
    /// never a panic.
    mod panic_audit {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// Real cycle payloads (flag and split records), built once.
        fn real_payloads() -> &'static [Vec<u8>] {
            static PAYLOADS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
            PAYLOADS.get_or_init(|| {
                let (_, program) = setup(2, 8);
                let cycle = program.cycle();
                (0..cycle.len().min(48))
                    .map(|i| cycle.packet(i).payload().to_vec())
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            #[test]
            fn arbitrary_payloads_never_panic(
                payload in proptest::collection::vec(any::<u8>(), 0..200),
                flag_bytes in 0usize..9,
            ) {
                let _ = decode_flags(&payload, flag_bytes);
                let mut splits = Vec::new();
                let _ = decode_splits(&payload, &mut splits);
            }

            #[test]
            fn corrupted_real_payloads_never_panic(
                which in 0usize..48,
                cut in 0usize..256,
                bit in 0usize..(1 << 11),
            ) {
                let payloads = real_payloads();
                let payload = &payloads[which % payloads.len()];
                let truncated = &payload[..cut.min(payload.len())];
                let _ = decode_flags(truncated, 1);
                let mut splits = Vec::new();
                let _ = decode_splits(truncated, &mut splits);
                let mut flipped = payload.clone();
                let b = bit % (flipped.len() * 8);
                flipped[b / 8] ^= 1 << (b % 8);
                let _ = decode_flags(&flipped, 1);
                let mut splits = Vec::new();
                let _ = decode_splits(&flipped, &mut splits);
            }
        }
    }
}
