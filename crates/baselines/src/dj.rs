//! Dijkstra's algorithm on air (paper §3.2).
//!
//! No precomputation: the broadcast cycle is the raw network data and
//! nothing else — the shortest possible cycle. Selective tuning is
//! hopeless (the node Dijkstra wants next may have just been broadcast, so
//! waiting for it per-node costs up to one cycle per settled node), so the
//! client listens to the **whole** cycle from wherever it tuned in, stores
//! the entire network, and runs Dijkstra locally. Access latency never
//! exceeds one cycle; tuning time *is* the cycle; memory is the network.

use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{
    BroadcastChannel, BroadcastCycle, CpuMeter, CycleBuilder, MemoryMeter, QueryStats, Received,
};
use spair_core::client_common::MAX_RETRY_CYCLES;
use spair_core::netcodec::{encode_nodes, ReceivedGraph};
use spair_core::patch::{ClientArena, Coverage};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_roadnet::{NodeId, QueuePolicy, RoadNetwork};

/// The DJ broadcast program.
#[derive(Debug)]
pub struct DjProgram {
    cycle: BroadcastCycle,
}

impl DjProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }
}

/// DJ server: encodes the adjacency lists, nothing more.
pub struct DjServer<'a> {
    g: &'a RoadNetwork,
}

impl<'a> DjServer<'a> {
    /// Binds the server to the network.
    pub fn new(g: &'a RoadNetwork) -> Self {
        Self { g }
    }

    /// Assembles the cycle.
    pub fn build_program(&self) -> DjProgram {
        let nodes: Vec<NodeId> = self.g.node_ids().collect();
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            encode_nodes(self.g, &nodes),
        );
        DjProgram { cycle: b.finish() }
    }
}

/// Receives every packet of one full cycle starting now, handing each
/// payload to `on_payload`; lost packets are re-received in later cycles
/// (§6.2). Errors if the retry budget is exhausted. Shared by every
/// whole-cycle client (DJ here; the A*/bidirectional air methods reuse
/// it through `spair-methods`).
pub fn receive_whole_cycle(
    ch: &mut BroadcastChannel<'_>,
    mem: &mut MemoryMeter,
    mut on_payload: impl FnMut(PacketKind, &[u8], &mut MemoryMeter),
) -> Result<(), QueryError> {
    let len = ch.cycle_len();
    let mut missing: Vec<usize> = Vec::new();
    for _ in 0..len {
        let off = ch.offset();
        match ch.receive() {
            Received::Packet(p) => on_payload(p.kind(), p.payload(), mem),
            Received::Lost | Received::Corrupted => missing.push(off),
        }
    }
    let mut rounds = 0;
    while !missing.is_empty() {
        rounds += 1;
        if rounds > MAX_RETRY_CYCLES {
            return Err(QueryError::Aborted("whole-cycle reception never completed"));
        }
        missing.sort_by_key(|&off| (off + len - ch.offset()) % len);
        let mut still = Vec::new();
        for off in missing {
            ch.sleep_to_offset(off);
            match ch.receive() {
                Received::Packet(p) => on_payload(p.kind(), p.payload(), mem),
                Received::Lost | Received::Corrupted => still.push(off),
            }
        }
        missing = still;
    }
    Ok(())
}

/// The DJ client.
///
/// The client owns its received-network store and search scratch, reused
/// (via [`ReceivedGraph::clear`]) across queries — a long-lived client
/// serving many sessions allocates its decode/search buffers once.
#[derive(Debug, Clone, Default)]
pub struct DjClient {
    queue: QueuePolicy,
    store: ReceivedGraph,
}

impl DjClient {
    /// New client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the queue driving the client-side Dijkstra over the
    /// received network. Distances are identical under every policy.
    pub fn with_queue_policy(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }
}

impl AirClient for DjClient {
    fn method_name(&self) -> &'static str {
        "Dijkstra"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }
        let store = &mut self.store;
        store.clear();
        receive_whole_cycle(ch, &mut mem, |kind, payload, mem| {
            if kind == PacketKind::Data {
                if let Some(charged) = store.ingest_payload(payload) {
                    mem.alloc(charged);
                }
            }
        })?;
        mem.alloc(store.num_nodes() * 24);
        let queue = self.queue;
        let (res, settled) = cpu.time(|| store.shortest_path_with(q.source, q.target, queue));
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }

    fn export_arena(&mut self) -> Option<ClientArena> {
        Some(ClientArena {
            store: std::mem::take(&mut self.store),
            coverage: Coverage::Whole,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::LossModel;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn matches_reference_dijkstra() {
        let g = small_grid(10, 10, 4);
        let program = DjServer::new(&g).build_program();
        let mut client = DjClient::new();
        for &(s, t) in &[(0u32, 99u32), (5, 50), (98, 1)] {
            let mut ch = BroadcastChannel::lossless(program.cycle());
            let out = client.query(&mut ch, &Query::for_nodes(&g, s, t)).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t));
        }
    }

    #[test]
    fn tuning_time_is_exactly_one_cycle_lossless() {
        let g = small_grid(8, 8, 1);
        let program = DjServer::new(&g).build_program();
        let mut client = DjClient::new();
        let mut ch = BroadcastChannel::tune_in(program.cycle(), 13, LossModel::Lossless);
        let out = client.query(&mut ch, &Query::for_nodes(&g, 0, 63)).unwrap();
        assert_eq!(out.stats.tuning_packets as usize, program.cycle().len());
        assert_eq!(out.stats.latency_packets, out.stats.tuning_packets);
    }

    #[test]
    fn correct_under_loss_with_extra_tuning() {
        let g = small_grid(9, 9, 2);
        let program = DjServer::new(&g).build_program();
        let mut client = DjClient::new();
        let q = Query::for_nodes(&g, 0, 80);
        for seed in 0..4 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 7, LossModel::bernoulli(0.1, seed));
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, 0, 80));
            assert!(out.stats.tuning_packets as usize > program.cycle().len());
        }
    }

    #[test]
    fn memory_holds_entire_network() {
        let g = small_grid(10, 10, 7);
        let program = DjServer::new(&g).build_program();
        let mut client = DjClient::new();
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, &Query::for_nodes(&g, 0, 99)).unwrap();
        // At least one decoded byte per network node.
        assert!(out.stats.peak_memory_bytes >= g.num_nodes() * 16);
    }

    #[test]
    fn unreachable_is_reported() {
        let mut b = spair_roadnet::GraphBuilder::new();
        b.add_node(spair_roadnet::Point::new(0.0, 0.0));
        b.add_node(spair_roadnet::Point::new(1.0, 0.0));
        b.add_edge(0, 1, 1); // one-way: 1 -> 0 impossible
        let g = b.finish();
        let program = DjServer::new(&g).build_program();
        let mut client = DjClient::new();
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let err = client
            .query(&mut ch, &Query::for_nodes(&g, 1, 0))
            .unwrap_err();
        assert_eq!(err, QueryError::Unreachable);
    }
}
