//! SPQ on the air: broadcast program and client (paper §3.2).
//!
//! The paper's verdict for SPQ mirrors ArcFlag/Landmark: selective tuning
//! is hopeless (the quadtree needed next may have just been broadcast),
//! so "the only viable option is that the device listens to the entire
//! cycle and performs processing in the entire network" — and SPQ's cycle
//! is the longest of all methods (Table 1: 52 337 packets on Germany vs
//! Dijkstra's 14 019), because one colored quadtree per node dwarfs the
//! adjacency lists.
//!
//! This module makes that measurable: a real cycle layout
//! `[network data][per-node quadtrees]` and a full client that receives
//! the whole cycle, decodes every tree, and answers queries by repeated
//! color lookups (follow the edge whose color the target's coordinate has
//! in the current node's tree). Per §6.2, adjacency data and quadtrees
//! are kept in separate packets; a lost tree packet degrades that node's
//! lookup to "consider all incident edges" (implemented as a local
//! one-step expansion), while lost adjacency data must be re-received.

use crate::spq::{Quadtree, SpqIndex, NO_COLOR};
use spair_broadcast::codec::{u16_of, EncodeError, PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::{CycleBuilder, SegmentKind};
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, BroadcastCycle, CpuMeter, MemoryMeter, QueryStats};
use spair_core::netcodec::{decode_payload, encode_nodes, ReceivedGraph};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_roadnet::{Distance, NodeId, Point, RoadNetwork};
use std::collections::HashMap;

const TREE_MAGIC: u8 = 0x9B;

const NODE_LEAF: u8 = 0;
const NODE_INTERNAL: u8 = 1;
const NODE_MIXED: u8 = 2;

/// Serializes a quadtree into a compact preorder byte string. Fails with
/// a typed error if a mixed node holds more points than the u16 count
/// field carries (silent truncation would desynchronize the decoder).
fn encode_tree(tree: &Quadtree, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match tree {
        Quadtree::Leaf(c) => {
            out.push(NODE_LEAF);
            out.push(*c);
        }
        Quadtree::Internal(children) => {
            out.push(NODE_INTERNAL);
            for ch in children.iter() {
                encode_tree(ch, out)?;
            }
        }
        Quadtree::Mixed(points) => {
            out.push(NODE_MIXED);
            let count = u16_of(points.len(), "spq mixed-node point count")?;
            out.extend_from_slice(&count.to_le_bytes());
            for (p, c) in points {
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
                out.push(*c);
            }
        }
    }
    Ok(())
}

/// Deepest tree `decode_tree` accepts. Real quadtrees subdivide a
/// bounded box a few dozen times at most; a corrupted blob of nested
/// INTERNAL tags must yield a typed `None`, not a recursion-driven
/// stack overflow.
const MAX_TREE_DEPTH: usize = 512;

/// Parses one preorder-encoded quadtree, advancing `pos`.
fn decode_tree(bytes: &[u8], pos: &mut usize) -> Option<Quadtree> {
    decode_tree_at(bytes, pos, 0)
}

fn decode_tree_at(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Quadtree> {
    if depth >= MAX_TREE_DEPTH {
        return None;
    }
    let tag = *bytes.get(*pos)?;
    *pos += 1;
    match tag {
        NODE_LEAF => {
            let c = *bytes.get(*pos)?;
            *pos += 1;
            Some(Quadtree::Leaf(c))
        }
        NODE_INTERNAL => {
            let mut children = Vec::with_capacity(4);
            for _ in 0..4 {
                children.push(decode_tree_at(bytes, pos, depth + 1)?);
            }
            let children: [Quadtree; 4] = children.try_into().ok()?;
            Some(Quadtree::Internal(Box::new(children)))
        }
        NODE_MIXED => {
            let count = u16::from_le_bytes(bytes.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
            *pos += 2;
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let x = f64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?);
                let y = f64::from_le_bytes(bytes.get(*pos + 8..*pos + 16)?.try_into().ok()?);
                let c = *bytes.get(*pos + 16)?;
                *pos += 17;
                points.push((Point::new(x, y), c));
            }
            Some(Quadtree::Mixed(points))
        }
        _ => None,
    }
}

/// A fully assembled SPQ broadcast program.
#[derive(Debug)]
pub struct SpqProgram {
    cycle: BroadcastCycle,
    bbox: (Point, Point),
    tree_packets: usize,
}

impl SpqProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Quadtree bounding box (part of the client bootstrap, like the grid
    /// extent in BGI \[12\]).
    pub fn bbox(&self) -> (Point, Point) {
        self.bbox
    }

    /// Packets of quadtree data.
    pub fn tree_packets(&self) -> usize {
        self.tree_packets
    }
}

/// SPQ server: network data followed by every node's colored quadtree.
pub struct SpqAirServer<'a> {
    g: &'a RoadNetwork,
    index: &'a SpqIndex,
}

impl<'a> SpqAirServer<'a> {
    /// Binds the server to the network and a built SPQ index.
    pub fn new(g: &'a RoadNetwork, index: &'a SpqIndex) -> Self {
        Self { g, index }
    }

    /// Assembles the broadcast program. Fails with a typed
    /// [`EncodeError`] when a quadtree exceeds a wire field of the tree
    /// format (instead of silently truncating a counter).
    pub fn build_program(&self) -> Result<SpqProgram, EncodeError> {
        let nodes: Vec<NodeId> = self.g.node_ids().collect();
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            encode_nodes(self.g, &nodes),
        );

        // Quadtrees, chunked into records: (node, chunk offset, total
        // bytes, chunk bytes...). Records self-describe so the client can
        // reassemble each tree blob across packets in any order.
        let mut w = RecordWriter::new();
        let mut rec = RecordBuf::new();
        let mut blob = Vec::new();
        for v in self.g.node_ids() {
            blob.clear();
            encode_tree(self.index.tree(v), &mut blob)?;
            // Max record body ~110 bytes: 13 bytes of header leaves 97.
            for (ci, chunk) in blob.chunks(96).enumerate() {
                rec.clear();
                rec.put_u8(TREE_MAGIC)
                    .put_u32(v)
                    .put_u32((ci * 96) as u32)
                    .put_u32(blob.len() as u32);
                let mut body = rec.as_slice().to_vec();
                body.extend_from_slice(chunk);
                w.push_record(&body);
            }
        }
        let tree_payloads = w.finish();
        let tree_packets = tree_payloads.len();
        b.push_segment(SegmentKind::AuxData, PacketKind::Aux, tree_payloads);

        Ok(SpqProgram {
            cycle: b.finish(),
            bbox: self.g.bounding_box(),
            tree_packets,
        })
    }
}

/// Reassembly buffer for one node's tree blob.
#[derive(Debug, Default)]
struct TreeBuf {
    bytes: Vec<u8>,
    have: usize,
}

/// The SPQ client.
#[derive(Debug, Clone)]
pub struct SpqClient {
    bbox: (Point, Point),
}

impl SpqClient {
    /// New client; the quadtree bounding box is assumed known (broadcast
    /// once in the program preamble in a real deployment).
    pub fn new(bbox: (Point, Point)) -> Self {
        Self { bbox }
    }
}

impl AirClient for SpqClient {
    fn method_name(&self) -> &'static str {
        "SPQ"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }

        // Whole-cycle reception (§3.2): adjacency data must be complete;
        // lost tree packets degrade, so they are not re-received.
        let mut store = ReceivedGraph::new();
        let mut bufs: HashMap<NodeId, TreeBuf> = HashMap::new();
        crate::dj::receive_whole_cycle(ch, &mut mem, |kind, payload, mem| match kind {
            PacketKind::Data => {
                if let Some(records) = decode_payload(payload) {
                    for rec in records {
                        mem.alloc(store.ingest(rec));
                    }
                }
            }
            PacketKind::Aux => {
                let mut r = PayloadReader::new(payload);
                while let Some(TREE_MAGIC) = r.read_u8() {
                    let (Some(v), Some(off), Some(total)) =
                        (r.read_u32(), r.read_u32(), r.read_u32())
                    else {
                        return;
                    };
                    let chunk_len = (total as usize - off as usize).min(96);
                    let Some(chunk) = r.take(chunk_len) else {
                        return;
                    };
                    let buf = bufs.entry(v).or_default();
                    if buf.bytes.len() < total as usize {
                        mem.alloc(total as usize - buf.bytes.len());
                        buf.bytes.resize(total as usize, 0);
                    }
                    buf.bytes[off as usize..off as usize + chunk.len()].copy_from_slice(chunk);
                    buf.have += chunk.len();
                }
            }
            _ => {}
        })
        .map_err(|_| QueryError::Aborted("SPQ whole-cycle reception never completed"))?;

        // Decode the trees (complete blobs only; incomplete = degraded).
        let trees: HashMap<NodeId, Quadtree> = cpu.time(|| {
            bufs.iter()
                .filter(|(_, b)| b.have >= b.bytes.len())
                .filter_map(|(&v, b)| {
                    let mut pos = 0usize;
                    decode_tree(&b.bytes, &mut pos).map(|t| (v, t))
                })
                .collect()
        });

        // Color walk: at each node, the target coordinate's color names
        // the incident edge the shortest path leaves through. A missing
        // tree (loss) degrades to a one-step local choice over all
        // incident edges, per §6.2.
        let target_pt = q.target_pt;
        let walk = cpu.time(|| -> Option<(Distance, Vec<NodeId>)> {
            let mut path = vec![q.source];
            let mut distance: Distance = 0;
            let mut cur = q.source;
            for _ in 0..store.num_nodes().max(1) {
                if cur == q.target {
                    return Some((distance, path));
                }
                let edges = store.out_edges(cur);
                let next = match trees.get(&cur) {
                    Some(tree) => {
                        let color = tree.color_at(target_pt, self.bbox);
                        if color == NO_COLOR {
                            return None;
                        }
                        edges.get(color as usize).copied()
                    }
                    None => {
                        // Degraded: all incident edges must be considered
                        // (§6.2); pick the neighbour whose own tree/walk
                        // continues — locally, the Euclidean-nearest to
                        // the target, the standard greedy fallback.
                        edges
                            .iter()
                            .filter_map(|&(u, w)| {
                                store.point(u).map(|p| (u, w, p.euclidean(&target_pt)))
                            })
                            .min_by(|a, b| a.2.total_cmp(&b.2))
                            .map(|(u, w, _)| (u, w))
                    }
                };
                let (u, w) = next?;
                distance += w as Distance;
                path.push(u);
                cur = u;
            }
            None
        });

        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: walk.as_ref().map(|(_, p)| p.len() as u64).unwrap_or(0),
        };
        match walk {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::LossModel;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    fn setup(seed: u64) -> (RoadNetwork, SpqProgram) {
        let g = small_grid(8, 8, seed);
        let index = SpqIndex::build(&g);
        let program = SpqAirServer::new(&g, &index)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn tree_codec_round_trips() {
        let g = small_grid(7, 7, 3);
        let index = SpqIndex::build(&g);
        for v in g.node_ids() {
            let mut blob = Vec::new();
            encode_tree(index.tree(v), &mut blob).expect("encode");
            let mut pos = 0usize;
            let tree = decode_tree(&blob, &mut pos).unwrap();
            assert_eq!(pos, blob.len(), "node {v}: trailing bytes");
            // Every node coordinate must get the same color back.
            let bbox = g.bounding_box();
            for u in g.node_ids() {
                assert_eq!(
                    tree.color_at(g.point(u), bbox),
                    index.tree(v).color_at(g.point(u), bbox),
                    "node {v}, point of {u}"
                );
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_many_queries() {
        let (g, program) = setup(2);
        let mut client = SpqClient::new(program.bbox());
        for (i, &(s, t)) in [(0u32, 63u32), (5, 42), (60, 1), (30, 31)]
            .iter()
            .enumerate()
        {
            let mut ch = BroadcastChannel::tune_in(program.cycle(), i * 19, LossModel::Lossless);
            let q = Query::for_nodes(&g, s, t);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t), "{s}->{t}");
            assert_eq!(out.path.first(), Some(&s));
            assert_eq!(out.path.last(), Some(&t));
        }
    }

    #[test]
    fn tuning_time_is_the_whole_cycle() {
        let (g, program) = setup(4);
        let mut client = SpqClient::new(program.bbox());
        let mut ch = BroadcastChannel::tune_in(program.cycle(), 100, LossModel::Lossless);
        let out = client.query(&mut ch, &Query::for_nodes(&g, 0, 63)).unwrap();
        assert_eq!(out.stats.tuning_packets as usize, program.cycle().len());
    }

    #[test]
    fn cycle_dwarfs_dijkstras() {
        let (g, program) = setup(6);
        let dj = crate::dj::DjServer::new(&g).build_program();
        assert!(
            program.cycle().len() > 2 * dj.cycle().len(),
            "SPQ {} vs DJ {}",
            program.cycle().len(),
            dj.cycle().len()
        );
        assert_eq!(
            program.cycle().len(),
            dj.cycle().len() + program.tree_packets()
        );
    }

    #[test]
    fn walk_path_is_a_real_path() {
        let (g, program) = setup(8);
        let mut client = SpqClient::new(program.bbox());
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, &Query::for_nodes(&g, 9, 54)).unwrap();
        let mut acc: Distance = 0;
        for w in out.path.windows(2) {
            acc += g.weight_between(w[0], w[1]).expect("consecutive edge") as Distance;
        }
        assert_eq!(acc, out.distance);
    }

    #[test]
    fn adjacency_survives_loss_with_degraded_trees() {
        // Losses hit tree packets too; adjacency is re-received, trees
        // degrade — the walk may detour but must still terminate at the
        // target with a real path.
        let (g, program) = setup(10);
        let mut client = SpqClient::new(program.bbox());
        for seed in 0..4 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 3, LossModel::bernoulli(0.02, seed));
            match client.query(&mut ch, &Query::for_nodes(&g, 0, 63)) {
                Ok(out) => {
                    assert_eq!(out.path.last(), Some(&63));
                    let want = dijkstra_distance(&g, 0, 63).unwrap();
                    assert!(out.distance >= want, "cannot beat the optimum");
                }
                // A degraded greedy walk can dead-end; that is the
                // documented §6.2 trade-off, not an error in the client.
                Err(QueryError::Unreachable) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn same_node_query_is_trivial() {
        let (g, program) = setup(12);
        let mut client = SpqClient::new(program.bbox());
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, &Query::for_nodes(&g, 5, 5)).unwrap();
        assert_eq!(out.distance, 0);
    }

    /// Encoder boundary: a mixed quadtree leaf holds its point count in
    /// a u16 wire field — 65 535 points encode, 65 536 is a typed
    /// error, not a silent wrap.
    #[test]
    fn mixed_leaf_point_count_boundary() {
        let at_cap = Quadtree::Mixed(vec![(Point::new(0.0, 0.0), 1); u16::MAX as usize]);
        let mut blob = Vec::new();
        assert!(encode_tree(&at_cap, &mut blob).is_ok());
        let over = Quadtree::Mixed(vec![(Point::new(0.0, 0.0), 1); u16::MAX as usize + 1]);
        let mut blob = Vec::new();
        assert!(encode_tree(&over, &mut blob).is_err());
    }

    /// Decoder panic audit: every blob — random, truncated, or
    /// bit-flipped — must decode to `None` or a valid tree, never panic
    /// (the depth cap turns nested-INTERNAL bombs into typed rejects).
    mod panic_audit {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// Real encoded trees, built once.
        fn real_blobs() -> &'static [Vec<u8>] {
            static BLOBS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
            BLOBS.get_or_init(|| {
                let g = small_grid(7, 7, 5);
                let index = SpqIndex::build(&g);
                g.node_ids()
                    .take(24)
                    .map(|v| {
                        let mut blob = Vec::new();
                        encode_tree(index.tree(v), &mut blob).expect("encode");
                        blob
                    })
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            #[test]
            fn arbitrary_blobs_never_panic(
                blob in proptest::collection::vec(any::<u8>(), 0..200),
            ) {
                let mut pos = 0;
                let _ = decode_tree(&blob, &mut pos);
            }

            /// A blob of nothing but INTERNAL tags is the recursion
            /// bomb; the depth cap must reject it.
            #[test]
            fn nested_internal_bomb_is_rejected(len in 1usize..4096) {
                let blob = vec![NODE_INTERNAL; len];
                let mut pos = 0;
                prop_assert_eq!(decode_tree(&blob, &mut pos), None);
            }

            #[test]
            fn corrupted_real_blobs_never_panic(
                which in 0usize..24,
                cut in 0usize..256,
                bit in 0usize..(1 << 11),
            ) {
                let blobs = real_blobs();
                let blob = &blobs[which % blobs.len()];
                let mut pos = 0;
                let _ = decode_tree(&blob[..cut.min(blob.len())], &mut pos);
                let mut flipped = blob.clone();
                let b = bit % (flipped.len() * 8);
                flipped[b / 8] ^= 1 << (b % 8);
                let mut pos = 0;
                let _ = decode_tree(&flipped, &mut pos);
            }
        }
    }
}
