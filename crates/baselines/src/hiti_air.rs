//! HiTi on the air: broadcast program and client (paper §3.2).
//!
//! The paper singles HiTi out as "the only approach that could effectively
//! achieve selective tuning, since it uses an index structure to determine
//! the needed regions of the network in advance. For this pruning of the
//! search space to be possible, however, the client should receive the
//! entire index" — and the index, holding materialized border-pair path
//! views at every hierarchy level, is several times larger than the
//! network itself (Table 1), which is what disqualifies HiTi on real
//! devices (Table 2).
//!
//! This module makes that verdict *measurable* instead of asserted: it
//! assembles a real HiTi broadcast cycle and implements the full client so
//! the experiments can report its genuine tuning time, memory footprint
//! and access latency next to the other methods.
//!
//! Cycle layout:
//!
//! ```text
//! [ global index: geometry, per-cell offsets, super-edge catalog
//!   (all levels, with path views), cross-cell edges ]
//! [ cell 0 raw data ][ cell 1 raw data ] ... [ cell k²-1 raw data ]
//! ```
//!
//! Client protocol: receive the entire index (reliably, §6.2 — a lost
//! index packet is re-received next cycle since HiTi's index is not
//! replicated), locate the source/target cells from the grid geometry,
//! selectively tune in to just those two cells' raw data, then run
//! Dijkstra over the *hierarchical* contraction `G'`: the coarsest
//! disjoint groups that avoid both terminal cells contribute only their
//! super-edges, the terminal cells contribute raw adjacency, and
//! cross-cell edges stitch everything together. Super-edges on the answer
//! are expanded through their materialized path views.

use crate::hiti::HiTiIndex;
use bytes::Bytes;
use spair_broadcast::codec::{u16_of, u8_of, EncodeError, PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::{CycleBuilder, SegmentKind};
use spair_broadcast::packet::{PacketKind, PAYLOAD_CAPACITY};
use spair_broadcast::{
    BroadcastChannel, BroadcastCycle, CpuMeter, MemoryMeter, QueryStats, Received,
};
use spair_core::client_common::{find_next_index, receive_segment_reliable, MAX_RETRY_CYCLES};
use spair_core::netcodec::{decode_payload, encode_nodes, ReceivedGraph};
use spair_core::query::{decoded_node_bytes, AirClient, Query, QueryError, QueryOutcome};
use spair_partition::{GridLocator, RegionId};
use spair_roadnet::{Distance, MinHeap, NodeId, RoadNetwork, Weight};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

const MAGIC: u8 = 0xA7;
// magic (u8) + seq (u32) + total (u32). The counters are u32 because a
// paper-scale hierarchy's index spans far more than 65 535 packets —
// the u16 header wrapped and made every client abort, found by the load
// harness's 100k-node population cell.
const HEADER_LEN: usize = 9;

const TAG_GEOM: u8 = 1;
const TAG_CELL: u8 = 2;
const TAG_SE: u8 = 3;
const TAG_SEPATH: u8 = 4;
const TAG_BEDGE: u8 = 5;

/// Interior path nodes carried per SEPATH record.
const PATH_CHUNK: usize = 24;

/// A fully assembled HiTi broadcast program.
#[derive(Debug)]
pub struct HiTiProgram {
    cycle: BroadcastCycle,
    index_packets: usize,
}

impl HiTiProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Packets of the global index (geometry + offsets + super-edge
    /// catalog + cross-cell edges).
    pub fn index_packets(&self) -> usize {
        self.index_packets
    }
}

/// HiTi server: serializes the hierarchy and the cell-ordered network.
pub struct HiTiAirServer<'a> {
    g: &'a RoadNetwork,
    index: &'a HiTiIndex,
}

impl<'a> HiTiAirServer<'a> {
    /// Binds the server to the network and a built hierarchy.
    pub fn new(g: &'a RoadNetwork, index: &'a HiTiIndex) -> Self {
        Self { g, index }
    }

    /// Index payloads given the per-cell offset table (fixed width, so a
    /// placeholder pass and the real pass produce equal packet counts).
    /// Every count squeezed into a narrow wire field goes through a
    /// checked conversion — the u16 seq/total wrap this format already
    /// shipped once is exactly the bug class the typed error retires.
    fn encode_index(&self, cells: &[(u32, u16)]) -> Result<Vec<Bytes>, EncodeError> {
        let side = self.index.base_side();
        let loc = self.index.locator();
        let body = |total: u32| -> Result<Vec<Bytes>, EncodeError> {
            let mut w = RecordWriter::with_capacity(PAYLOAD_CAPACITY - HEADER_LEN);
            let mut rec = RecordBuf::new();

            rec.put_u8(TAG_GEOM)
                .put_f64(loc.min.x)
                .put_f64(loc.min.y)
                .put_f64(loc.cell_w)
                .put_f64(loc.cell_h)
                .put_u16(u16_of(side, "hiti grid side")?)
                .put_u8(u8_of(self.index.levels.len(), "hiti level count")?);
            w.push_record(rec.as_slice());

            for (cell, &(offset, packets)) in cells.iter().enumerate() {
                rec.clear();
                rec.put_u8(TAG_CELL)
                    .put_u16(u16_of(cell, "hiti cell id")?)
                    .put_u32(offset)
                    .put_u16(packets);
                w.push_record(rec.as_slice());
            }

            // Super-edge catalog across all levels, with path views.
            let mut id = 0u32;
            for (level, l) in self.index.levels.iter().enumerate() {
                for se in &l.super_edges {
                    let cell = self.index.base_cell_of(se.from);
                    let group = u16_of(
                        self.index.group_of_cell(cell, level),
                        "hiti super-edge group",
                    )?;
                    let via = l.via(se);
                    rec.clear();
                    rec.put_u8(TAG_SE)
                        .put_u32(id)
                        .put_u8(u8_of(level, "hiti super-edge level")?)
                        .put_u16(group)
                        .put_u32(se.from)
                        .put_u32(se.to)
                        .put_u64(se.cost)
                        .put_u16(u16_of(via.len(), "hiti super-edge path length")?);
                    w.push_record(rec.as_slice());
                    for (ci, chunk) in via.chunks(PATH_CHUNK).enumerate() {
                        rec.clear();
                        rec.put_u8(TAG_SEPATH)
                            .put_u32(id)
                            .put_u16(sepath_start(ci)?)
                            .put_u8(chunk.len() as u8);
                        for &v in chunk {
                            rec.put_u32(v);
                        }
                        w.push_record(rec.as_slice());
                    }
                    id += 1;
                }
            }

            // Cross-cell (border) edges: the stitching between subgraphs.
            for v in self.g.node_ids() {
                let cv = self.index.base_cell_of(v);
                for (u, wt) in self.g.out_edges(v) {
                    if self.index.base_cell_of(u) != cv {
                        rec.clear();
                        rec.put_u8(TAG_BEDGE).put_u32(v).put_u32(u).put_u32(wt);
                        w.push_record(rec.as_slice());
                    }
                }
            }

            w.finish()
                .into_iter()
                .enumerate()
                .map(|(seq, body)| {
                    let mut h = RecordBuf::new();
                    h.put_u8(MAGIC).put_u32(seq as u32).put_u32(total);
                    let mut v = h.as_slice().to_vec();
                    v.extend_from_slice(&body);
                    Bytes::from(v)
                })
                .map(Ok)
                .collect()
        };
        let count = body(0)?.len() as u32;
        body(count)
    }

    /// Assembles the broadcast program. Fails with a typed
    /// [`EncodeError`] when the world exceeds a wire field of the index
    /// format (instead of silently truncating a counter).
    pub fn build_program(&self) -> Result<HiTiProgram, EncodeError> {
        let side = self.index.base_side();
        let num_cells = side * side;
        let mut by_cell: Vec<Vec<NodeId>> = vec![Vec::new(); num_cells];
        for v in self.g.node_ids() {
            by_cell[self.index.base_cell_of(v) as usize].push(v);
        }
        let cell_payloads: Vec<Vec<Bytes>> = by_cell
            .iter()
            .map(|nodes| encode_nodes(self.g, nodes))
            .collect();

        // Pass 1: placeholder offsets to learn the index extent.
        let placeholder = vec![(0u32, 0u16); num_cells];
        let index_packets = self.encode_index(&placeholder)?.len();

        let mut offset = index_packets;
        let cells: Vec<(u32, u16)> = cell_payloads
            .iter()
            .map(|p| {
                let entry = (
                    spair_broadcast::codec::u32_of(offset, "hiti cell offset")?,
                    u16_of(p.len(), "hiti cell packet count")?,
                );
                offset += p.len();
                Ok(entry)
            })
            .collect::<Result<_, EncodeError>>()?;

        // Pass 2: real offsets.
        let index_payloads = self.encode_index(&cells)?;
        assert_eq!(index_payloads.len(), index_packets, "fixed-width encoding");

        let mut b = CycleBuilder::new();
        b.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, index_payloads);
        for (cell, payloads) in cell_payloads.into_iter().enumerate() {
            b.push_segment(
                SegmentKind::RegionData(cell as u16),
                PacketKind::Data,
                payloads,
            );
        }
        Ok(HiTiProgram {
            cycle: b.finish(),
            index_packets,
        })
    }
}

/// Node offset of SEPATH chunk `ci` within its super-edge's path view,
/// checked against the u16 wire field (paths past 65 535 interior nodes
/// would otherwise wrap the offset and scramble reassembly).
fn sepath_start(ci: usize) -> Result<u16, EncodeError> {
    u16_of(ci * PATH_CHUNK, "hiti se path start")
}

/// One decoded super-edge of the catalog.
#[derive(Debug, Clone)]
struct DecodedSe {
    level: u8,
    group: u16,
    from: NodeId,
    to: NodeId,
    cost: Distance,
    via: Vec<NodeId>,
}

/// The decoded global index.
#[derive(Debug, Default)]
struct DecodedIndex {
    locator: Option<GridLocator>,
    levels: usize,
    cells: HashMap<u16, (u32, u16)>,
    ses: HashMap<u32, DecodedSe>,
    bedges: Vec<(NodeId, NodeId, Weight)>,
}

impl DecodedIndex {
    /// Decoded size charged to the client's memory meter.
    fn retained_bytes(&self) -> usize {
        let se_bytes: usize = self.ses.values().map(|se| 24 + 4 * se.via.len()).sum();
        48 + self.cells.len() * 8 + se_bytes + self.bedges.len() * 12
    }

    fn ingest(&mut self, payload: &[u8]) -> bool {
        let mut r = PayloadReader::new(payload);
        let Some(MAGIC) = r.read_u8() else {
            return false;
        };
        let (Some(_seq), Some(_total)) = (r.read_u32(), r.read_u32()) else {
            return false;
        };
        while let Some(tag) = r.read_u8() {
            match tag {
                TAG_GEOM => {
                    let (Some(minx), Some(miny), Some(cw), Some(chh)) =
                        (r.read_f64(), r.read_f64(), r.read_f64(), r.read_f64())
                    else {
                        return false;
                    };
                    let (Some(side), Some(levels)) = (r.read_u16(), r.read_u8()) else {
                        return false;
                    };
                    self.locator = Some(GridLocator {
                        min: spair_roadnet::Point::new(minx, miny),
                        cell_w: cw,
                        cell_h: chh,
                        cols: side as usize,
                        rows: side as usize,
                    });
                    self.levels = levels as usize;
                }
                TAG_CELL => {
                    let (Some(cell), Some(off), Some(len)) =
                        (r.read_u16(), r.read_u32(), r.read_u16())
                    else {
                        return false;
                    };
                    self.cells.insert(cell, (off, len));
                }
                TAG_SE => {
                    let (Some(id), Some(level), Some(group)) =
                        (r.read_u32(), r.read_u8(), r.read_u16())
                    else {
                        return false;
                    };
                    let (Some(from), Some(to), Some(cost), Some(via_total)) =
                        (r.read_u32(), r.read_u32(), r.read_u64(), r.read_u16())
                    else {
                        return false;
                    };
                    let via = match self.ses.entry(id) {
                        Entry::Occupied(e) => {
                            // SEPATH records for this id arrived first;
                            // keep the path, fix the metadata.
                            e.remove().via
                        }
                        Entry::Vacant(_) => vec![NodeId::MAX; via_total as usize],
                    };
                    self.ses.insert(
                        id,
                        DecodedSe {
                            level,
                            group,
                            from,
                            to,
                            cost,
                            via,
                        },
                    );
                }
                TAG_SEPATH => {
                    let (Some(id), Some(start), Some(count)) =
                        (r.read_u32(), r.read_u16(), r.read_u8())
                    else {
                        return false;
                    };
                    let se = self.ses.entry(id).or_insert_with(|| DecodedSe {
                        level: 0,
                        group: 0,
                        from: NodeId::MAX,
                        to: NodeId::MAX,
                        cost: 0,
                        via: Vec::new(),
                    });
                    for k in 0..count as usize {
                        let Some(v) = r.read_u32() else { return false };
                        let idx = start as usize + k;
                        if se.via.len() <= idx {
                            se.via.resize(idx + 1, NodeId::MAX);
                        }
                        se.via[idx] = v;
                    }
                }
                TAG_BEDGE => {
                    let (Some(v), Some(u), Some(wt)) = (r.read_u32(), r.read_u32(), r.read_u32())
                    else {
                        return false;
                    };
                    self.bedges.push((v, u, wt));
                }
                _ => return false,
            }
        }
        true
    }
}

/// Coarsest disjoint groups avoiding both terminal cells: descend the
/// 2×2 group hierarchy from the top level, splitting only groups that
/// contain `cs` or `ct`. Returns `(level, group)` pairs.
fn select_groups(cs: RegionId, ct: RegionId, side: usize, levels: usize) -> Vec<(u8, u16)> {
    let group_of = |cell: RegionId, level: usize| -> usize {
        let (x, y) = (cell as usize % side, cell as usize / side);
        let cells = side >> level;
        (y >> level) * cells + (x >> level)
    };
    let top = levels - 1;
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize)> = {
        let cells = side >> top;
        (0..cells * cells).map(|gr| (top, gr)).collect()
    };
    while let Some((level, gr)) = stack.pop() {
        let contains_terminal = group_of(cs, level) == gr || group_of(ct, level) == gr;
        if !contains_terminal {
            out.push((level as u8, gr as u16));
        } else if level > 0 {
            // Split into the four children one level finer.
            let cells = side >> level;
            let (gx, gy) = (gr % cells, gr / cells);
            let fcells = side >> (level - 1);
            for dy in 0..2 {
                for dx in 0..2 {
                    stack.push((level - 1, (2 * gy + dy) * fcells + (2 * gx + dx)));
                }
            }
        }
        // level == 0 and terminal: the cell stays raw.
    }
    out
}

/// The HiTi client.
#[derive(Debug, Clone, Default)]
pub struct HiTiAirClient;

impl HiTiAirClient {
    /// New client.
    pub fn new() -> Self {
        Self
    }

    /// Receives the entire global index reliably starting at `start`. The
    /// copy length is learned from the first intact packet header (each
    /// packet carries `seq`/`total`); lost packets are re-received in
    /// later cycles (§6.2 — HiTi's index is not replicated, so a loss in
    /// it costs a cycle-long wait, which Figure 14 would show).
    fn receive_index(
        &self,
        ch: &mut BroadcastChannel<'_>,
        start: usize,
    ) -> Result<DecodedIndex, QueryError> {
        let len = ch.cycle_len();
        let mut dec = DecodedIndex::default();
        let mut total: Option<usize> = None;
        let mut received: Vec<bool> = Vec::new();
        for _round in 0..MAX_RETRY_CYCLES {
            ch.sleep_to_offset(start);
            let mut pos = 0usize;
            loop {
                if let Some(t) = total {
                    if pos >= t {
                        break;
                    }
                }
                match ch.receive() {
                    Received::Packet(p) => {
                        if p.kind() != PacketKind::Index {
                            // Overran the copy without learning its
                            // length (only possible when `total` is still
                            // unknown, i.e. every index packet was lost).
                            break;
                        }
                        let mut r = PayloadReader::new(p.payload());
                        if r.read_u8() != Some(MAGIC) {
                            return Err(QueryError::Aborted("channel does not carry a HiTi index"));
                        }
                        let (Some(seq), Some(tot)) = (r.read_u32(), r.read_u32()) else {
                            return Err(QueryError::Aborted("malformed HiTi index header"));
                        };
                        let tot = tot as usize;
                        total = Some(tot);
                        received.resize(tot.max(received.len()), false);
                        if !received[seq as usize] {
                            if !dec.ingest(p.payload()) {
                                return Err(QueryError::Aborted("undecodable HiTi index packet"));
                            }
                            received[seq as usize] = true;
                        }
                        pos = seq as usize + 1;
                    }
                    Received::Lost | Received::Corrupted => pos += 1,
                }
            }
            let Some(t) = total else {
                continue; // nothing intact this cycle; try the next one
            };
            // Targeted retries for the holes.
            let mut missing: Vec<usize> = (0..t).filter(|&i| !received[i]).collect();
            let mut rounds = 0;
            while !missing.is_empty() {
                rounds += 1;
                if rounds > MAX_RETRY_CYCLES {
                    return Err(QueryError::Aborted("HiTi index reception never completed"));
                }
                let mut still = Vec::new();
                for i in missing {
                    ch.sleep_to_offset((start + i) % len);
                    match ch.receive() {
                        Received::Packet(p) => {
                            if !dec.ingest(p.payload()) {
                                return Err(QueryError::Aborted("undecodable HiTi index packet"));
                            }
                            received[i] = true;
                        }
                        Received::Lost | Received::Corrupted => still.push(i),
                    }
                }
                missing = still;
            }
            return Ok(dec);
        }
        Err(QueryError::Aborted("HiTi index reception never completed"))
    }
}

impl AirClient for HiTiAirClient {
    fn method_name(&self) -> &'static str {
        "HiTi"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }

        // 1. Entire index ("the client should receive the entire index").
        let Some(start) = find_next_index(ch, 10_000) else {
            return Err(QueryError::Aborted("no index on channel"));
        };
        let index = self.receive_index(ch, start)?;
        mem.alloc(index.retained_bytes());
        let Some(locator) = index.locator else {
            return Err(QueryError::Aborted("HiTi index lacks geometry"));
        };

        // 2. Terminal cells and needed groups.
        let cs = locator.locate(q.source_pt);
        let ct = locator.locate(q.target_pt);
        let side = locator.cols;
        let selected = cpu.time(|| select_groups(cs, ct, side, index.levels.max(1)));

        // 3. Selective tuning: only the two terminal cells' raw data.
        let mut store = ReceivedGraph::new();
        let mut cells_needed = vec![cs];
        if ct != cs {
            cells_needed.push(ct);
        }
        // Receive in broadcast order to stay within one pass.
        cells_needed.sort_by_key(|&c| index.cells.get(&c).map(|&(off, _)| off).unwrap_or(0));
        for cell in cells_needed {
            let Some(&(off, len)) = index.cells.get(&cell) else {
                return Err(QueryError::Aborted("cell offset missing from index"));
            };
            let payloads =
                receive_segment_reliable(ch, off as usize, len as usize, MAX_RETRY_CYCLES)
                    .ok_or(QueryError::Aborted("cell data reception never completed"))?;
            for payload in &payloads {
                if let Some(records) = decode_payload(payload) {
                    for rec in records {
                        mem.alloc(store.ingest(rec));
                    }
                }
            }
        }

        // 4. Dijkstra over the hierarchical contraction G'.
        let (res, settled) =
            cpu.time(|| hierarchical_search(&index, &selected, &store, q.source, q.target));
        mem.alloc(settled * decoded_node_bytes(0));
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }
}

/// Edge of the contraction: either a raw arc or a super-edge id to expand.
#[derive(Debug, Clone, Copy)]
enum GEdge {
    Raw(NodeId, Distance),
    Super(NodeId, Distance, u32),
}

/// Dijkstra over the hierarchical contraction, expanding super-edges on
/// the returned path. Returns `(result, settled_count)`.
fn hierarchical_search(
    index: &DecodedIndex,
    selected: &[(u8, u16)],
    store: &ReceivedGraph,
    s: NodeId,
    t: NodeId,
) -> (Option<(Distance, Vec<NodeId>)>, usize) {
    let mut adj: HashMap<NodeId, Vec<GEdge>> = HashMap::new();
    let selset: std::collections::HashSet<(u8, u16)> = selected.iter().copied().collect();
    // Iterate the hash-keyed structures in sorted order so the adjacency
    // push order — and with it the tie-break among equal-distance paths
    // and the settled count — is identical on every run.
    let mut se_ids: Vec<u32> = index.ses.keys().copied().collect();
    se_ids.sort_unstable();
    for id in se_ids {
        let se = &index.ses[&id];
        if selset.contains(&(se.level, se.group)) {
            adj.entry(se.from)
                .or_default()
                .push(GEdge::Super(se.to, se.cost, id));
        }
    }
    for &(v, u, w) in &index.bedges {
        adj.entry(v).or_default().push(GEdge::Raw(u, w as Distance));
    }
    let mut received: Vec<NodeId> = store.node_ids().collect();
    received.sort_unstable();
    for v in received {
        for &(u, w) in store.out_edges(v) {
            adj.entry(v).or_default().push(GEdge::Raw(u, w as Distance));
        }
    }

    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut parent: HashMap<NodeId, (NodeId, Option<u32>)> = HashMap::new();
    let mut heap = MinHeap::new();
    dist.insert(s, 0);
    heap.push(0, s);
    let mut settled = 0usize;
    while let Some(e) = heap.pop() {
        let v = e.item;
        if dist.get(&v) != Some(&e.key) {
            continue;
        }
        settled += 1;
        if v == t {
            // Reconstruct, expanding super-edges through their views.
            let mut path = vec![t];
            let mut cur = t;
            while cur != s {
                let &(p, se) = parent.get(&cur).expect("settled nodes have parents");
                if let Some(id) = se {
                    let view = &index.ses[&id].via;
                    for &x in view.iter().rev() {
                        path.push(x);
                    }
                }
                path.push(p);
                cur = p;
            }
            path.reverse();
            return (Some((e.key, path)), settled);
        }
        for edge in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            let (u, w, se) = match *edge {
                GEdge::Raw(u, w) => (u, w, None),
                GEdge::Super(u, w, id) => (u, w, Some(id)),
            };
            let cand = e.key + w;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                parent.insert(u, (v, se));
                heap.push(cand, u);
            }
        }
    }
    (None, settled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::LossModel;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    fn setup(seed: u64, side: usize, levels: usize) -> (RoadNetwork, HiTiProgram) {
        let g = small_grid(12, 12, seed);
        let index = HiTiIndex::build(&g, side, levels);
        let program = HiTiAirServer::new(&g, &index)
            .build_program()
            .expect("encode");
        (g, program)
    }

    #[test]
    fn matches_dijkstra_on_many_queries() {
        let (g, program) = setup(11, 4, 3);
        let mut client = HiTiAirClient::new();
        for (i, &(s, t)) in [(0u32, 143u32), (5, 77), (130, 2), (60, 61), (143, 0)]
            .iter()
            .enumerate()
        {
            let mut ch = BroadcastChannel::tune_in(program.cycle(), i * 37, LossModel::Lossless);
            let q = Query::for_nodes(&g, s, t);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t), "{s}->{t}");
            assert_eq!(out.path.first(), Some(&s));
            assert_eq!(out.path.last(), Some(&t));
        }
    }

    #[test]
    fn expanded_paths_are_real_paths() {
        let (g, program) = setup(3, 4, 2);
        let mut client = HiTiAirClient::new();
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let q = Query::for_nodes(&g, 2, 141);
        let out = client.query(&mut ch, &q).unwrap();
        let mut acc: Distance = 0;
        for w in out.path.windows(2) {
            acc += g.weight_between(w[0], w[1]).expect("consecutive edge") as Distance;
        }
        assert_eq!(acc, out.distance);
    }

    #[test]
    fn selective_tuning_beats_whole_cycle() {
        let (g, program) = setup(7, 4, 3);
        let mut client = HiTiAirClient::new();
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client
            .query(&mut ch, &Query::for_nodes(&g, 0, 143))
            .unwrap();
        // Index + two cells is less than the whole cycle.
        assert!(
            (out.stats.tuning_packets as usize) < program.cycle().len(),
            "tuned {} of {}",
            out.stats.tuning_packets,
            program.cycle().len()
        );
        // But the entire index was received.
        assert!(out.stats.tuning_packets as usize >= program.index_packets());
    }

    #[test]
    fn memory_is_dominated_by_the_index() {
        let (g, program) = setup(5, 8, 3);
        let mut client = HiTiAirClient::new();
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client
            .query(&mut ch, &Query::for_nodes(&g, 10, 100))
            .unwrap();
        let network_bytes = g.num_edges() * 8 + g.num_nodes() * 12;
        assert!(
            out.stats.peak_memory_bytes > network_bytes,
            "HiTi retained {} vs network {network_bytes}",
            out.stats.peak_memory_bytes
        );
    }

    #[test]
    fn correct_under_packet_loss() {
        let (g, program) = setup(13, 4, 2);
        let mut client = HiTiAirClient::new();
        let q = Query::for_nodes(&g, 3, 137);
        for seed in 0..4 {
            let mut ch = BroadcastChannel::tune_in(
                program.cycle(),
                41 * seed as usize,
                LossModel::bernoulli(0.05, seed),
            );
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(
                Some(out.distance),
                dijkstra_distance(&g, 3, 137),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_tune_in_offset_works() {
        let (g, program) = setup(9, 4, 2);
        let mut client = HiTiAirClient::new();
        let q = Query::for_nodes(&g, 20, 100);
        let want = dijkstra_distance(&g, 20, 100);
        let len = program.cycle().len();
        for k in 0..8 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), k * len / 8, LossModel::Lossless);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), want, "offset {}", k * len / 8);
        }
    }

    #[test]
    fn group_selection_is_disjoint_and_avoids_terminals() {
        let side = 8usize;
        let levels = 4usize;
        let (cs, ct) = (3 as RegionId, 60 as RegionId);
        let selected = select_groups(cs, ct, side, levels);
        let group_of = |cell: usize, level: usize| {
            let (x, y) = (cell % side, cell / side);
            let cells = side >> level;
            (y >> level) * cells + (x >> level)
        };
        // Every base cell except cs/ct is covered by exactly one group.
        for cell in 0..side * side {
            let covers = selected
                .iter()
                .filter(|&&(l, g)| group_of(cell, l as usize) == g as usize)
                .count();
            if cell == cs as usize || cell == ct as usize {
                assert_eq!(covers, 0, "terminal cell {cell} must stay raw");
            } else {
                assert_eq!(covers, 1, "cell {cell} covered {covers} times");
            }
        }
    }

    #[test]
    fn same_node_query_is_trivial() {
        let (g, program) = setup(1, 4, 2);
        let mut client = HiTiAirClient::new();
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = client.query(&mut ch, &Query::for_nodes(&g, 7, 7)).unwrap();
        assert_eq!(out.distance, 0);
        assert_eq!(out.path, vec![7]);
    }

    /// Encoder boundary: the SEPATH chunk offset is a u16 wire field;
    /// the last in-range chunk encodes, the first past it is a typed
    /// error, not a silent wrap.
    #[test]
    fn sepath_start_boundary() {
        let last_ok = u16::MAX as usize / PATH_CHUNK;
        assert_eq!(sepath_start(last_ok), Ok((last_ok * PATH_CHUNK) as u16));
        assert!(sepath_start(last_ok + 1).is_err());
    }

    /// Decoder panic audit: every payload — random, truncated, or
    /// bit-flipped — must yield a typed reject or a partial decode,
    /// never a panic.
    mod panic_audit {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// Real cycle payloads, built once (the HiTi build dominates).
        fn real_payloads() -> &'static [Vec<u8>] {
            static PAYLOADS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
            PAYLOADS.get_or_init(|| {
                let (_, program) = setup(2, 4, 2);
                let cycle = program.cycle();
                (0..cycle.len().min(48))
                    .map(|i| cycle.packet(i).payload().to_vec())
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            #[test]
            fn arbitrary_payloads_never_panic(
                mut payload in proptest::collection::vec(any::<u8>(), 0..200),
                force_magic in any::<bool>(),
            ) {
                if force_magic && !payload.is_empty() {
                    payload[0] = MAGIC;
                }
                let mut dec = DecodedIndex::default();
                let _ = dec.ingest(&payload);
                let _ = dec.retained_bytes();
            }

            #[test]
            fn corrupted_real_payloads_never_panic(
                which in 0usize..48,
                cut in 0usize..256,
                bit in 0usize..(1 << 11),
            ) {
                let payloads = real_payloads();
                let payload = &payloads[which % payloads.len()];
                let mut dec = DecodedIndex::default();
                let _ = dec.ingest(&payload[..cut.min(payload.len())]);
                let mut flipped = payload.clone();
                let b = bit % (flipped.len() * 8);
                flipped[b / 8] ^= 1 << (b % 8);
                let mut dec = DecodedIndex::default();
                let _ = dec.ingest(&flipped);
                let _ = dec.retained_bytes();
            }
        }
    }
}
