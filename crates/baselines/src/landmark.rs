//! The Landmark method (ALT, Goldberg & Harrelson) on air (paper §2.1,
//! §3.2).
//!
//! The server picks `k` landmark nodes by farthest-point selection and
//! precomputes, for every node, its graph distance to and from each
//! landmark. The triangle inequality turns two distance vectors into an
//! admissible A* lower bound. On air the vectors ride in separate `Aux`
//! packets (§6.2: keep adjacency and precomputed data apart); a lost
//! vector degrades that node's bound to 0, never correctness. The client
//! still must receive the whole (now longer) cycle — the paper's point.

use spair_broadcast::codec::{PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::SegmentKind;
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{
    BroadcastChannel, BroadcastCycle, CpuMeter, CycleBuilder, MemoryMeter, QueryStats,
};
use spair_core::netcodec::{decode_payload, encode_nodes, ReceivedGraph};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_roadnet::dijkstra::{DijkstraWorkspace, Direction};
use spair_roadnet::{Distance, MinHeap, NodeId, RoadNetwork, DIST_INF};
use std::collections::HashMap;
use std::time::Instant;

const AUX_MAGIC: u8 = 0x1D;

/// Server-side landmark selection and distance vectors.
#[derive(Debug, Clone)]
pub struct LandmarkIndex {
    /// Chosen landmark nodes.
    pub landmarks: Vec<NodeId>,
    /// Row-major `[node][landmark]` distances node → landmark.
    pub to_landmark: Vec<Distance>,
    /// Row-major `[node][landmark]` distances landmark → node.
    pub from_landmark: Vec<Distance>,
    /// Build wall-clock (Table 3).
    pub precompute_secs: f64,
}

impl LandmarkIndex {
    /// Farthest-point landmark selection plus 2k full Dijkstras.
    pub fn build(g: &RoadNetwork, k: usize) -> Self {
        assert!(k >= 1, "need at least one landmark");
        let start = Instant::now();
        let n = g.num_nodes();
        let mut landmarks = Vec::with_capacity(k);
        // One persistent stamped workspace per direction: the 2k full
        // searches reuse the same dist/parent/version arrays instead of
        // allocating a fresh tree each, and distances (all the build
        // reads) are identical to the per-call `dijkstra_full` trees.
        let mut fwd = DijkstraWorkspace::new(n);
        let mut rev = DijkstraWorkspace::new(n);
        // Start from the node farthest from node 0, then iterate
        // farthest-from-the-set.
        fwd.run(g, 0, Direction::Forward);
        let first = g
            .node_ids()
            .filter(|&v| fwd.distance(v) != DIST_INF)
            .max_by_key(|&v| fwd.distance(v))
            .unwrap_or(0);
        landmarks.push(first);
        let mut to_landmark = vec![DIST_INF; n * k];
        let mut from_landmark = vec![DIST_INF; n * k];
        let mut min_dist = vec![Distance::MAX; n];
        // Farthest-point selection is inherently sequential (landmark
        // i+1 depends on the distances of landmarks 0..=i), but each
        // step's forward and reverse trees are independent — run them as
        // a two-way fork-join. Distances are exact, so the result is
        // identical to the serial build.
        for i in 0..k {
            let l = landmarks[i];
            spair_roadnet::parallel::join(
                || fwd.run(g, l, Direction::Forward), // d(L -> v)
                || rev.run(g, l, Direction::Reverse), // d(v -> L)
            );
            for v in g.node_ids() {
                from_landmark[v as usize * k + i] = fwd.distance(v);
                to_landmark[v as usize * k + i] = rev.distance(v);
                if fwd.distance(v) != DIST_INF {
                    min_dist[v as usize] = min_dist[v as usize].min(fwd.distance(v));
                }
            }
            if i + 1 < k {
                let next = g
                    .node_ids()
                    .filter(|&v| min_dist[v as usize] != Distance::MAX)
                    .max_by_key(|&v| min_dist[v as usize])
                    .unwrap_or(l);
                landmarks.push(next);
            }
        }
        Self {
            landmarks,
            to_landmark,
            from_landmark,
            precompute_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Number of landmarks.
    pub fn k(&self) -> usize {
        self.landmarks.len()
    }

    /// Bit-identity certificate: same landmark choice and the same
    /// distance vectors, entry for entry (build timing excluded).
    pub fn same_vectors(&self, other: &Self) -> bool {
        self.landmarks == other.landmarks
            && self.to_landmark == other.to_landmark
            && self.from_landmark == other.from_landmark
    }
}

/// The Landmark broadcast program.
#[derive(Debug)]
pub struct LandmarkProgram {
    cycle: BroadcastCycle,
    k: usize,
}

impl LandmarkProgram {
    /// The broadcast cycle.
    pub fn cycle(&self) -> &BroadcastCycle {
        &self.cycle
    }

    /// Number of landmarks.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Landmark server.
pub struct LandmarkServer<'a> {
    g: &'a RoadNetwork,
    index: &'a LandmarkIndex,
}

impl<'a> LandmarkServer<'a> {
    /// Binds the server to its inputs.
    pub fn new(g: &'a RoadNetwork, index: &'a LandmarkIndex) -> Self {
        Self { g, index }
    }

    /// Assembles the cycle: adjacency data, then distance vectors.
    pub fn build_program(&self) -> LandmarkProgram {
        let nodes: Vec<NodeId> = self.g.node_ids().collect();
        let k = self.index.k();
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            encode_nodes(self.g, &nodes),
        );
        // Aux: per node, chunked records — magic, id, start, count,
        // count × (to, from) u32 pairs — so any landmark count fits the
        // 123-byte payload (14 pairs per record).
        const PAIRS_PER_RECORD: usize = 14;
        let mut w = RecordWriter::new();
        let mut rec = RecordBuf::new();
        for v in self.g.node_ids() {
            let mut start = 0usize;
            while start < k {
                let count = (k - start).min(PAIRS_PER_RECORD);
                rec.clear();
                rec.put_u8(AUX_MAGIC)
                    .put_u32(v)
                    .put_u8(start as u8)
                    .put_u8(count as u8);
                for i in start..start + count {
                    rec.put_u32(clamp_dist(self.index.to_landmark[v as usize * k + i]));
                    rec.put_u32(clamp_dist(self.index.from_landmark[v as usize * k + i]));
                }
                w.push_record(rec.as_slice());
                start += count;
            }
        }
        b.push_segment(SegmentKind::AuxData, PacketKind::Aux, w.finish());
        LandmarkProgram {
            cycle: b.finish(),
            k,
        }
    }
}

fn clamp_dist(d: Distance) -> u32 {
    if d == DIST_INF {
        u32::MAX
    } else {
        u32::try_from(d).expect("distance fits u32 on air")
    }
}

fn unclamp(v: u32) -> Distance {
    if v == u32::MAX {
        DIST_INF
    } else {
        v as Distance
    }
}

/// Decodes one aux payload into `(node, start, pairs)` chunks.
/// One decoded aux record: node, chunk start, `(to, from)` distance pairs.
type AuxRecord = (NodeId, usize, Vec<(Distance, Distance)>);

fn decode_aux(payload: &[u8]) -> Option<Vec<AuxRecord>> {
    let mut r = PayloadReader::new(payload);
    let mut out = Vec::new();
    while !r.is_empty() {
        if r.read_u8()? != AUX_MAGIC {
            return None;
        }
        let id = r.read_u32()?;
        let start = r.read_u8()? as usize;
        let count = r.read_u8()? as usize;
        let mut v = Vec::with_capacity(count);
        for _ in 0..count {
            let to = unclamp(r.read_u32()?);
            let from = unclamp(r.read_u32()?);
            v.push((to, from));
        }
        out.push((id, start, v));
    }
    Some(out)
}

/// The Landmark client: whole-cycle reception, then A* with ALT bounds.
#[derive(Debug, Clone, Default)]
pub struct LandmarkClient;

impl LandmarkClient {
    /// New client.
    pub fn new() -> Self {
        Self
    }
}

impl AirClient for LandmarkClient {
    fn method_name(&self) -> &'static str {
        "Landmark"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }
        let mut store = ReceivedGraph::new();
        let mut vectors: HashMap<NodeId, Vec<(Distance, Distance)>> = HashMap::new();
        crate::dj::receive_whole_cycle(ch, &mut mem, |kind, payload, mem| match kind {
            PacketKind::Data => {
                if let Some(records) = decode_payload(payload) {
                    for rec in records {
                        mem.alloc(store.ingest(rec));
                    }
                }
            }
            PacketKind::Aux => {
                if let Some(entries) = decode_aux(payload) {
                    for (id, start, chunk) in entries {
                        mem.alloc(16 + chunk.len() * 8);
                        let v = vectors.entry(id).or_default();
                        if v.len() < start + chunk.len() {
                            v.resize(start + chunk.len(), (DIST_INF, DIST_INF));
                        }
                        for (i, pair) in chunk.into_iter().enumerate() {
                            v[start + i] = pair;
                        }
                    }
                }
            }
            _ => {}
        })?;

        // ALT bound: max over landmarks of the two triangle inequalities.
        // A lost vector (§6.2) degrades the bound to 0.
        let lb = |v: NodeId, t: NodeId| -> Distance {
            let (Some(vv), Some(tv)) = (vectors.get(&v), vectors.get(&t)) else {
                return 0;
            };
            let mut best = 0;
            for ((v_to, v_from), (t_to, t_from)) in vv.iter().zip(tv.iter()) {
                if *v_to != DIST_INF && *t_to != DIST_INF {
                    best = best.max(v_to.saturating_sub(*t_to));
                }
                if *v_from != DIST_INF && *t_from != DIST_INF {
                    best = best.max(t_from.saturating_sub(*v_from));
                }
            }
            best
        };

        mem.alloc(store.num_nodes() * 24);
        let (res, settled) = cpu.time(|| astar_over_store(&store, q.source, q.target, lb));
        let stats = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats,
            }),
            None => Err(QueryError::Unreachable),
        }
    }
}

/// A* over the received store with a callable lower bound.
///
/// Uses lazy deletion keyed on `g + h` and allows node reopening, which
/// keeps the search optimal even when the heuristic is admissible but not
/// consistent — exactly the situation §6.2 creates when some distance
/// vectors were lost and degrade to 0.
fn astar_over_store(
    store: &ReceivedGraph,
    source: NodeId,
    target: NodeId,
    lb: impl Fn(NodeId, NodeId) -> Distance,
) -> (Option<(Distance, Vec<NodeId>)>, usize) {
    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = MinHeap::new();
    let mut settled = 0usize;
    dist.insert(source, 0);
    heap.push(lb(source, target), source);
    while let Some(e) = heap.pop() {
        let v = e.item;
        // Stale entry: a cheaper g-value for v was queued later.
        if e.key != dist[&v] + lb(v, target) {
            continue;
        }
        settled += 1;
        if v == target {
            let mut path = vec![v];
            let mut cur = v;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return (Some((dist[&v], path)), settled);
        }
        let dv = dist[&v];
        for &(u, w) in store.out_edges(v) {
            let cand = dv + w as Distance;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                parent.insert(u, v);
                heap.push(cand + lb(u, target), u);
            }
        }
    }
    (None, settled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_broadcast::LossModel;
    use spair_roadnet::dijkstra_distance;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn landmark_selection_is_spread_out() {
        let g = small_grid(10, 10, 1);
        let idx = LandmarkIndex::build(&g, 4);
        assert_eq!(idx.k(), 4);
        // All distinct.
        let mut ls = idx.landmarks.clone();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 4);
    }

    #[test]
    fn vectors_are_true_distances() {
        let g = small_grid(6, 6, 2);
        let idx = LandmarkIndex::build(&g, 2);
        for (i, &l) in idx.landmarks.iter().enumerate() {
            for v in g.node_ids().step_by(5) {
                assert_eq!(
                    Some(idx.to_landmark[v as usize * 2 + i]),
                    dijkstra_distance(&g, v, l)
                );
                assert_eq!(
                    Some(idx.from_landmark[v as usize * 2 + i]),
                    dijkstra_distance(&g, l, v)
                );
            }
        }
    }

    #[test]
    fn client_matches_dijkstra() {
        let g = small_grid(9, 9, 3);
        let idx = LandmarkIndex::build(&g, 4);
        let program = LandmarkServer::new(&g, &idx).build_program();
        let mut client = LandmarkClient::new();
        for &(s, t) in &[(0u32, 80u32), (40, 41), (8, 72)] {
            let mut ch = BroadcastChannel::lossless(program.cycle());
            let out = client.query(&mut ch, &Query::for_nodes(&g, s, t)).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, s, t));
        }
    }

    #[test]
    fn alt_bound_settles_fewer_nodes_than_dj() {
        let g = small_grid(14, 14, 4);
        let idx = LandmarkIndex::build(&g, 8);
        let program = LandmarkServer::new(&g, &idx).build_program();
        let dj_program = crate::dj::DjServer::new(&g).build_program();
        let q = Query::for_nodes(&g, 0, 195);
        let mut ld = LandmarkClient::new();
        let mut dj = crate::dj::DjClient::new();
        let mut ch1 = BroadcastChannel::lossless(program.cycle());
        let mut ch2 = BroadcastChannel::lossless(dj_program.cycle());
        let a = ld.query(&mut ch1, &q).unwrap();
        let b = dj.query(&mut ch2, &q).unwrap();
        assert_eq!(a.distance, b.distance);
        assert!(
            a.stats.settled_nodes <= b.stats.settled_nodes,
            "ALT {} vs DJ {}",
            a.stats.settled_nodes,
            b.stats.settled_nodes
        );
    }

    #[test]
    fn cycle_longer_than_dj_cycle() {
        let g = small_grid(8, 8, 5);
        let idx = LandmarkIndex::build(&g, 4);
        let program = LandmarkServer::new(&g, &idx).build_program();
        let dj = crate::dj::DjServer::new(&g).build_program();
        assert!(program.cycle().len() > dj.cycle().len());
    }

    #[test]
    fn correct_under_loss() {
        let g = small_grid(8, 8, 6);
        let idx = LandmarkIndex::build(&g, 2);
        let program = LandmarkServer::new(&g, &idx).build_program();
        let mut client = LandmarkClient::new();
        let q = Query::for_nodes(&g, 0, 63);
        for seed in 0..3 {
            let mut ch =
                BroadcastChannel::tune_in(program.cycle(), 3, LossModel::bernoulli(0.1, seed));
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(Some(out.distance), dijkstra_distance(&g, 0, 63));
        }
    }
}
