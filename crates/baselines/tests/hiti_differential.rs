//! Differential certification of the flattened server-side precompute
//! builds against the original `HashMap` implementations, reimplemented
//! here verbatim as test oracles.
//!
//! The slot-arena rewrites of [`HiTiIndex`] and [`LandmarkIndex`] claim
//! bit-identical output: the same super-edges with the same materialized
//! path views in the same order, and the same landmark choices with the
//! same distance vectors. These tests check that claim on random grid
//! networks and on zero-weight-tie graphs (where any change in settle
//! order would surface as a different path view), and pin every build to
//! its serial result across thread counts via the `same_tables` /
//! `same_vectors` / `same_flags` certificates.

use proptest::prelude::*;
use spair_baselines::arcflag::ArcFlagIndex;
use spair_baselines::hiti::HiTiIndex;
use spair_baselines::landmark::LandmarkIndex;
use spair_partition::{GridPartition, KdTreePartition, Partitioning};
use spair_roadnet::dijkstra::{dijkstra_full, dijkstra_full_reverse};
use spair_roadnet::generators::small_grid;
use spair_roadnet::{Distance, MinHeap, NodeId, Point, RoadNetwork, DIST_INF};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------
// Legacy HiTi build, copied from the original implementation: HashMap
// grouping, HashSet membership, map-backed restricted Dijkstra, one
// heap `Vec` per super-edge. This is the behavioral oracle.
// ---------------------------------------------------------------------

/// One legacy super-edge: `(from, to, cost, via)`.
type LegacySuperEdge = (NodeId, NodeId, Distance, Vec<NodeId>);

/// Levels (finest first) of legacy super-edges, in emission order.
fn legacy_hiti_levels(
    g: &RoadNetwork,
    side: usize,
    num_levels: usize,
) -> Vec<Vec<LegacySuperEdge>> {
    assert!(side.is_power_of_two());
    let base = GridPartition::build(g, side, side);
    let base_cell: Vec<u16> = g.node_ids().map(|v| base.region_of(v)).collect();
    let mut levels = Vec::with_capacity(num_levels);
    for level in 0..num_levels {
        let cells = side >> level;
        let group_of = |v: NodeId| -> usize {
            let c = base_cell[v as usize] as usize;
            let (x, y) = (c % side, c / side);
            (y >> level) * cells + (x >> level)
        };
        let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for v in g.node_ids() {
            groups.entry(group_of(v)).or_default().push(v);
        }
        let mut group_list: Vec<(usize, Vec<NodeId>)> = groups.into_iter().collect();
        group_list.sort_unstable_by_key(|&(gid, _)| gid);
        let mut super_edges = Vec::new();
        for (_, nodes) in &group_list {
            legacy_group_super_edges(g, nodes, &mut super_edges);
        }
        levels.push(super_edges);
    }
    levels
}

fn legacy_group_super_edges(g: &RoadNetwork, nodes: &[NodeId], out: &mut Vec<LegacySuperEdge>) {
    let inside: HashSet<NodeId> = nodes.iter().copied().collect();
    let borders: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&v| {
            g.out_edges(v).any(|(u, _)| !inside.contains(&u))
                || g.in_edges(v).any(|(u, _)| !inside.contains(&u))
        })
        .collect();
    let border_set: HashSet<NodeId> = borders.iter().copied().collect();
    for &b in &borders {
        for (t, d, via) in legacy_restricted_dijkstra(g, b, &inside) {
            if t != b && border_set.contains(&t) {
                out.push((b, t, d, via));
            }
        }
    }
}

fn legacy_restricted_dijkstra(
    g: &RoadNetwork,
    source: NodeId,
    inside: &HashSet<NodeId>,
) -> Vec<(NodeId, Distance, Vec<NodeId>)> {
    let mut dist: HashMap<NodeId, Distance> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap = MinHeap::new();
    dist.insert(source, 0);
    heap.push(0, source);
    while let Some(e) = heap.pop() {
        let v = e.item;
        if dist.get(&v) != Some(&e.key) {
            continue;
        }
        for (u, w) in g.out_edges(v) {
            if !inside.contains(&u) {
                continue;
            }
            let cand = e.key + w as Distance;
            if dist.get(&u).is_none_or(|&d| cand < d) {
                dist.insert(u, cand);
                parent.insert(u, v);
                heap.push(cand, u);
            }
        }
    }
    let mut reached: Vec<(NodeId, Distance)> = dist.into_iter().collect();
    reached.sort_unstable_by_key(|&(v, _)| v);
    reached
        .into_iter()
        .map(|(v, d)| {
            let mut via = Vec::new();
            let mut cur = v;
            while let Some(&p) = parent.get(&cur) {
                if p == source {
                    break;
                }
                via.push(p);
                cur = p;
            }
            via.reverse();
            (v, d, via)
        })
        .collect()
}

/// Asserts the flattened index equals the legacy oracle, edge for edge
/// and path view for path view, in emission order.
fn assert_hiti_matches_legacy(g: &RoadNetwork, side: usize, num_levels: usize) {
    let flat = HiTiIndex::build(g, side, num_levels);
    let legacy = legacy_hiti_levels(g, side, num_levels);
    assert_eq!(flat.levels.len(), legacy.len(), "level count");
    for (li, (new_level, old_level)) in flat.levels.iter().zip(&legacy).enumerate() {
        assert_eq!(
            new_level.super_edges.len(),
            old_level.len(),
            "level {li}: super-edge count"
        );
        for (ei, (se, (from, to, cost, via))) in
            new_level.super_edges.iter().zip(old_level).enumerate()
        {
            assert_eq!(
                (se.from, se.to, se.cost),
                (*from, *to, *cost),
                "level {li}, edge {ei}"
            );
            assert_eq!(
                new_level.via(se),
                via.as_slice(),
                "level {li}, edge {ei} via"
            );
        }
    }
}

/// A lattice network where most edges have weight zero: every search is
/// tie-saturated, so path views pin the settle order exactly.
fn zero_tie_lattice(k: usize) -> RoadNetwork {
    let mut points = Vec::with_capacity(k * k);
    for y in 0..k {
        for x in 0..k {
            points.push(Point::new(x as f64, y as f64));
        }
    }
    let mut offsets = vec![0u32];
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for y in 0..k {
        for x in 0..k {
            let v = (y * k + x) as NodeId;
            let mut push = |u: NodeId| {
                targets.push(u);
                // Two of every three edges weigh zero.
                weights.push(if (v as usize + targets.len()).is_multiple_of(3) {
                    1
                } else {
                    0
                });
            };
            if x + 1 < k {
                push(v + 1);
            }
            if x > 0 {
                push(v - 1);
            }
            if y + 1 < k {
                push(v + k as NodeId);
            }
            if y > 0 {
                push(v - k as NodeId);
            }
            offsets.push(targets.len() as u32);
        }
    }
    RoadNetwork::from_csr(points, offsets, targets, weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random grid networks: the flattened build must reproduce the
    /// legacy super-edge stream verbatim at every level.
    #[test]
    fn hiti_flat_build_matches_legacy(seed in 0u64..500, wh in 6usize..11) {
        let g = small_grid(wh, wh, seed);
        assert_hiti_matches_legacy(&g, 4, 3);
    }

    /// Thread-count bit-identity on random grids, via the certificate.
    #[test]
    fn hiti_threads_bit_identical(seed in 0u64..200) {
        let g = small_grid(8, 8, seed);
        let one = HiTiIndex::build_with_threads(&g, 4, 2, 1);
        for t in [2, 3, 8] {
            let multi = HiTiIndex::build_with_threads(&g, 4, 2, t);
            prop_assert!(one.same_tables(&multi), "threads={t}");
        }
    }
}

/// Zero-weight ties everywhere: any divergence in heap tie-breaking or
/// relaxation order between the flat and map-backed builds would change
/// a path view here.
#[test]
fn hiti_zero_weight_ties_match_legacy() {
    for k in [6, 9, 12] {
        let g = zero_tie_lattice(k);
        assert_hiti_matches_legacy(&g, 4, 2);
        let one = HiTiIndex::build_with_threads(&g, 4, 2, 1);
        for t in [2, 5] {
            assert!(
                one.same_tables(&HiTiIndex::build_with_threads(&g, 4, 2, t)),
                "k={k} threads={t}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Legacy Landmark build: fresh full-Dijkstra trees per landmark (the
// pre-workspace implementation), serial.
// ---------------------------------------------------------------------

fn legacy_landmark_build(g: &RoadNetwork, k: usize) -> LandmarkIndex {
    let n = g.num_nodes();
    let mut landmarks = Vec::with_capacity(k);
    let t0 = dijkstra_full(g, 0);
    let first = g
        .node_ids()
        .filter(|&v| t0.reachable(v))
        .max_by_key(|&v| t0.distance(v))
        .unwrap_or(0);
    landmarks.push(first);
    let mut to_landmark = vec![DIST_INF; n * k];
    let mut from_landmark = vec![DIST_INF; n * k];
    let mut min_dist = vec![Distance::MAX; n];
    for i in 0..k {
        let l = landmarks[i];
        let fwd = dijkstra_full(g, l);
        let rev = dijkstra_full_reverse(g, l);
        for v in g.node_ids() {
            from_landmark[v as usize * k + i] = fwd.distance(v);
            to_landmark[v as usize * k + i] = rev.distance(v);
            if fwd.distance(v) != DIST_INF {
                min_dist[v as usize] = min_dist[v as usize].min(fwd.distance(v));
            }
        }
        if i + 1 < k {
            let next = g
                .node_ids()
                .filter(|&v| min_dist[v as usize] != Distance::MAX)
                .max_by_key(|&v| min_dist[v as usize])
                .unwrap_or(l);
            landmarks.push(next);
        }
    }
    LandmarkIndex {
        landmarks,
        to_landmark,
        from_landmark,
        precompute_secs: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The workspace-backed landmark build must choose the same
    /// landmarks and produce the same distance vectors as fresh
    /// per-landmark Dijkstra trees.
    #[test]
    fn landmark_build_matches_legacy(seed in 0u64..500, k in 1usize..6) {
        let g = small_grid(8, 8, seed);
        let flat = LandmarkIndex::build(&g, k);
        let legacy = legacy_landmark_build(&g, k);
        prop_assert!(flat.same_vectors(&legacy));
    }
}

/// Landmark selection on a tie-saturated lattice (many nodes share the
/// same max distance) must still match: both builds break the farthest
/// tie by the same `max_by_key` scan over ascending node ids.
#[test]
fn landmark_zero_weight_ties_match_legacy() {
    let g = zero_tie_lattice(10);
    let flat = LandmarkIndex::build(&g, 4);
    let legacy = legacy_landmark_build(&g, 4);
    assert!(flat.same_vectors(&legacy));
}

// ---------------------------------------------------------------------
// ArcFlag: already flat (workspace scratch + OR-merge); pin the
// thread-count invariance with its certificate.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flag words must be identical for every worker count.
    #[test]
    fn arcflag_threads_bit_identical(seed in 0u64..200) {
        let g = small_grid(8, 8, seed);
        let part = KdTreePartition::build(&g, 8);
        let one = ArcFlagIndex::build_with_threads(&g, &part, 1);
        for t in [2, 3, 8] {
            let multi = ArcFlagIndex::build_with_threads(&g, &part, t);
            prop_assert!(one.same_flags(&multi), "threads={t}");
        }
    }
}
