//! Supervision properties under the fault model:
//!
//! 1. **bounded recovery, never wrong** — for *arbitrary* seeded fault
//!    plans (every fault class, arbitrary rates/periods/windows), every
//!    registry method's supervised sessions terminate within the attempt
//!    budget and the packet ceiling — no livelock — and never contradict
//!    the serial Dijkstra oracle: give-ups are typed, classified, and
//!    counted;
//! 2. **transparency** — on a lossless channel with `FaultPlan::none()`,
//!    a supervised session is byte-identical to the unsupervised client
//!    (same distance, path and packet/memory stats, exactly one
//!    attempt), so supervision costs nothing when nothing goes wrong.

use proptest::prelude::*;
use spair_broadcast::{BroadcastChannel, FaultPlan, LossModel};
use spair_core::{supervise, AttemptReport, RecoveryBudget, SessionOutcome};
use spair_sim::{
    run_fault_cell, FaultSpec, GraphSpec, MethodRegistry, ScenarioContext, ScenarioSpec, WorkItem,
    WorkloadMix,
};

/// Same budget the fault matrix certifies against.
const BUDGET: RecoveryBudget = RecoveryBudget::standard();

/// Maps proptest draws onto one of the five fault classes. Rates are
/// kept in ranges where the channel still delivers *something* (the
/// supervisor's give-up is typed either way, but all-noise cells would
/// only ever exercise the `BudgetExhausted` path).
fn arbitrary_fault(which: u8, rate: f64, mean_cycles: f64, window: u64) -> FaultSpec {
    match which % 5 {
        0 => FaultSpec::Corruption { rate },
        1 => FaultSpec::Duplication { rate },
        2 => FaultSpec::Restarts {
            mean_cycles,
            stale_rate: rate / 2.0,
        },
        3 => FaultSpec::CorrelatedLoss { rate, window },
        _ => FaultSpec::Chaos {
            rate: rate / 4.0,
            mean_cycles,
        },
    }
}

fn chaos_spec(seed: u64, fault: FaultSpec) -> ScenarioSpec {
    let mut s = ScenarioSpec::small("prop-chaos", seed);
    s.graph = GraphSpec::Grid {
        width: 8,
        height: 8,
    };
    s.workload = WorkloadMix {
        point_to_point: 2,
        on_edge: 1,
        knn: 1,
        k: 2,
    };
    s.fault = fault;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property 1: the chaos certificate holds for arbitrary plans, not
    /// just the curated matrix — every registry method, every fault
    /// class, fuzzed parameters.
    #[test]
    fn supervised_sessions_stay_within_budget_under_arbitrary_faults(
        seed in any::<u64>(),
        which in 0u8..5,
        rate in 0.0f64..0.25,
        mean_cycles in 2.0f64..32.0,
        window in 1u64..48,
    ) {
        let fault = arbitrary_fault(which, rate, mean_cycles, window);
        let methods = MethodRegistry::standard().all();
        let ctx = ScenarioContext::build(&chaos_spec(seed, fault), &methods);
        for &m in &methods {
            let r = run_fault_cell(&ctx, m);
            prop_assert_eq!(
                r.wrong_answers, 0,
                "{} contradicted the oracle under {}", m.name(), r.fault
            );
            prop_assert_eq!(
                r.budget_violations, 0,
                "{} blew the recovery budget under {} (max {} attempts, {} pkts)",
                m.name(), r.fault, r.max_attempts, r.max_recovery_packets
            );
            prop_assert!(
                r.max_attempts <= BUDGET.max_attempts,
                "{}: {} attempts on one session", m.name(), r.max_attempts
            );
            // Every give-up is typed AND classified — nothing vanishes.
            prop_assert_eq!(
                r.typed_failures,
                r.failure_classes.iter().map(|(_, n)| n).sum::<usize>()
            );
            prop_assert_eq!(r.answered + r.typed_failures, r.queries);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 2: supervision is transparent when nothing goes wrong —
    /// lossless + `FaultPlan::none()` replays the unsupervised session
    /// byte-for-byte, in exactly one attempt, for every air method and
    /// arbitrary tune-in offsets.
    #[test]
    fn fault_free_supervision_is_byte_transparent(
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let methods = MethodRegistry::standard().air_methods();
        let ctx = ScenarioContext::build(&chaos_spec(seed, FaultSpec::None), &methods);
        for &m in &methods {
            let cycle = ctx.cycle(m).expect("air program built");
            let mut supervised = ctx.client(m).expect("air client");
            let mut raw = ctx.client(m).expect("air client");
            for (qi, item) in ctx.workload.iter().enumerate() {
                let WorkItem::P2p { query, .. } = item else { continue };
                let offset = ((salt ^ qi as u64) % cycle.len() as u64) as usize;
                let s = supervise(BUDGET, cycle.len(), |_| {
                    let mut ch = BroadcastChannel::tune_in_with_faults(
                        cycle,
                        offset,
                        LossModel::Lossless,
                        FaultPlan::none(),
                    );
                    let result = supervised.query(&mut ch, query);
                    (result, AttemptReport::of(&ch, (0, 0)))
                });
                let mut ch = BroadcastChannel::tune_in(cycle, offset, LossModel::Lossless);
                let want = raw.query(&mut ch, query).expect("lossless session");
                prop_assert_eq!(s.attempts, 1, "{}: fault-free retried", m.name());
                match s.outcome {
                    SessionOutcome::Answered(got) => {
                        prop_assert_eq!(got.distance, want.distance);
                        prop_assert_eq!(&got.path, &want.path);
                        prop_assert_eq!(got.stats.tuning_packets, want.stats.tuning_packets);
                        prop_assert_eq!(got.stats.latency_packets, want.stats.latency_packets);
                        prop_assert_eq!(got.stats.sleep_packets, want.stats.sleep_packets);
                        prop_assert_eq!(got.stats.peak_memory_bytes, want.stats.peak_memory_bytes);
                    }
                    other => prop_assert!(
                        false,
                        "{}: lossless fault-free session must answer, got {:?}",
                        m.name(),
                        other.failed()
                    ),
                }
            }
        }
    }
}
