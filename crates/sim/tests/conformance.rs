//! Conformance properties of the scenario engine:
//!
//! 1. under lossless channels, every client method's distance exactly
//!    equals the serial Dijkstra oracle, for random seeds;
//! 2. under lossy channels (Bernoulli and bursty) answers stay exact and
//!    per-query access latency is bounded by a small retry-cycle budget —
//!    far below the clients' §6.2 abort guard of 100 cycles;
//! 3. a `ScenarioSpec` run is reproducible byte-for-byte from its seed,
//!    independent of thread count.

use proptest::prelude::*;
use spair_sim::{
    run_matrix, ConformanceMatrix, GraphSpec, LossSpec, MethodId, MethodRegistry, PartitionerKind,
    ScenarioSpec, WorkloadMix,
};

/// Every registered method — the matrix column set now comes from the
/// registry, so newly registered methods are conformance-tested with
/// zero edits here.
fn all_methods() -> Vec<MethodId> {
    MethodRegistry::standard().all()
}

/// Retry-cycle budgets: generous multiples of the observed worst cases,
/// yet far below `MAX_RETRY_CYCLES` (100) — a regression here means a
/// client started needing materially more cycles to finish.
const P2P_BUDGET_CYCLES: u64 = 16;
const ONEDGE_BUDGET_CYCLES: u64 = 64; // up to 4 sub-queries per item
const KNN_BUDGET_CYCLES: u64 = 32;

fn tiny_spec(name: &str, seed: u64) -> ScenarioSpec {
    let mut s = ScenarioSpec::small(name, seed);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.workload = WorkloadMix {
        point_to_point: 3,
        on_edge: 1,
        knn: 1,
        k: 2,
    };
    s
}

fn assert_latency_bounded(m: &ConformanceMatrix) {
    for c in &m.cells {
        let cycle = c.cycle_packets as u64;
        assert!(
            c.max_p2p_latency_packets <= P2P_BUDGET_CYCLES * cycle,
            "{} {}: p2p latency {} packets vs {} cycle budget of {}",
            c.scenario,
            c.method,
            c.max_p2p_latency_packets,
            P2P_BUDGET_CYCLES,
            cycle,
        );
        assert!(
            c.max_onedge_latency_packets <= ONEDGE_BUDGET_CYCLES * cycle,
            "{} {}: on-edge latency {} packets vs budget",
            c.scenario,
            c.method,
            c.max_onedge_latency_packets,
        );
        assert!(
            c.max_knn_latency_packets <= KNN_BUDGET_CYCLES * cycle,
            "{} {}: knn latency {} packets vs budget",
            c.scenario,
            c.method,
            c.max_knn_latency_packets,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) Lossless: every method is exact for random seeds, on both
    /// partitioners.
    #[test]
    fn every_method_matches_oracle_lossless(seed in 0u64..10_000) {
        let mut spec = tiny_spec("prop-lossless", seed);
        spec.partitioner = if seed % 2 == 0 {
            PartitionerKind::KdMedian
        } else {
            PartitionerKind::UniformGrid
        };
        let methods = all_methods();
        let m = run_matrix(&[spec], &methods, 1);
        prop_assert_eq!(m.cells.len(), methods.len());
        prop_assert!(m.all_exact(), "mismatches: {}", m.total_mismatches());
    }

    /// (b) Lossy channels: still exact, latency within the retry budget.
    #[test]
    fn lossy_channels_stay_exact_with_bounded_latency(
        seed in 0u64..10_000,
        bursty in 0u8..2,
    ) {
        let mut spec = tiny_spec("prop-lossy", seed);
        spec.loss = if bursty == 1 {
            LossSpec::Bursty { rate: 0.08, burst: 6.0 }
        } else {
            LossSpec::Bernoulli { rate: 0.08 }
        };
        let m = run_matrix(&[spec], &all_methods(), 1);
        prop_assert!(m.all_exact(), "mismatches: {}", m.total_mismatches());
        assert_latency_bounded(&m);
    }
}

/// (c) Byte-for-byte reproducibility: same seed => identical
/// deterministic JSON and digest, for 1 vs 4 threads and across repeated
/// runs in the same process.
#[test]
fn runs_are_reproducible_byte_for_byte_across_thread_counts() {
    let specs = [tiny_spec("repro-a", 42), {
        let mut s = tiny_spec("repro-b", 43);
        s.loss = LossSpec::Bursty {
            rate: 0.05,
            burst: 8.0,
        };
        s.partitioner = PartitionerKind::UniformGrid;
        s
    }];
    let methods = all_methods();
    let serial = run_matrix(&specs, &methods, 1);
    let serial_again = run_matrix(&specs, &methods, 1);
    let parallel = run_matrix(&specs, &methods, 4);
    assert_eq!(
        serial.to_json(false),
        serial_again.to_json(false),
        "two serial runs diverged"
    );
    assert_eq!(
        serial.to_json(false),
        parallel.to_json(false),
        "parallel run diverged from serial"
    );
    assert_eq!(serial.digest(), parallel.digest());
    assert!(serial.all_exact());
}

/// A different seed must actually change the workload (the digest is not
/// vacuously constant).
#[test]
fn digest_depends_on_the_seed() {
    let a = run_matrix(&[tiny_spec("s", 1)], &[MethodId::NR, MethodId::DJ], 1);
    let b = run_matrix(&[tiny_spec("s", 2)], &[MethodId::NR, MethodId::DJ], 1);
    assert_ne!(a.digest(), b.digest());
}

/// Trait-vs-old-enum behavior neutrality: the registry refactor must not
/// move a single byte of the nine legacy methods' cells. The default
/// matrix restricted to them reproduces the digest committed in
/// `BENCH_scenarios.json` *before* the refactor (when those nine were
/// the whole column set). Slow in debug builds, so the full check runs
/// in release (CI's sim-conformance lane); debug runs the smoke matrix
/// against its own frozen pre-refactor digest.
#[test]
fn legacy_nine_method_digests_are_unchanged_by_the_registry() {
    let legacy: Vec<MethodId> = [
        "nr",
        "eb",
        "dj",
        "ld",
        "af",
        "spq_air",
        "hiti_air",
        "nr_mem_bound",
        "knn_air",
    ]
    .iter()
    .map(|n| MethodRegistry::standard().get(n).unwrap())
    .collect();
    // Smoke matrix: digest recorded from the pre-refactor enum engine.
    let smoke = run_matrix(&spair_sim::smoke_matrix(), &legacy, 2);
    assert!(smoke.all_exact());
    assert_eq!(
        smoke.digest(),
        0x67be_06b5_041d_e670,
        "smoke-matrix legacy digest drifted"
    );
    // Default matrix: the digest committed in BENCH_scenarios.json for
    // PR 4, whose column set was exactly these nine methods.
    if !cfg!(debug_assertions) {
        let default = run_matrix(&spair_sim::default_matrix(), &legacy, 2);
        assert!(default.all_exact());
        assert_eq!(
            default.digest(),
            0x8a6f_7c37_dd62_0807,
            "default-matrix legacy digest drifted"
        );
    }
}

/// The queue policy must not change any answer: the same scenario run
/// under Heap, Bucket and Auto yields identical distances (exactness
/// everywhere) — the ROADMAP item this crate closes.
#[test]
fn queue_policy_never_changes_answers() {
    use spair_roadnet::QueuePolicy;
    for policy in [QueuePolicy::Heap, QueuePolicy::Bucket, QueuePolicy::Auto] {
        let mut spec = tiny_spec("queue", 77);
        spec.queue = policy;
        let m = run_matrix(&[spec], &all_methods(), 1);
        assert!(
            m.all_exact(),
            "{policy:?}: mismatches {}",
            m.total_mismatches()
        );
    }
}
