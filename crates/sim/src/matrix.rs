//! Canned scenario matrices: the default trajectory matrix behind
//! `BENCH_scenarios.json` and the small CI smoke gate.

use crate::spec::{GraphSpec, LossSpec, PartitionerKind, ScenarioSpec, WorkloadMix};
use spair_roadnet::{NetworkPreset, QueuePolicy};

/// The default conformance matrix: eight scenarios covering all three
/// loss models, both partitioners, three query kinds and all three queue
/// policies, over grid-topology networks plus a scaled Milan preset
/// (realistic weight distribution, which exercises the depth-aware
/// `QueuePolicy::Auto` split).
pub fn default_matrix() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();

    let mut s = ScenarioSpec::small("grid12-kd-lossless", 101);
    specs.push(s);

    s = ScenarioSpec::small("grid12-grid-lossless", 102);
    s.partitioner = PartitionerKind::UniformGrid;
    specs.push(s);

    s = ScenarioSpec::small("grid14-kd-bernoulli1", 103);
    s.graph = GraphSpec::Grid {
        width: 14,
        height: 14,
    };
    s.loss = LossSpec::Bernoulli { rate: 0.01 };
    specs.push(s);

    s = ScenarioSpec::small("grid14-grid-bernoulli5", 104);
    s.graph = GraphSpec::Grid {
        width: 14,
        height: 14,
    };
    s.partitioner = PartitionerKind::UniformGrid;
    s.loss = LossSpec::Bernoulli { rate: 0.05 };
    specs.push(s);

    s = ScenarioSpec::small("grid16-kd-bursty5", 105);
    s.graph = GraphSpec::Grid {
        width: 16,
        height: 16,
    };
    s.loss = LossSpec::Bursty {
        rate: 0.05,
        burst: 8.0,
    };
    specs.push(s);

    s = ScenarioSpec::small("milan04-kd-lossless", 106);
    s.graph = GraphSpec::Preset {
        preset: NetworkPreset::Milan,
        scale: 0.04,
    };
    s.workload = WorkloadMix {
        point_to_point: 6,
        on_edge: 2,
        knn: 2,
        k: 3,
    };
    specs.push(s);

    s = ScenarioSpec::small("grid10-kd-bursty10-heap", 107);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.loss = LossSpec::Bursty {
        rate: 0.10,
        burst: 4.0,
    };
    s.queue = QueuePolicy::Heap;
    specs.push(s);

    s = ScenarioSpec::small("grid10-grid-bernoulli10-bucket", 108);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.partitioner = PartitionerKind::UniformGrid;
    s.loss = LossSpec::Bernoulli { rate: 0.10 };
    s.queue = QueuePolicy::Bucket;
    specs.push(s);

    specs
}

/// The nightly matrix: everything in [`default_matrix`] plus paper-scale
/// scenarios — the full Germany network of Table 2 ("Germany @ 1.0",
/// closing the ROADMAP nightly open item) under both a lossless and a
/// lossy channel. Too slow for the per-push smoke gate; the
/// `nightly.yml` workflow runs it on a cron schedule.
pub fn nightly_matrix() -> Vec<ScenarioSpec> {
    let mut specs = default_matrix();

    let mut s = ScenarioSpec::small("germany10-kd-lossless", 301);
    s.graph = GraphSpec::Preset {
        preset: NetworkPreset::Germany,
        scale: 1.0,
    };
    s.regions = 64;
    s.workload = WorkloadMix {
        point_to_point: 4,
        on_edge: 2,
        knn: 2,
        k: 3,
    };
    specs.push(s);

    s = ScenarioSpec::small("germany10-grid-bernoulli1", 302);
    s.graph = GraphSpec::Preset {
        preset: NetworkPreset::Germany,
        scale: 1.0,
    };
    s.partitioner = PartitionerKind::UniformGrid;
    s.regions = 64;
    s.loss = LossSpec::Bernoulli { rate: 0.01 };
    s.workload = WorkloadMix {
        point_to_point: 3,
        on_edge: 1,
        knn: 1,
        k: 3,
    };
    specs.push(s);

    specs
}

/// The CI smoke gate: three fast scenarios, one per loss model, both
/// partitioners represented.
pub fn smoke_matrix() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();

    let mut s = ScenarioSpec::small("smoke-kd-lossless", 201);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.workload = WorkloadMix {
        point_to_point: 4,
        on_edge: 2,
        knn: 2,
        k: 2,
    };
    specs.push(s.clone());

    s.name = "smoke-grid-bernoulli5".into();
    s.seed = 202;
    s.partitioner = PartitionerKind::UniformGrid;
    s.loss = LossSpec::Bernoulli { rate: 0.05 };
    specs.push(s.clone());

    s.name = "smoke-kd-bursty5".into();
    s.seed = 203;
    s.partitioner = PartitionerKind::KdMedian;
    s.loss = LossSpec::Bursty {
        rate: 0.05,
        burst: 6.0,
    };
    specs.push(s);

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_covers_the_acceptance_axes() {
        let specs = default_matrix();
        assert!(specs.len() >= 6);
        assert!(specs.iter().any(|s| matches!(s.loss, LossSpec::Lossless)));
        assert!(specs
            .iter()
            .any(|s| matches!(s.loss, LossSpec::Bernoulli { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.loss, LossSpec::Bursty { .. })));
        assert!(specs
            .iter()
            .any(|s| s.partitioner == PartitionerKind::KdMedian));
        assert!(specs
            .iter()
            .any(|s| s.partitioner == PartitionerKind::UniformGrid));
        // >= 2 query kinds in every scenario.
        for s in &specs {
            assert!(
                s.workload.point_to_point > 0 && s.workload.on_edge > 0,
                "{}",
                s.name
            );
        }
        // Unique names and seeds.
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn nightly_matrix_extends_default_with_paper_scale() {
        let nightly = nightly_matrix();
        let default = default_matrix();
        assert!(nightly.len() > default.len());
        // The paper-scale Germany scenarios close the ROADMAP open item.
        let at_scale: Vec<&ScenarioSpec> = nightly
            .iter()
            .filter(|s| {
                matches!(
                    s.graph,
                    GraphSpec::Preset {
                        preset: NetworkPreset::Germany,
                        scale,
                    } if scale == 1.0
                )
            })
            .collect();
        assert!(at_scale.len() >= 2);
        assert!(at_scale.iter().any(|s| s.loss.is_lossy()));
        assert!(at_scale.iter().any(|s| !s.loss.is_lossy()));
        // Unique names and seeds across the whole nightly set.
        let mut names: Vec<&str> = nightly.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), nightly.len());
    }

    #[test]
    fn smoke_matrix_covers_all_loss_models() {
        let specs = smoke_matrix();
        assert!(specs.len() >= 3);
        assert!(specs.iter().any(|s| !s.loss.is_lossy()));
        assert!(specs
            .iter()
            .any(|s| matches!(s.loss, LossSpec::Bernoulli { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.loss, LossSpec::Bursty { .. })));
    }
}
