//! Chaos-matrix certification: **never wrong — only late, or typed**.
//!
//! The conformance engine ([`crate::engine`]) certifies exactness under
//! packet *loss*; this module certifies graceful degradation under the
//! full fault model of `spair_broadcast::fault` — bit corruption,
//! duplicated and stale-version frames, server restarts and correlated
//! window loss. Every (scenario × fault × method) cell drives the whole
//! workload through [`spair_core::supervise`]d sessions with a hard
//! [`RecoveryBudget`] and checks three properties per work item:
//!
//! 1. **never wrong** — a produced answer matches the serial Dijkstra
//!    oracle exactly (distance *and* a valid path);
//! 2. **every failure is typed** — give-ups surface as
//!    [`SessionError`](spair_core::SessionError) values with stable class labels, broken down per
//!    cell;
//! 3. **recovery stays within budget** — no session exceeds the attempt
//!    budget, and total recovery latency stays under the packet ceiling
//!    plus at most one attempt's overshoot (no livelock).
//!
//! Cells fan out across threads with the same chunk-ordered map-reduce
//! the conformance matrix uses, so a [`FaultMatrix`] — and its digest —
//! is bit-identical for every thread count.

use crate::engine::{path_is_valid, session_seed, splitmix64, ScenarioContext, WorkItem};
use crate::spec::{FaultSpec, GraphSpec, LossSpec, ScenarioSpec, TuneInSpec, WorkloadMix};
use spair_broadcast::{BroadcastChannel, BroadcastCycle};
use spair_core::{
    on_edge_query, supervise, AttemptReport, Query, QueryError, RecoveryBudget, SessionOutcome,
};
use spair_methods::{MethodId, MethodProgram};
use spair_roadnet::{parallel, Distance};
use std::collections::BTreeMap;

/// The budget every supervised session in the fault matrix runs under.
pub const FAULT_BUDGET: RecoveryBudget = RecoveryBudget::standard();

/// Aggregated result of one (scenario × fault × method) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCellReport {
    /// Scenario name (matrix row).
    pub scenario: String,
    /// Fault-spec label (matrix plane).
    pub fault: String,
    /// Method name (matrix column).
    pub method: &'static str,
    /// Work items run.
    pub queries: usize,
    /// Items answered — each provably from a taint-free session and
    /// verified against the oracle.
    pub answered: usize,
    /// Answers (or unreachability verdicts) that contradicted the
    /// oracle. The certificate requires 0.
    pub wrong_answers: usize,
    /// Items that ended in a typed [`SessionError`](spair_core::SessionError) give-up.
    pub typed_failures: usize,
    /// Root-cause failure-class breakdown (`class → count`), sorted by
    /// class label.
    pub failure_classes: Vec<(String, usize)>,
    /// Supervised attempts across all sessions.
    pub attempts: u64,
    /// Worst single session's attempt count.
    pub max_attempts: u32,
    /// Sessions that blew the attempt budget or the packet ceiling
    /// (with its one-attempt overshoot allowance). The certificate
    /// requires 0.
    pub budget_violations: usize,
    /// Total packets elapsed across every attempt of every session —
    /// the recovery latency a population would wait.
    pub recovery_packets: u64,
    /// Worst single session's recovery latency in packets.
    pub max_recovery_packets: u64,
}

impl FaultCellReport {
    /// The per-cell certificate: zero wrong answers, every failure typed
    /// (structural), every session within budget.
    pub fn certified(&self) -> bool {
        self.wrong_answers == 0 && self.budget_violations == 0
    }

    fn json_fields(&self) -> String {
        let classes: Vec<String> = self
            .failure_classes
            .iter()
            .map(|(c, n)| format!("\"{c}\": {n}"))
            .collect();
        format!(
            "\"scenario\": \"{}\", \"fault\": \"{}\", \"method\": \"{}\", \
             \"queries\": {}, \"answered\": {}, \"wrong_answers\": {}, \
             \"typed_failures\": {}, \"failure_classes\": {{{}}}, \
             \"attempts\": {}, \"max_attempts\": {}, \"budget_violations\": {}, \
             \"recovery_packets\": {}, \"max_recovery_packets\": {}, \
             \"certified\": {}",
            self.scenario,
            self.fault,
            self.method,
            self.queries,
            self.answered,
            self.wrong_answers,
            self.typed_failures,
            classes.join(", "),
            self.attempts,
            self.max_attempts,
            self.budget_violations,
            self.recovery_packets,
            self.max_recovery_packets,
            self.certified(),
        )
    }
}

/// The full chaos matrix of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMatrix {
    /// Every (scenario × fault × method) cell, in scenario-major order.
    pub cells: Vec<FaultCellReport>,
}

impl FaultMatrix {
    /// Whether every cell certifies — the chaos gate.
    pub fn all_certified(&self) -> bool {
        self.cells.iter().all(FaultCellReport::certified)
    }

    /// Total oracle contradictions across the matrix.
    pub fn total_wrong(&self) -> usize {
        self.cells.iter().map(|c| c.wrong_answers).sum()
    }

    /// Total typed give-ups across the matrix.
    pub fn total_typed_failures(&self) -> usize {
        self.cells.iter().map(|c| c.typed_failures).sum()
    }

    /// FNV-1a digest over the (fully deterministic) serialized cells.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serializes the matrix. Every field is a pure function of the
    /// scenario seeds, so the output is byte-for-byte reproducible.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&c.json_fields());
            out.push_str(" }");
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// A fixed-width text table (one row per cell) for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<24} {:<20} {:<13} {:>3} {:>4} {:>5} {:>5} {:>4} {:>9} {:>5}\n",
            "Scenario", "Fault", "Method", "Q", "Ans", "Wrong", "Typed", "Att", "RecovPkts", "Cert"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<24} {:<20} {:<13} {:>3} {:>4} {:>5} {:>5} {:>4} {:>9} {:>5}\n",
                c.scenario,
                c.fault,
                c.method,
                c.queries,
                c.answered,
                c.wrong_answers,
                c.typed_failures,
                c.attempts,
                c.recovery_packets,
                if c.certified() { "yes" } else { "NO" },
            ));
        }
        out
    }
}

/// Per-cell accumulation state.
struct FaultAcc {
    queries: usize,
    answered: usize,
    wrong_answers: usize,
    typed_failures: usize,
    classes: BTreeMap<&'static str, usize>,
    attempts: u64,
    max_attempts: u32,
    budget_violations: usize,
    recovery_packets: u64,
    max_recovery_packets: u64,
}

impl FaultAcc {
    fn new() -> Self {
        Self {
            queries: 0,
            answered: 0,
            wrong_answers: 0,
            typed_failures: 0,
            classes: BTreeMap::new(),
            attempts: 0,
            max_attempts: 0,
            budget_violations: 0,
            recovery_packets: 0,
            max_recovery_packets: 0,
        }
    }

    /// Folds one supervised session's cost into the cell, checking the
    /// budget certificate: attempts within the hard attempt budget, and
    /// recovery latency within the packet ceiling plus one attempt's
    /// overshoot (the supervisor only checks the ceiling *between*
    /// attempts, and each attempt is itself bounded by the clients' own
    /// `MAX_RETRY_CYCLES` guard).
    fn session_cost(&mut self, attempts: u32, recovery: u64, cycle_len: usize) {
        self.attempts += u64::from(attempts);
        self.max_attempts = self.max_attempts.max(attempts);
        self.recovery_packets += recovery;
        self.max_recovery_packets = self.max_recovery_packets.max(recovery);
        let ceiling = FAULT_BUDGET.packet_budget(cycle_len).saturating_mul(2);
        if attempts > FAULT_BUDGET.max_attempts || recovery > ceiling {
            self.budget_violations += 1;
        }
    }

    fn item_failed(&mut self, class: &'static str) {
        self.typed_failures += 1;
        *self.classes.entry(class).or_insert(0) += 1;
    }

    fn into_report(self, ctx: &ScenarioContext, method: MethodId) -> FaultCellReport {
        FaultCellReport {
            scenario: ctx.spec.name.clone(),
            fault: ctx.spec.fault.label(),
            method: method.name(),
            queries: self.queries,
            answered: self.answered,
            wrong_answers: self.wrong_answers,
            typed_failures: self.typed_failures,
            failure_classes: self
                .classes
                .into_iter()
                .map(|(c, n)| (c.to_string(), n))
                .collect(),
            attempts: self.attempts,
            max_attempts: self.max_attempts,
            budget_violations: self.budget_violations,
            recovery_packets: self.recovery_packets,
            max_recovery_packets: self.max_recovery_packets,
        }
    }
}

/// Derives the `k`-th attempt's seed. Attempt 0 reuses the base session
/// seed (so a fault-free supervised run draws the exact streams of the
/// unsupervised engine); re-tunes draw fresh offsets, loss streams and
/// fault plans — a client re-tuning at a different moment.
fn attempt_seed(base: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        base
    } else {
        splitmix64(base ^ u64::from(attempt))
    }
}

fn open_fault_channel<'a>(
    ctx: &'a ScenarioContext,
    cycle: &'a BroadcastCycle,
    seed: u64,
) -> BroadcastChannel<'a> {
    let offset = match ctx.spec.tune_in {
        TuneInSpec::Start => 0,
        TuneInSpec::Uniform => (splitmix64(seed) % cycle.len() as u64) as usize,
    };
    BroadcastChannel::tune_in_with_faults(
        cycle,
        offset,
        ctx.spec.loss.model(splitmix64(seed ^ 0x10C5)),
        ctx.spec.fault.plan(splitmix64(seed ^ 0xFA17), cycle.len()),
    )
}

/// Runs one (scenario × fault × method) cell: the full workload through
/// supervised sessions, every answer verified against the oracle,
/// every give-up classified. Dispatch mirrors the conformance engine's
/// capability dispatch; channel-less methods have no channel to fault
/// and certify trivially through their local pipeline.
pub fn run_fault_cell(ctx: &ScenarioContext, method: MethodId) -> FaultCellReport {
    let d = method.descriptor();
    match ctx.program(method) {
        Err(_) => {
            // No program: an empty, uncertifiable-free cell (no queries
            // ran, nothing to certify wrong).
            FaultAcc::new().into_report(ctx, method)
        }
        Ok(_) if d.knn => run_knn_fault_cell(ctx, method),
        Ok(program) if !d.air_client => run_local_fault_cell(ctx, method, program),
        Ok(_) => run_air_fault_cell(ctx, method),
    }
}

fn run_air_fault_cell(ctx: &ScenarioContext, method: MethodId) -> FaultCellReport {
    let cycle = ctx.cycle(method).expect("air program built");
    let mut client = ctx.client(method).expect("air client");
    let g = ctx.g();
    let mut acc = FaultAcc::new();
    for (qi, item) in ctx.workload.iter().enumerate() {
        match item {
            WorkItem::P2p { query, oracle } => {
                acc.queries += 1;
                let base = session_seed(ctx.spec.seed, method, qi, 0);
                let sup = supervise(FAULT_BUDGET, cycle.len(), |k| {
                    let mut ch = open_fault_channel(ctx, cycle, attempt_seed(base, k));
                    let result = client.query(&mut ch, query);
                    (result, AttemptReport::of(&ch, (0, 0)))
                });
                acc.session_cost(sup.attempts, sup.recovery_packets, cycle.len());
                match sup.outcome {
                    SessionOutcome::Answered(out) => {
                        acc.answered += 1;
                        let ok = out.distance == *oracle
                            && path_is_valid(
                                g,
                                query.source,
                                query.target,
                                out.distance,
                                &out.path,
                            );
                        if !ok {
                            acc.wrong_answers += 1;
                        }
                    }
                    // Workload oracles are reachable by construction, so
                    // a (trusted) unreachability verdict contradicts them.
                    SessionOutcome::Unreachable => acc.wrong_answers += 1,
                    SessionOutcome::Failed(e) => acc.item_failed(e.root_class()),
                }
            }
            WorkItem::OnEdge { src, dst, oracle } => {
                acc.queries += 1;
                let mut sub = 0usize;
                let mut failure: Option<&'static str> = None;
                let result = on_edge_query(src, dst, |q: &Query| {
                    sub += 1;
                    let base = session_seed(ctx.spec.seed, method, qi, sub);
                    let sup = supervise(FAULT_BUDGET, cycle.len(), |k| {
                        let mut ch = open_fault_channel(ctx, cycle, attempt_seed(base, k));
                        let result = client.query(&mut ch, q);
                        (result, AttemptReport::of(&ch, (0, 0)))
                    });
                    acc.session_cost(sup.attempts, sup.recovery_packets, cycle.len());
                    match sup.outcome {
                        SessionOutcome::Answered(out) => Ok(out),
                        SessionOutcome::Unreachable => Err(QueryError::Unreachable),
                        SessionOutcome::Failed(e) => {
                            failure.get_or_insert(e.root_class());
                            Err(QueryError::Aborted("supervised sub-session gave up"))
                        }
                    }
                });
                match (result, failure) {
                    (Ok(out), _) => {
                        acc.answered += 1;
                        if out.distance != *oracle {
                            acc.wrong_answers += 1;
                        }
                    }
                    // At least one endpoint session gave up typed — the
                    // composite item degrades to that typed failure.
                    (Err(_), Some(class)) => acc.item_failed(class),
                    // No sub-session failed, yet the composite found no
                    // path: a wrong unreachability verdict.
                    (Err(_), None) => acc.wrong_answers += 1,
                }
            }
            WorkItem::Knn { .. } => {}
        }
    }
    acc.into_report(ctx, method)
}

fn run_knn_fault_cell(ctx: &ScenarioContext, method: MethodId) -> FaultCellReport {
    let program = ctx.program(method).expect("knn program built");
    let cycle = program.cycle().expect("knn methods broadcast a cycle");
    let mut client = program.make_knn_client().expect("knn client");
    let mut acc = FaultAcc::new();
    for (qi, item) in ctx.workload.iter().enumerate() {
        let WorkItem::Knn {
            source,
            source_pt,
            k,
            oracle,
        } = item
        else {
            continue;
        };
        acc.queries += 1;
        let base = session_seed(ctx.spec.seed, method, qi, 0);
        let sup = supervise(FAULT_BUDGET, cycle.len(), |a| {
            let mut ch = open_fault_channel(ctx, cycle, attempt_seed(base, a));
            let result = client.query(&mut ch, *source, *source_pt, *k);
            (result, AttemptReport::of(&ch, (0, 0)))
        });
        acc.session_cost(sup.attempts, sup.recovery_packets, cycle.len());
        match sup.outcome {
            SessionOutcome::Answered(out) => {
                acc.answered += 1;
                let got: Vec<Distance> = out.neighbors.iter().map(|nb| nb.distance).collect();
                if got != *oracle {
                    acc.wrong_answers += 1;
                }
            }
            SessionOutcome::Unreachable => acc.wrong_answers += 1,
            SessionOutcome::Failed(e) => acc.item_failed(e.root_class()),
        }
    }
    acc.into_report(ctx, method)
}

/// Channel-less methods never see channel faults; their supervised cell
/// is the single-attempt local pipeline, still oracle-checked so the
/// never-wrong certificate covers every registry column.
fn run_local_fault_cell(
    ctx: &ScenarioContext,
    method: MethodId,
    program: &dyn MethodProgram,
) -> FaultCellReport {
    let g = ctx.g();
    let queue = ctx.spec.queue;
    let answer = |q: &Query| {
        program
            .local_answer(q, queue)
            .unwrap_or(Err(QueryError::Aborted("method answers no local queries")))
    };
    let mut acc = FaultAcc::new();
    for item in ctx.workload.iter() {
        match item {
            WorkItem::P2p { query, oracle } => {
                acc.queries += 1;
                acc.session_cost(1, 0, 1);
                match answer(query) {
                    Ok(out) => {
                        acc.answered += 1;
                        let ok = out.distance == *oracle
                            && path_is_valid(
                                g,
                                query.source,
                                query.target,
                                out.distance,
                                &out.path,
                            );
                        if !ok {
                            acc.wrong_answers += 1;
                        }
                    }
                    Err(QueryError::Unreachable) => acc.wrong_answers += 1,
                    Err(QueryError::Aborted(_)) => acc.item_failed("client_aborted"),
                }
            }
            WorkItem::OnEdge { src, dst, oracle } => {
                acc.queries += 1;
                acc.session_cost(1, 0, 1);
                match on_edge_query(src, dst, |q| answer(q)) {
                    Ok(out) => {
                        acc.answered += 1;
                        if out.distance != *oracle {
                            acc.wrong_answers += 1;
                        }
                    }
                    Err(QueryError::Unreachable) => acc.wrong_answers += 1,
                    Err(QueryError::Aborted(_)) => acc.item_failed("client_aborted"),
                }
            }
            WorkItem::Knn { .. } => {}
        }
    }
    acc.into_report(ctx, method)
}

/// Builds every scenario context, then fans the independent
/// (scenario × method) cells across `threads` workers with the same
/// chunk-ordered merge as the conformance matrix — bit-identical for
/// every thread count.
pub fn run_fault_matrix(
    specs: &[ScenarioSpec],
    methods: &[MethodId],
    threads: usize,
) -> FaultMatrix {
    let contexts: Vec<ScenarioContext> = specs
        .iter()
        .map(|s| ScenarioContext::build(s, methods))
        .collect();
    let mut cells: Vec<(usize, MethodId)> = Vec::new();
    for (si, ctx) in contexts.iter().enumerate() {
        for &m in methods {
            if ctx.has_work(m) {
                cells.push((si, m));
            }
        }
    }
    let reports = parallel::map_reduce_chunked(
        &cells,
        threads,
        2,
        || (),
        Vec::new,
        |_, partial: &mut Vec<FaultCellReport>, chunk, _| {
            for &(si, m) in chunk {
                partial.push(run_fault_cell(&contexts[si], m));
            }
        },
        |a, b| a.extend(b),
    )
    .unwrap_or_default();
    FaultMatrix { cells: reports }
}

fn fault_base(name: &str, seed: u64, fault: FaultSpec) -> ScenarioSpec {
    let mut s = ScenarioSpec::small(name, seed);
    s.graph = GraphSpec::Grid {
        width: 10,
        height: 10,
    };
    s.workload = WorkloadMix {
        point_to_point: 5,
        on_edge: 2,
        knn: 2,
        k: 2,
    };
    s.fault = fault;
    s
}

/// The default chaos matrix behind `BENCH_faults.json`: every fault
/// class alone, a fault × loss combination, the all-at-once chaos cell,
/// and a fault-free control whose supervised sessions must replay the
/// unsupervised engine exactly.
pub fn fault_matrix() -> Vec<ScenarioSpec> {
    let mut specs = vec![
        fault_base("chaos-corrupt5", 401, FaultSpec::Corruption { rate: 0.05 }),
        fault_base("chaos-dup2", 402, FaultSpec::Duplication { rate: 0.02 }),
        fault_base(
            "chaos-restart12c-stale2",
            403,
            FaultSpec::Restarts {
                mean_cycles: 12.0,
                stale_rate: 0.02,
            },
        ),
        fault_base(
            "chaos-corrloss10x16",
            404,
            FaultSpec::CorrelatedLoss {
                rate: 0.10,
                window: 16,
            },
        ),
        fault_base(
            "chaos-everything",
            405,
            FaultSpec::Chaos {
                rate: 0.01,
                mean_cycles: 16.0,
            },
        ),
        fault_base("chaos-control-nofault", 406, FaultSpec::None),
    ];
    // Faults stacked on a lossy channel: §6.2 recovery and the
    // supervisor must compose.
    let mut s = fault_base(
        "chaos-corrupt3-bernoulli2",
        407,
        FaultSpec::Corruption { rate: 0.03 },
    );
    s.loss = LossSpec::Bernoulli { rate: 0.02 };
    specs.push(s);
    specs
}

/// The CI smoke gate: three fast cells covering a detectable fault, a
/// silently-corrupting fault and the chaos mix.
pub fn smoke_fault_matrix() -> Vec<ScenarioSpec> {
    let tiny = |name: &str, seed: u64, fault: FaultSpec| {
        let mut s = fault_base(name, seed, fault);
        s.graph = GraphSpec::Grid {
            width: 8,
            height: 8,
        };
        s.workload = WorkloadMix {
            point_to_point: 3,
            on_edge: 1,
            knn: 1,
            k: 2,
        };
        s
    };
    vec![
        tiny(
            "chaos-smoke-corrupt5",
            421,
            FaultSpec::Corruption { rate: 0.05 },
        ),
        tiny(
            "chaos-smoke-restart10c",
            422,
            FaultSpec::Restarts {
                mean_cycles: 10.0,
                stale_rate: 0.02,
            },
        ),
        tiny(
            "chaos-smoke-mix",
            423,
            FaultSpec::Chaos {
                rate: 0.01,
                mean_cycles: 14.0,
            },
        ),
    ]
}

/// The nightly chaos matrix: the default set plus harsher rates and a
/// realistic-topology (Milan preset) chaos scenario.
pub fn nightly_fault_matrix() -> Vec<ScenarioSpec> {
    let mut specs = fault_matrix();
    specs.push(fault_base(
        "chaos-corrupt10",
        431,
        FaultSpec::Corruption { rate: 0.10 },
    ));
    specs.push(fault_base(
        "chaos-restart6c-stale5",
        432,
        FaultSpec::Restarts {
            mean_cycles: 6.0,
            stale_rate: 0.05,
        },
    ));
    let mut s = fault_base(
        "chaos-milan-everything",
        433,
        FaultSpec::Chaos {
            rate: 0.01,
            mean_cycles: 16.0,
        },
    );
    s.graph = GraphSpec::Preset {
        preset: spair_roadnet::NetworkPreset::Milan,
        scale: 0.04,
    };
    specs.push(s);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_cell;
    use spair_methods::MethodRegistry;

    #[test]
    fn matrices_cover_four_fault_classes_and_are_uniquely_named() {
        for specs in [fault_matrix(), nightly_fault_matrix()] {
            assert!(specs
                .iter()
                .any(|s| matches!(s.fault, FaultSpec::Corruption { .. })));
            assert!(specs
                .iter()
                .any(|s| matches!(s.fault, FaultSpec::Duplication { .. })));
            assert!(specs
                .iter()
                .any(|s| matches!(s.fault, FaultSpec::Restarts { .. })));
            assert!(specs
                .iter()
                .any(|s| matches!(s.fault, FaultSpec::CorrelatedLoss { .. })));
            assert!(specs
                .iter()
                .any(|s| matches!(s.fault, FaultSpec::Chaos { .. })));
            let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), specs.len());
        }
        assert!(smoke_fault_matrix().len() >= 3);
    }

    #[test]
    fn fault_free_cell_answers_everything_with_single_attempts() {
        let spec = fault_base("ctl", 77, FaultSpec::None);
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR]);
        let r = run_fault_cell(&ctx, MethodId::NR);
        assert!(r.certified());
        assert_eq!(r.typed_failures, 0);
        assert_eq!(r.answered, r.queries);
        assert!(r.attempts as usize >= r.queries, "on-edge items add subs");
        assert_eq!(r.max_attempts, 1, "no faults, no retries");
    }

    #[test]
    fn corruption_cell_certifies_never_wrong() {
        let spec = fault_base("cor", 78, FaultSpec::Corruption { rate: 0.08 });
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR, MethodId::EB]);
        for m in [MethodId::NR, MethodId::EB] {
            let r = run_fault_cell(&ctx, m);
            assert!(r.certified(), "{}: wrong={}", m.name(), r.wrong_answers);
            assert!(r.answered > 0, "corruption is loss-like; answers flow");
        }
    }

    #[test]
    fn restart_cell_retries_and_stays_typed() {
        let spec = fault_base(
            "rst",
            79,
            FaultSpec::Restarts {
                mean_cycles: 3.0,
                stale_rate: 0.05,
            },
        );
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR]);
        let r = run_fault_cell(&ctx, MethodId::NR);
        assert!(r.certified(), "wrong={}", r.wrong_answers);
        assert!(
            r.attempts as usize > r.queries || r.typed_failures > 0,
            "a 3-cycle restart mean must disturb some session"
        );
        for (class, _) in &r.failure_classes {
            assert!(
                [
                    "corrupted",
                    "cycle_aborted",
                    "stale_index",
                    "duplicate_delivery",
                    "client_aborted"
                ]
                .contains(&class.as_str()),
                "unexpected class {class}"
            );
        }
    }

    #[test]
    fn fault_matrix_is_thread_invariant() {
        let specs = smoke_fault_matrix();
        let methods = [MethodId::NR, MethodId::DJ, MethodId::KNN_AIR];
        let serial = run_fault_matrix(&specs, &methods, 1);
        let par = run_fault_matrix(&specs, &methods, 4);
        assert_eq!(serial.to_json(), par.to_json());
        assert_eq!(serial.digest(), par.digest());
    }

    #[test]
    fn every_registry_method_certifies_under_chaos_smoke() {
        let specs = smoke_fault_matrix();
        let methods = MethodRegistry::standard().all();
        let m = run_fault_matrix(&specs, &methods, 0);
        assert!(
            m.all_certified(),
            "wrong answers: {}\n{}",
            m.total_wrong(),
            m.render_table()
        );
        // Every air/knn/local method appears (all have work here).
        let mut cols: Vec<&str> = m.cells.iter().map(|c| c.method).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), methods.len());
    }

    #[test]
    fn fault_none_leaves_the_conformance_engine_untouched() {
        // The conformance engine ignores the fault axis entirely; a spec
        // with a fault set must not change run_cell's digest-relevant
        // output (fault certification runs through run_fault_cell).
        let mut spec = ScenarioSpec::small("iso", 31);
        let base = run_cell(
            &ScenarioContext::build(&spec, &[MethodId::NR]),
            MethodId::NR,
        );
        spec.fault = FaultSpec::Corruption { rate: 0.5 };
        let with = run_cell(
            &ScenarioContext::build(&spec, &[MethodId::NR]),
            MethodId::NR,
        );
        // Compare the deterministic serialization (cpu_ms is wall clock).
        let json = |c| crate::ConformanceMatrix { cells: vec![c] }.to_json(false);
        assert_eq!(json(base), json(with));
    }
}
