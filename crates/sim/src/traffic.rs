//! Seeded deterministic traffic: how a world's edge weights evolve
//! across broadcast cycle versions.
//!
//! Dynamic-world runs need reproducible weight histories: every weight at
//! every version is a **pure function of (traffic spec, seed, version,
//! edge, base weight)** — no mutable state, no draw order. Version 0 is
//! always the unperturbed base network, so a dynamic scenario's first
//! cycle is byte-identical to the static engine's.
//!
//! Two effects compose, mirroring what road-traffic feeds actually emit:
//!
//! * **Rush-hour ramps** — a per-edge phase-shifted integer triangle wave
//!   raises each weight by up to `ramp_amplitude_pct` percent over a
//!   `ramp_period`-version cycle (congestion builds, peaks, drains);
//! * **Incident spikes** — with `incident_rate_ppm` probability per
//!   (edge, version), the ramped weight is multiplied by
//!   `incident_multiplier` for exactly that version (a crash on the
//!   segment, cleared by the next cycle).
//!
//! Weights never drop below 1, so every versioned network keeps the
//! invariants the search stack assumes.

use crate::engine::splitmix64;
use spair_core::patch::WeightDelta;
use spair_partition::{KdTreePartition, Partitioning, RegionId};
use spair_roadnet::{NodeId, RoadNetwork, Weight};
use std::collections::BTreeMap;

/// How a dynamic world's weights evolve. All parameters are integers so
/// the model is exactly reproducible on any host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSpec {
    /// Peak rush-hour weight increase, in percent of the base weight.
    pub ramp_amplitude_pct: u32,
    /// Versions per full rush-hour build-peak-drain cycle (`>= 2`).
    pub ramp_period: u32,
    /// Per-(edge, version) incident probability, in parts per million.
    pub incident_rate_ppm: u32,
    /// Weight multiplier while an incident lasts (one version).
    pub incident_multiplier: u32,
}

impl TrafficSpec {
    /// Pure rush-hour ramps, no incidents.
    pub fn rush_hour() -> Self {
        Self {
            ramp_amplitude_pct: 40,
            ramp_period: 6,
            incident_rate_ppm: 0,
            incident_multiplier: 1,
        }
    }

    /// Moderate ramps plus occasional incident spikes.
    pub fn incidents() -> Self {
        Self {
            ramp_amplitude_pct: 25,
            ramp_period: 8,
            incident_rate_ppm: 20_000,
            incident_multiplier: 4,
        }
    }

    /// The nightly stress model: steep fast ramps and frequent, severe
    /// incidents.
    pub fn harsh() -> Self {
        Self {
            ramp_amplitude_pct: 60,
            ramp_period: 4,
            incident_rate_ppm: 50_000,
            incident_multiplier: 6,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        format!(
            "ramp{}%p{}+inc{}ppm×{}",
            self.ramp_amplitude_pct,
            self.ramp_period,
            self.incident_rate_ppm,
            self.incident_multiplier
        )
    }
}

/// The per-edge hash every draw derives from: stable in (seed, edge),
/// independent of version.
fn edge_hash(seed: u64, from: NodeId, to: NodeId) -> u64 {
    splitmix64(seed ^ 0xD1_4A11C ^ ((u64::from(from) << 32) | u64::from(to)))
}

/// The weight of edge `from -> to` at `version`, given its base (version
/// 0) weight. Pure in every argument; version 0 returns the base
/// unchanged (clamped to 1, which generated networks already satisfy).
pub fn weight_at(
    spec: &TrafficSpec,
    seed: u64,
    version: u32,
    from: NodeId,
    to: NodeId,
    base: Weight,
) -> Weight {
    let base = base.max(1);
    if version == 0 {
        return base;
    }
    let h = edge_hash(seed, from, to);
    let period = spec.ramp_period.max(2);
    let half = period / 2;
    let mut w = u64::from(base);
    if spec.ramp_amplitude_pct > 0 && half > 0 {
        // Integer triangle wave 0..=half..0 over `period` versions, with a
        // per-edge phase so the whole network never peaks in lockstep.
        let phase = (h % u64::from(period)) as u32;
        let pos = (version.wrapping_add(phase)) % period;
        let tri = u64::from(if pos <= half { pos } else { period - pos });
        w += (u64::from(base) * u64::from(spec.ramp_amplitude_pct) * tri) / (100 * u64::from(half));
    }
    if spec.incident_rate_ppm > 0 {
        let draw = splitmix64(h ^ (u64::from(version) << 20) ^ 0x1AC1_D3A7) % 1_000_000;
        if draw < u64::from(spec.incident_rate_ppm) {
            w = w.saturating_mul(u64::from(spec.incident_multiplier.max(1)));
        }
    }
    w.clamp(1, u64::from(Weight::MAX)) as Weight
}

/// The whole network at `version`: identical topology and coordinates to
/// `g0` (so partitions built on coordinates are version-invariant), every
/// weight run through [`weight_at`].
pub fn network_at(g0: &RoadNetwork, spec: &TrafficSpec, seed: u64, version: u32) -> RoadNetwork {
    let n = g0.num_nodes();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets: Vec<NodeId> = Vec::new();
    let mut weights: Vec<Weight> = Vec::new();
    offsets.push(0u32);
    for v in g0.node_ids() {
        for (u, w) in g0.out_edges(v) {
            targets.push(u);
            weights.push(weight_at(spec, seed, version, v, u, w));
        }
        offsets.push(targets.len() as u32);
    }
    RoadNetwork::from_csr(g0.points().to_vec(), offsets, targets, weights)
}

/// The server-side delta between `version - 1` and `version`, grouped by
/// `region_of(from)` in ascending region order — exactly the groups
/// [`spair_core::patch::build_patch_cycle`] broadcasts, so a client
/// holding a region's nodes covers every materialized edge by listening
/// to that region's patch segment.
pub fn version_deltas(
    g0: &RoadNetwork,
    part: &KdTreePartition,
    spec: &TrafficSpec,
    seed: u64,
    version: u32,
) -> Vec<(RegionId, Vec<WeightDelta>)> {
    assert!(version >= 1, "version 0 is the base network");
    let mut groups: BTreeMap<RegionId, Vec<WeightDelta>> = BTreeMap::new();
    for v in g0.node_ids() {
        for (u, w) in g0.out_edges(v) {
            let prev = weight_at(spec, seed, version - 1, v, u, w);
            let next = weight_at(spec, seed, version, v, u, w);
            if prev != next {
                groups
                    .entry(part.region_of(v))
                    .or_default()
                    .push(WeightDelta {
                        from: v,
                        to: u,
                        weight: next,
                    });
            }
        }
    }
    groups.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::generators::small_grid;

    #[test]
    fn version_zero_is_the_base_network() {
        let g = small_grid(10, 10, 3);
        let spec = TrafficSpec::harsh();
        let g0 = network_at(&g, &spec, 99, 0);
        for v in g.node_ids() {
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g0.out_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn weights_are_pure_and_version_dependent() {
        let spec = TrafficSpec::incidents();
        let a = weight_at(&spec, 7, 3, 10, 11, 40);
        let b = weight_at(&spec, 7, 3, 10, 11, 40);
        assert_eq!(a, b, "same coordinates, same draw");
        let g = small_grid(8, 8, 5);
        let changed = g.node_ids().any(|v| {
            g.out_edges(v)
                .any(|(u, w)| weight_at(&spec, 7, 3, v, u, w) != w)
        });
        assert!(changed, "a 25% ramp must move some weight by version 3");
    }

    #[test]
    fn weights_never_drop_below_one() {
        let spec = TrafficSpec::harsh();
        for version in 0..16 {
            for (from, to) in [(0u32, 1u32), (5, 9), (1000, 2)] {
                assert!(weight_at(&spec, 1, version, from, to, 1) >= 1);
            }
        }
    }

    #[test]
    fn network_at_preserves_topology_and_coordinates() {
        let g = small_grid(9, 9, 2);
        let spec = TrafficSpec::rush_hour();
        let gv = network_at(&g, &spec, 42, 3);
        assert_eq!(gv.num_nodes(), g.num_nodes());
        assert_eq!(gv.points(), g.points());
        for v in g.node_ids() {
            let base: Vec<NodeId> = g.out_edges(v).map(|(u, _)| u).collect();
            let vers: Vec<NodeId> = gv.out_edges(v).map(|(u, _)| u).collect();
            assert_eq!(base, vers, "targets and their order are invariant");
        }
    }

    #[test]
    fn version_deltas_reproduce_the_versioned_network() {
        let g = small_grid(10, 10, 8);
        let part = KdTreePartition::build(&g, 8);
        let spec = TrafficSpec::incidents();
        for version in 1..4u32 {
            let deltas = version_deltas(&g, &part, &spec, 21, version);
            // Regions ascend and every delta sits in its from-region.
            let mut last = None;
            for (r, ds) in &deltas {
                assert!(last < Some(*r));
                last = Some(*r);
                assert!(!ds.is_empty());
                for d in ds {
                    assert_eq!(part.region_of(d.from), *r);
                }
            }
            // Applying the deltas to version - 1 yields exactly version.
            let mut w_prev: BTreeMap<(NodeId, NodeId), Weight> = BTreeMap::new();
            let gp = network_at(&g, &spec, 21, version - 1);
            for v in gp.node_ids() {
                for (u, w) in gp.out_edges(v) {
                    w_prev.insert((v, u), w);
                }
            }
            for (_, ds) in &deltas {
                for d in ds {
                    w_prev.insert((d.from, d.to), d.weight);
                }
            }
            let gn = network_at(&g, &spec, 21, version);
            for v in gn.node_ids() {
                for (u, w) in gn.out_edges(v) {
                    assert_eq!(w_prev.get(&(v, u)), Some(&w));
                }
            }
        }
    }
}
