//! Dynamic-world matrix runner and `BENCH_dynamic.json` emitter — the
//! live-weight-update trajectory point.
//!
//! ```text
//! cargo run --release -p spair-sim --bin bench_dynamic -- \
//!     [--smoke | --nightly] [--threads N] [--methods a,b,c] \
//!     [--out BENCH_dynamic.json]
//! ```
//!
//! Runs the dynamic matrix — seeded traffic perturbing a world across
//! broadcast cycle versions, every registered air method staying current
//! either by patching its received arena in place (NR, EB, DJ, A*, bidi)
//! or by rebuilding from a fresh full cycle (index-transforming methods)
//! — and differentially verifies **every (version × method) answer
//! against a fresh serial Dijkstra oracle for that version**. A serial
//! rerun must reproduce the parallel run byte-for-byte. **Exits non-zero
//! on any oracle mismatch or determinism break**, so CI can use it as a
//! gate. The JSON also reports whether the anchored incremental methods
//! (NR, EB) stayed current strictly cheaper per version than every
//! whole-cycle method — the partial-tuning advantage the dynamic axis
//! exists to demonstrate.

use spair_roadnet::{bench_out, parallel};
use spair_sim::{
    dynamic_matrix, dynamic_methods, nightly_dynamic_matrix, run_dynamic_matrix,
    smoke_dynamic_matrix, MethodId, MethodRegistry,
};
use std::time::Instant;

struct Opts {
    smoke: bool,
    nightly: bool,
    threads: usize,
    methods: Vec<MethodId>,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        nightly: false,
        threads: 0,
        methods: dynamic_methods(),
        out: "BENCH_dynamic.json".to_string(),
    };
    let mut threads_flag: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--nightly" => opts.nightly = true,
            "--threads" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads_flag = Some(n);
            }
            "--methods" => {
                let list = value();
                opts.methods = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        MethodRegistry::standard()
                            .get(name.trim())
                            .unwrap_or_else(|e| {
                                eprintln!("error: {e}");
                                std::process::exit(2);
                            })
                    })
                    .collect();
                if opts.methods.is_empty() {
                    eprintln!("error: --methods expects a non-empty name list");
                    std::process::exit(2);
                }
            }
            "--out" => opts.out = value(),
            other => {
                eprintln!(
                    "error: unknown flag {other}\n\
                     usage: bench_dynamic [--smoke | --nightly] [--threads N] \
                     [--methods a,b,c] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.smoke && opts.nightly {
        eprintln!("error: --smoke and --nightly are mutually exclusive");
        std::process::exit(2);
    }
    opts.threads = parallel::resolve_threads(threads_flag);
    opts.out = bench_out::redirect_partial_out(&opts.out, partial_reason(&opts));
    opts
}

/// A run may refresh the committed `BENCH_dynamic.json` only in the full
/// default configuration: the default dynamic matrix over every
/// dynamic-capable method. Everything else is redirected to
/// `*.smoke.json`.
fn partial_reason(opts: &Opts) -> Option<&'static str> {
    if opts.smoke {
        Some("--smoke")
    } else if opts.nightly {
        Some("--nightly")
    } else if opts.methods != dynamic_methods() {
        Some("--methods-restricted")
    } else {
        None
    }
}

fn main() {
    let opts = parse_opts();
    let specs = if opts.smoke {
        smoke_dynamic_matrix()
    } else if opts.nightly {
        nightly_dynamic_matrix()
    } else {
        dynamic_matrix()
    };
    let methods = &opts.methods;
    eprintln!(
        "# bench_dynamic — {} dynamic scenarios x {} methods, {} threads{}",
        specs.len(),
        methods.len(),
        opts.threads,
        if opts.smoke {
            " (smoke)"
        } else if opts.nightly {
            " (nightly)"
        } else {
            ""
        }
    );

    let start = Instant::now();
    let matrix = run_dynamic_matrix(&specs, methods, opts.threads);
    let parallel_secs = start.elapsed().as_secs_f64();
    eprint!("{}", matrix.render_table());

    // Determinism certificate: a serial rerun must be byte-identical.
    let digest = matrix.digest();
    let (serial_secs, bit_identical) = if opts.threads == 1 {
        (parallel_secs, true)
    } else {
        let start = Instant::now();
        let serial = run_dynamic_matrix(&specs, methods, 1);
        (
            start.elapsed().as_secs_f64(),
            serial.to_json() == matrix.to_json(),
        )
    };

    let exact = matrix.all_exact();
    let advantage = matrix.partial_tuning_advantage();
    eprintln!(
        "cells: {}  mismatches: {}  partial_tuning_advantage: {advantage}  \
         digest: {digest:016x}  bit_identical: {bit_identical}",
        matrix.cells.len(),
        matrix.total_mismatches(),
    );

    let json = format!(
        "{{\n  \
         \"benchmark\": \"dynamic_world_matrix\",\n  \
         \"smoke\": {},\n  \
         \"nightly\": {},\n  \
         \"scenarios\": {},\n  \
         \"methods\": {},\n  \
         \"cells\": {},\n  \
         \"mismatches\": {},\n  \
         \"all_exact\": {},\n  \
         \"partial_tuning_advantage\": {advantage},\n  \
         \"digest\": \"{digest:016x}\",\n  \
         \"bit_identical_across_threads\": {bit_identical},\n  \
         \"host\": {{ \"available_parallelism\": {}, \"worker_threads\": {} }},\n  \
         \"parallel_secs\": {parallel_secs:.6},\n  \
         \"serial_secs\": {serial_secs:.6},\n  \
         \"matrix\": {}\n\
         }}\n",
        opts.smoke,
        opts.nightly,
        specs.len(),
        methods.len(),
        matrix.cells.len(),
        matrix.total_mismatches(),
        exact,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        opts.threads,
        matrix.to_json(),
    );
    std::fs::write(&opts.out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);

    if !exact {
        eprintln!(
            "DYNAMIC ORACLE FAILURE: {} answers contradicted their version's oracle",
            matrix.total_mismatches(),
        );
        std::process::exit(1);
    }
    if !bit_identical {
        eprintln!("DETERMINISM FAILURE: parallel run diverged from serial");
        std::process::exit(1);
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn full_opts() -> Opts {
        Opts {
            smoke: false,
            nightly: false,
            threads: 1,
            methods: dynamic_methods(),
            out: "BENCH_dynamic.json".to_string(),
        }
    }

    #[test]
    fn full_default_run_may_write_the_committed_artifact() {
        assert_eq!(partial_reason(&full_opts()), None);
    }

    #[test]
    fn partial_runs_never_shadow_the_committed_artifact() {
        let mut o = full_opts();
        o.smoke = true;
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_dynamic.smoke.json"
        );
        let mut o = full_opts();
        o.methods.truncate(2);
        assert_eq!(partial_reason(&o), Some("--methods-restricted"));
    }
}
