//! Conformance-matrix runner and `BENCH_scenarios.json` emitter — the
//! scenario-coverage trajectory point.
//!
//! ```text
//! cargo run --release -p spair-sim --bin bench_scenarios -- \
//!     [--smoke | --nightly] [--threads N] [--methods a,b,c] \
//!     [--list-methods] [--out BENCH_scenarios.json]
//! ```
//!
//! Runs the default matrix (or the small `--smoke` gate) over **every
//! registered client method** — the column set comes from
//! `spair_methods::MethodRegistry`, so newly registered methods appear
//! without edits here — verifies each answer against the serial Dijkstra
//! oracle, re-runs the matrix serially to certify the parallel fan-out is
//! bit-identical, and writes the measurements as JSON. `--methods`
//! restricts the columns to a comma-separated name list (CI uses it to
//! pin the nine legacy methods' digest across refactors);
//! `--list-methods` prints the registry and exits. **Exits non-zero on
//! any conformance mismatch or determinism break**, so CI can use it as
//! a gate.

use spair_roadnet::{bench_out, parallel};
use spair_sim::{
    default_matrix, nightly_matrix, run_matrix, smoke_matrix, MethodId, MethodRegistry,
};
use std::time::Instant;

struct Opts {
    smoke: bool,
    nightly: bool,
    threads: usize,
    methods: Vec<MethodId>,
    out: String,
}

fn list_methods(methods: &[MethodId]) -> String {
    let mut out = format!(
        "{:<3} {:<14} {:<12} {:<11} {}\n",
        "#", "name", "label", "shape", "capabilities"
    );
    for &m in methods {
        let d = m.descriptor();
        let mut caps: Vec<&str> = Vec::new();
        if d.air_client {
            caps.push("air_client");
        }
        if d.knn {
            caps.push("knn");
        }
        if d.on_edge {
            caps.push("on_edge");
        }
        if d.population_replayable {
            caps.push("replayable");
        }
        if !d.own_channel {
            caps.push("no_own_channel");
        }
        out.push_str(&format!(
            "{:<3} {:<14} {:<12} {:<11} {}\n",
            d.ordinal,
            d.name,
            d.label,
            d.shape.map(|s| format!("{s:?}")).unwrap_or_default(),
            caps.join(","),
        ));
    }
    out
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        nightly: false,
        threads: 0,
        methods: MethodRegistry::standard().all(),
        out: "BENCH_scenarios.json".to_string(),
    };
    // Worker-count precedence (shared by every bench binary): an explicit
    // `--threads` flag wins over `SPAIR_THREADS`, which wins over the
    // detected parallelism.
    let mut threads_flag: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--nightly" => opts.nightly = true,
            "--list-methods" => {
                print!("{}", list_methods(&MethodRegistry::standard().all()));
                std::process::exit(0);
            }
            "--threads" => {
                let n: usize = value().parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads expects a positive integer");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads_flag = Some(n);
            }
            "--methods" => {
                let list = value();
                opts.methods = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        MethodRegistry::standard()
                            .get(name.trim())
                            .unwrap_or_else(|e| {
                                eprintln!(
                                    "error: {e}\n{}",
                                    list_methods(&MethodRegistry::standard().all())
                                );
                                std::process::exit(2);
                            })
                    })
                    .collect();
                if opts.methods.is_empty() {
                    eprintln!("error: --methods expects a non-empty name list");
                    std::process::exit(2);
                }
            }
            "--out" => opts.out = value(),
            other => {
                eprintln!(
                    "error: unknown flag {other}\n\
                     usage: bench_scenarios [--smoke | --nightly] [--threads N] \
                     [--methods a,b,c] [--list-methods] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.smoke && opts.nightly {
        eprintln!("error: --smoke and --nightly are mutually exclusive");
        std::process::exit(2);
    }
    opts.threads = parallel::resolve_threads(threads_flag);
    opts.out = bench_out::redirect_partial_out(&opts.out, partial_reason(&opts));
    opts
}

/// A run may refresh the committed `BENCH_scenarios.json` only in the
/// full default configuration: the default matrix over the complete
/// method registry. Everything else is a partial run the clobber guard
/// redirects to `*.smoke.json`.
fn partial_reason(opts: &Opts) -> Option<&'static str> {
    if opts.smoke {
        Some("--smoke")
    } else if opts.nightly {
        Some("--nightly")
    } else if opts.methods != MethodRegistry::standard().all() {
        Some("--methods-restricted")
    } else {
        None
    }
}

fn main() {
    let opts = parse_opts();
    let specs = if opts.smoke {
        smoke_matrix()
    } else if opts.nightly {
        nightly_matrix()
    } else {
        default_matrix()
    };
    let methods = &opts.methods;
    eprintln!(
        "# bench_scenarios — {} scenarios x {} methods, {} threads{}",
        specs.len(),
        methods.len(),
        opts.threads,
        if opts.smoke {
            " (smoke)"
        } else if opts.nightly {
            " (nightly)"
        } else {
            ""
        }
    );
    // The run's own column set (not the whole registry) — so restricted
    // runs (`--methods`) stay self-documenting in the logs.
    eprint!("{}", list_methods(methods));

    let start = Instant::now();
    let matrix = run_matrix(&specs, methods, opts.threads);
    let parallel_secs = start.elapsed().as_secs_f64();
    eprint!("{}", matrix.render_table());

    // Determinism certificate: a serial rerun must be byte-identical.
    // With --threads 1 the first run already *is* the serial reference,
    // so the rerun would be a tautology — skip it.
    let digest = matrix.digest();
    let (serial_secs, bit_identical) = if opts.threads == 1 {
        (parallel_secs, true)
    } else {
        let start = Instant::now();
        let serial = run_matrix(&specs, methods, 1);
        (
            start.elapsed().as_secs_f64(),
            serial.to_json(false) == matrix.to_json(false),
        )
    };

    let conformant = matrix.all_exact();
    eprintln!(
        "cells: {}  mismatches: {}  digest: {digest:016x}  bit_identical: {bit_identical}",
        matrix.cells.len(),
        matrix.total_mismatches(),
    );

    let json = format!(
        "{{\n  \
         \"benchmark\": \"scenario_conformance_matrix\",\n  \
         \"smoke\": {},\n  \
         \"nightly\": {},\n  \
         \"scenarios\": {},\n  \
         \"methods\": {},\n  \
         \"cells\": {},\n  \
         \"mismatches\": {},\n  \
         \"all_exact\": {},\n  \
         \"digest\": \"{digest:016x}\",\n  \
         \"bit_identical_across_threads\": {bit_identical},\n  \
         \"host\": {{ \"available_parallelism\": {}, \"worker_threads\": {} }},\n  \
         \"parallel_secs\": {parallel_secs:.6},\n  \
         \"serial_secs\": {serial_secs:.6},\n  \
         \"matrix\": {}\n\
         }}\n",
        opts.smoke,
        opts.nightly,
        specs.len(),
        methods.len(),
        matrix.cells.len(),
        matrix.total_mismatches(),
        conformant,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        opts.threads,
        matrix.to_json(true),
    );
    std::fs::write(&opts.out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);

    if !conformant {
        eprintln!(
            "CONFORMANCE FAILURE: {} mismatches",
            matrix.total_mismatches()
        );
        std::process::exit(1);
    }
    if !bit_identical {
        eprintln!("DETERMINISM FAILURE: parallel run diverged from serial");
        std::process::exit(1);
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn full_opts() -> Opts {
        Opts {
            smoke: false,
            nightly: false,
            threads: 1,
            methods: MethodRegistry::standard().all(),
            out: "BENCH_scenarios.json".to_string(),
        }
    }

    #[test]
    fn full_default_run_may_write_the_committed_artifact() {
        assert_eq!(partial_reason(&full_opts()), None);
    }

    #[test]
    fn smoke_nightly_and_restricted_runs_are_partial() {
        let mut o = full_opts();
        o.smoke = true;
        assert_eq!(partial_reason(&o), Some("--smoke"));
        let mut o = full_opts();
        o.nightly = true;
        assert_eq!(partial_reason(&o), Some("--nightly"));
        let mut o = full_opts();
        o.methods.pop();
        assert_eq!(partial_reason(&o), Some("--methods-restricted"));
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_scenarios.smoke.json"
        );
    }
}
